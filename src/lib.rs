//! # bsld — BSLD-threshold power-aware job scheduling for HPC centers
//!
//! Facade crate of the reproduction of *Etinski, Corbalan, Labarta, Valero:
//! "BSLD Threshold Driven Power Management Policy for HPC Centers"*
//! (IPDPS/IPPS 2010). Re-exports every workspace crate under one roof:
//!
//! * [`simkernel`] — discrete-event kernel (time, events, RNG, statistics);
//! * [`model`] — jobs, outcomes, the BSLD metric;
//! * [`cluster`] — DVFS gears, First Fit processor pool, availability
//!   profiles;
//! * [`power`] — the `ACfV²`+`αV` power model, β time model, energy
//!   accounting;
//! * [`swf`] — Standard Workload Format parsing/cleaning;
//! * [`workload`] — synthetic workloads calibrated to the paper's five
//!   traces;
//! * [`sched`] — the EASY backfilling engine with the frequency-policy and
//!   power hooks;
//! * [`powercap`] — the cluster power ledger, idle sleep states and
//!   power-cap enforcement;
//! * [`metrics`] — run summaries and report writers;
//! * [`obs`] — observability: the deterministic sim-time trace plane
//!   (Chrome-trace export) and the wall-clock profiling plane (counters,
//!   histograms, phase timers);
//! * [`core`] — the paper's BSLD-threshold policy, simulator facade, the
//!   declarative scenario API (`core::scenario`: one serializable spec, one
//!   `run()`, sweepable scenario files), the campaign layer
//!   (`core::campaign`: seed-replicated sweeps with mean ± 95 % CI,
//!   content-hash cell caching and resume) and the experiment harness
//!   reproducing every table and figure;
//! * [`par`] — the parallel sweep executor;
//! * [`serve`] — the `bsld-repro serve` daemon: resident workloads and
//!   cached cell results answering what-if queries over a Unix socket.
//!
//! ## Quickstart
//!
//! ```
//! use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
//! use bsld::workload::profiles::TraceProfile;
//!
//! // A small calibrated workload (SDSC-Blue-like), 200 jobs, seed 42.
//! let workload = TraceProfile::sdsc_blue().scaled_cpus(64).generate(42, 200);
//! let sim = Simulator::paper_default(&workload.cluster_name, workload.cpus);
//!
//! // Baseline: EASY backfilling, no DVFS.
//! let base = sim.run_baseline(&workload.jobs).unwrap();
//!
//! // The paper's policy: BSLD threshold 2.0, unlimited wait queue.
//! let cfg = PowerAwareConfig { bsld_threshold: 2.0, wq_threshold: WqThreshold::NoLimit };
//! let dvfs = sim.run_power_aware(&workload.jobs, &cfg).unwrap();
//!
//! assert!(dvfs.metrics.energy.computational <= base.metrics.energy.computational);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub use bsld_cluster as cluster;
pub use bsld_core as core;
pub use bsld_metrics as metrics;
pub use bsld_model as model;
pub use bsld_obs as obs;
pub use bsld_par as par;
pub use bsld_power as power;
pub use bsld_powercap as powercap;
pub use bsld_sched as sched;
pub use bsld_serve as serve;
pub use bsld_simkernel as simkernel;
pub use bsld_swf as swf;
pub use bsld_workload as workload;
