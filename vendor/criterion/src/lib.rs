//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a simple
//! mean/min timing loop instead of criterion's statistical machinery.
//!
//! Each benchmark warms up once, then runs batches until either
//! `sample_size` batches or the time budget (`BSLD_BENCH_SECS` seconds per
//! benchmark, default 3) is exhausted, and prints `mean`/`min` per
//! iteration. Passing `--test` (as `cargo test --benches` does) runs every
//! benchmark exactly once for a smoke check.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let budget = std::env::var("BSLD_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Duration::from_secs_f64)
            .unwrap_or(Duration::from_secs(3));
        Criterion { test_mode, budget }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            crit: self,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, 20, &id.to_string(), f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing batches each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_bench(self.crit, samples, &id.to_string(), f);
        self
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    iters_per_batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `iters_per_batch` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(crit: &Criterion, samples: usize, id: &str, mut f: F) {
    // Warm-up / calibration batch (a single iteration).
    let mut b = Bencher {
        iters_per_batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    if crit.test_mode {
        println!("  {id}: ok (test mode, 1 iter, {:?})", once);
        return;
    }
    // Aim each batch at ~budget/samples so the whole benchmark respects
    // the time budget even for slow bodies.
    let per_batch = crit.budget.as_secs_f64() / samples as f64;
    let iters = ((per_batch / once.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut batches = 0u64;
    let started = Instant::now();
    for _ in 0..samples {
        b.iters_per_batch = iters;
        f(&mut b);
        let per_iter = b.elapsed / iters as u32;
        total += b.elapsed;
        min = min.min(per_iter);
        batches += 1;
        if started.elapsed() > crit.budget {
            break;
        }
    }
    let mean = total / (batches as u32 * iters as u32).max(1);
    println!("  {id}: mean {mean:?}  min {min:?}  ({batches} batches x {iters} iters)");
}

/// Groups benchmark functions under one runner, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// The benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            test_mode: true,
            budget: Duration::from_millis(10),
        };
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(3u64) * 7));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles() {
        // `benches` must be a plain fn; calling it in test mode would run
        // with real timing budgets, so only take its address here.
        let _: fn() = benches;
    }
}
