//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements exactly the API subset the workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen`, `gen_range` (over `f64`/integer ranges) and `gen_bool`.
//!
//! The generator is xoshiro256++ (the same family real `SmallRng` uses on
//! 64-bit targets), seeded through a SplitMix64 expansion. Streams are
//! deterministic across runs and platforms; they are *not* bit-compatible
//! with crates.io `rand`, which is fine because every consumer in this
//! workspace only relies on determinism and distribution quality, never on
//! specific draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn uniformly from via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let span = self.end - self.start;
        loop {
            let x = self.start + unit_f64(rng.next_u64()) * span;
            // Floating rounding can land exactly on `end`; redraw (and keep
            // the result inside the half-open contract).
            if x < self.end {
                return x.max(self.start);
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        // Top-inclusive uniform: scale a [0,1) draw over the closed span.
        // `hi` is reachable through rounding, which is the inclusive intent.
        (lo + unit_f64(rng.next_u64()) * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`p` must be in `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut z);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but keep the guard.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs, (0..32).map(|_| c.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
            let y = r.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(3u32..=9);
            assert!((3..=9).contains(&x));
            let y: u64 = r.gen_range(0u64..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..20_000).map(|_| r.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
