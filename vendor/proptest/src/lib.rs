//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   integer/float ranges, tuples, [`collection::vec`], `num::*::ANY` and
//!   `bool::ANY`;
//! * the [`proptest!`] macro (with the `#![proptest_config(...)]` header),
//!   [`prop_assert!`] / [`prop_assert_eq!`], [`ProptestConfig`] and
//!   [`TestCaseError`].
//!
//! Semantics: each test runs `cases` times on a deterministic per-test
//! random stream (seeded from the test's module path and case index), so
//! failures are reproducible run-to-run. There is **no shrinking** — a
//! failing case reports its case number and panics with the assertion
//! message. That loses minimal counterexamples but keeps the dependency
//! surface at zero while preserving the tests' bug-finding power.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The random stream a property test case draws from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// The deterministic stream for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runtime options for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps any displayable error as a case failure.
    pub fn fail<E: fmt::Display>(e: E) -> TestCaseError {
        TestCaseError {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes this one's values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        x.clamp(
            self.start,
            self.end - f64::EPSILON * self.end.abs().max(1.0),
        )
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.unit_f64() * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `element` values with a length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

macro_rules! any_module {
    ($($m:ident => $t:ty),*) => {$(
        /// Whole-domain strategies for this primitive.
        pub mod $m {
            /// Uniform over the whole domain.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            impl super::Strategy for Any {
                type Value = $t;

                fn sample(&self, rng: &mut super::TestRng) -> $t {
                    super::sample_any(rng) as $t
                }
            }

            /// The whole-domain strategy value.
            pub const ANY: Any = Any;
        }
    )*};
}

#[inline]
fn sample_any(rng: &mut TestRng) -> u64 {
    rng.next_u64()
}

/// Whole-domain numeric strategies (`proptest::num::u64::ANY`, ...).
pub mod num {
    #[allow(unused_imports)]
    use super::{sample_any, Strategy, TestRng};

    any_module!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                i32 => i32, i64 => i64);
}

/// Whole-domain boolean strategy (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The whole-domain strategy value.
    pub const ANY: Any = Any;
}

/// The usual imports of a property-test module.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u32..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(0u64..=5), &mut rng);
            assert!(y <= 5);
            let z = Strategy::sample(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_case("vec", 1);
        let s = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 3);
            (0..8)
                .map(|_| Strategy::sample(&(0u64..1000), &mut rng))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 3);
            (0..8)
                .map(|_| Strategy::sample(&(0u64..1000), &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, v in crate::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn prop_map_applies(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, b, a + b))) {
            let (a, b, c) = pair;
            prop_assert_eq!(a + b, c);
        }
    }
}
