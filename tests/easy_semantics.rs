//! Integration tests: EASY backfilling semantics through the public facade.
//!
//! These scenarios are small enough to verify by hand; each pins down a
//! behaviour of the scheduling substrate that the paper's policy relies on.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::{Cluster, GearSet};
use bsld::model::{Job, JobId};
use bsld::power::BetaModel;
use bsld::sched::{simulate, validate_schedule, EngineConfig, FixedGearPolicy};
use bsld::simkernel::Time;

fn j(id: u32, arrival: u64, cpus: u32, runtime: u64, requested: u64) -> Job {
    Job::new(id, Time(arrival), cpus, runtime, requested)
}

fn run_easy(cpus: u32, jobs: &[Job]) -> Vec<(u32, u64, u64)> {
    let gears = GearSet::paper();
    let tm = BetaModel::new(gears.clone());
    let res = simulate(
        &Cluster::new("t", cpus, gears.clone()),
        jobs,
        &FixedGearPolicy::new(gears.top()),
        &tm,
        &EngineConfig::default(),
    )
    .unwrap();
    validate_schedule(&res.outcomes, cpus).unwrap();
    let mut v: Vec<(u32, u64, u64)> = res
        .outcomes
        .iter()
        .map(|o| (o.id.0, o.start.as_secs(), o.finish.as_secs()))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn textbook_backfill_chain() {
    // 8 cpus.
    // J0: 6 cpus, 100 s          → starts at 0.
    // J1: 8 cpus, 100 s (head)   → reserved at 100.
    // J2: 2 cpus, 90 s           → backfills at t≈2 (fits before 100).
    // J3: 2 cpus, 300 s          → cannot backfill (would hold cpus past
    //                              the reservation); runs after J1.
    let jobs = vec![
        j(0, 0, 6, 100, 100),
        j(1, 1, 8, 100, 100),
        j(2, 2, 2, 90, 98),
        j(3, 3, 2, 300, 300),
    ];
    let got = run_easy(8, &jobs);
    assert_eq!(got[0], (0, 0, 100));
    assert_eq!(got[1], (1, 100, 200));
    assert_eq!(got[2], (2, 2, 92));
    assert_eq!(got[3], (3, 200, 500));
}

#[test]
fn cascading_early_finish() {
    // Requested times are 10× the actual runtimes; every completion must
    // pull the whole queue forward.
    let jobs = vec![
        j(0, 0, 4, 50, 500),
        j(1, 1, 4, 50, 500),
        j(2, 2, 4, 50, 500),
    ];
    let got = run_easy(4, &jobs);
    assert_eq!(got[0], (0, 0, 50));
    assert_eq!(got[1], (1, 50, 100));
    assert_eq!(got[2], (2, 100, 150));
}

#[test]
fn queue_order_is_fcfs_among_equal_jobs() {
    // Identical competing jobs must start in arrival order.
    let jobs: Vec<Job> = (0..6).map(|i| j(i, i as u64, 4, 100, 100)).collect();
    let got = run_easy(4, &jobs);
    for w in got.windows(2) {
        assert!(w[0].1 <= w[1].1, "start order violates FCFS: {got:?}");
    }
}

#[test]
fn backfill_does_not_starve_head_under_stream_of_small_jobs() {
    // A continuous stream of small jobs could starve the wide head job if
    // backfilling ignored the reservation. The head must start exactly when
    // the first two long jobs end.
    let mut jobs = vec![
        j(0, 0, 4, 1000, 1000), // holds the machine
        j(1, 1, 4, 1000, 1000), // head after J0: needs all 4 cpus
    ];
    // 20 one-cpu jobs arriving every 50 s, each 400 s long.
    for i in 0..20 {
        jobs.push(j(2 + i, 2 + (i as u64) * 50, 1, 400, 400));
    }
    let got = run_easy(4, &jobs);
    let head = got.iter().find(|&&(id, _, _)| id == 1).unwrap();
    assert_eq!(head.1, 1000, "head must start exactly at J0's completion");
}

#[test]
fn exact_fit_handover() {
    // Two jobs that exactly fill the machine back to back.
    let jobs = vec![j(0, 0, 16, 100, 100), j(1, 0, 16, 100, 100)];
    let got = run_easy(16, &jobs);
    assert_eq!(got[0].1, 0);
    assert_eq!(got[1].1, 100);
}

#[test]
fn fcfs_vs_easy_differ_only_by_backfilling() {
    let jobs = vec![
        j(0, 0, 3, 100, 100),
        j(1, 1, 4, 100, 100),
        j(2, 2, 1, 50, 50),
    ];
    let gears = GearSet::paper();
    let tm = BetaModel::new(gears.clone());
    let cluster = Cluster::new("t", 4, gears.clone());
    let top = FixedGearPolicy::new(gears.top());
    let easy = simulate(&cluster, &jobs, &top, &tm, &EngineConfig::default()).unwrap();
    let fcfs = simulate(
        &cluster,
        &jobs,
        &top,
        &tm,
        &EngineConfig {
            backfill: false,
            ..Default::default()
        },
    )
    .unwrap();
    let start = |res: &bsld::sched::SimResult, id: u32| {
        res.outcomes
            .iter()
            .find(|o| o.id == JobId(id))
            .unwrap()
            .start
            .as_secs()
    };
    // Head and first job identical in both.
    assert_eq!(start(&easy, 0), start(&fcfs, 0));
    assert_eq!(start(&easy, 1), start(&fcfs, 1));
    // The small job backfills only under EASY.
    assert_eq!(start(&easy, 2), 2);
    assert_eq!(start(&fcfs, 2), 200);
}

#[test]
fn makespan_lower_bound_holds() {
    // Makespan can never beat total work / machine size.
    let jobs: Vec<Job> = (0..40)
        .map(|i| j(i, (i as u64) * 10, 1 + (i % 8), 100 + (i as u64 % 300), 600))
        .collect();
    let gears = GearSet::paper();
    let tm = BetaModel::new(gears.clone());
    let res = simulate(
        &Cluster::new("t", 16, gears.clone()),
        &jobs,
        &FixedGearPolicy::new(gears.top()),
        &tm,
        &EngineConfig::default(),
    )
    .unwrap();
    let area: u64 = jobs.iter().map(|jb| jb.area()).sum();
    let lower = area / 16;
    assert!(
        res.makespan.as_secs() >= lower,
        "makespan {} below work lower bound {lower}",
        res.makespan
    );
}
