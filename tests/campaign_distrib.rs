//! Distributed-campaign integration tests: shard partition properties,
//! worker × N + merge byte-identity with the single-process path
//! (including after killing and re-running a worker mid-shard), overlap
//! dedup vs. conflict rejection, spec pinning, coverage validation, and
//! per-unit wall-time budgets.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::collections::HashSet;
use std::path::PathBuf;

use bsld::core::campaign::{
    read_manifest_at, run_campaign, Campaign, CampaignOptions, CellId, RepOutcome, RepRow,
    JSON_FILE, RESULTS_FILE,
};
use bsld::core::distrib::{
    merge_campaign, run_worker, shard_of, worker_manifest_file, Shard, SPEC_FILE,
};
use bsld::core::scenario::{ProfileName, Scenario, ScenarioSet, SweepAxis, WorkloadSpec};
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsld_distrib_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn campaign_set(replications: u32) -> ScenarioSet {
    let base = Scenario::synthetic("dist", ProfileName::SdscBlue, 80, 42).map_workload(|w| {
        if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
            *scale_cpus = Some(64);
        }
    });
    ScenarioSet {
        base,
        axes: vec![SweepAxis::BsldThreshold(vec![1.5, 2.0, 3.0])],
        replications,
        cell_budget_s: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any planned campaign and any shard count N, the N shards are
    /// pairwise disjoint and together cover every planned unit — the
    /// invariant `campaign-merge` relies on for its coverage check.
    #[test]
    fn shards_partition_the_unit_space(
        th10 in proptest::collection::vec(10u32..400, 1..5),
        reps in 1u32..=6,
        n in 1u32..=16,
    ) {
        // Deduplicate thresholds: identical sweep values are (rightly)
        // rejected by the planner as indistinguishable cells.
        let mut th10 = th10;
        th10.sort_unstable();
        th10.dedup();
        let mut set = campaign_set(reps);
        set.axes = vec![SweepAxis::BsldThreshold(
            th10.into_iter().map(|t| t as f64 / 10.0).collect(),
        )];
        let campaign = Campaign::plan(&set).map_err(TestCaseError::fail)?;
        let mut assigned: Vec<HashSet<(CellId, u32)>> = vec![HashSet::new(); n as usize];
        for u in &campaign.units {
            let id = campaign.cells[u.cell].id;
            let s = shard_of(id, u.rep, n);
            prop_assert!(s < n, "shard out of range");
            assigned[s as usize].insert((id, u.rep));
        }
        // Disjoint (each unit was inserted into exactly one set) and
        // covering: the union has exactly one entry per planned unit.
        let total: usize = assigned.iter().map(HashSet::len).sum();
        prop_assert_eq!(total, campaign.units.len());
        let union: HashSet<_> = assigned.iter().flatten().collect();
        prop_assert_eq!(union.len(), campaign.units.len());
    }
}

/// Shard assignment is content-keyed: permuting the sweep axes (which
/// renames cells and reorders expansion) moves no unit to another shard.
#[test]
fn shard_assignment_survives_axis_permutation() {
    let mut a = campaign_set(2);
    a.axes = vec![
        SweepAxis::BsldThreshold(vec![1.5, 3.0]),
        SweepAxis::EnlargePct(vec![0, 50]),
    ];
    let mut b = a.clone();
    b.axes.reverse();
    let plan_a = Campaign::plan(&a).unwrap();
    let plan_b = Campaign::plan(&b).unwrap();
    let ids = |c: &Campaign| -> HashSet<CellId> { c.cells.iter().map(|cell| cell.id).collect() };
    assert_eq!(ids(&plan_a), ids(&plan_b), "cell identity ignores naming");
    for n in [1u32, 2, 3, 7] {
        // Cross-plan: every unit of plan A exists in plan B under the
        // same content key and lands on the same shard, even though its
        // expansion position and cell name differ.
        let b_shards: std::collections::HashMap<(CellId, u32), u32> = plan_b
            .units
            .iter()
            .map(|u| {
                let id = plan_b.cells[u.cell].id;
                ((id, u.rep), shard_of(id, u.rep, n))
            })
            .collect();
        for u in &plan_a.units {
            let id = plan_a.cells[u.cell].id;
            assert_eq!(
                b_shards.get(&(id, u.rep)),
                Some(&shard_of(id, u.rep, n)),
                "unit missing or re-sharded under permuted axes (n = {n})"
            );
        }
        // The shard → unit-set map is identical for both axis orders.
        let split = |c: &Campaign| -> Vec<HashSet<(CellId, u32)>> {
            let mut out = vec![HashSet::new(); n as usize];
            for u in &c.units {
                let id = c.cells[u.cell].id;
                out[shard_of(id, u.rep, n) as usize].insert((id, u.rep));
            }
            out
        };
        assert_eq!(split(&plan_a), split(&plan_b), "n = {n}");
    }
}

/// The headline guarantee: N workers + merge reproduce the single-process
/// artifacts byte for byte.
#[test]
fn three_workers_plus_merge_match_single_process_bytes() {
    let set = campaign_set(3);
    let single = tmp_dir("single");
    run_campaign(&set, &CampaignOptions::fresh(2, &single), None).unwrap();

    let shared = tmp_dir("shared");
    for i in 0..3 {
        let out = run_worker(&set, Shard::new(i, 3).unwrap(), 2, &shared, None).unwrap();
        assert!(out.failures.is_empty(), "shard {i}");
        assert_eq!(out.total_units, 9);
    }
    let merged = merge_campaign(&shared).unwrap();
    assert!(merged.outcome.failures.is_empty());
    assert_eq!(merged.workers, vec![0, 1, 2]);
    assert_eq!(merged.duplicate_rows, 0);

    for file in [RESULTS_FILE, JSON_FILE] {
        let a = std::fs::read_to_string(single.join(file)).unwrap();
        let b = std::fs::read_to_string(shared.join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical");
    }
    // Every unit appears exactly once across the worker manifests.
    let mut seen = HashSet::new();
    for i in 0..3 {
        for row in read_manifest_at(&shared.join(worker_manifest_file(i))).unwrap() {
            assert!(seen.insert((row.cell, row.rep)), "duplicate unit");
        }
    }
    assert_eq!(seen.len(), 9);
    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&shared).ok();
}

/// Killing a worker after its first flushed row and re-running it resumes
/// that shard; the merge still matches the single-process run.
#[test]
fn killed_worker_reruns_and_merge_still_matches() {
    let set = campaign_set(3);
    let single = tmp_dir("ksingle");
    run_campaign(&set, &CampaignOptions::fresh(2, &single), None).unwrap();

    let shared = tmp_dir("kshared");
    // Worker 0 runs fully...
    let full = run_worker(&set, Shard::new(0, 3).unwrap(), 1, &shared, None).unwrap();
    assert!(full.shard_units >= 2, "test needs a shard with >= 2 units");
    // ...then "crashes": keep only the header and its first flushed row.
    let manifest = shared.join(worker_manifest_file(0));
    let text = std::fs::read_to_string(&manifest).unwrap();
    let kept: Vec<&str> = text.lines().take(2).collect();
    std::fs::write(&manifest, format!("{}\n", kept.join("\n"))).unwrap();

    // Re-running the same shard resumes: exactly one unit is cached.
    let rerun = run_worker(&set, Shard::new(0, 3).unwrap(), 1, &shared, None).unwrap();
    assert_eq!(rerun.resumed, 1, "one flushed row survives the kill");
    assert_eq!(rerun.shard_units, full.shard_units);

    for i in 1..3 {
        run_worker(&set, Shard::new(i, 3).unwrap(), 1, &shared, None).unwrap();
    }
    merge_campaign(&shared).unwrap();
    for file in [RESULTS_FILE, JSON_FILE] {
        let a = std::fs::read_to_string(single.join(file)).unwrap();
        let b = std::fs::read_to_string(shared.join(file)).unwrap();
        assert_eq!(a, b, "{file} must survive the kill + rerun");
    }
    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&shared).ok();
}

/// Identical overlap (a shard re-run under a different split, or a copied
/// manifest) is deduplicated; a conflicting row for the same unit is an
/// error, not silent corruption.
#[test]
fn merge_dedups_identical_overlap_and_rejects_conflicts() {
    let set = campaign_set(2);
    let shared = tmp_dir("overlap");
    for i in 0..2 {
        run_worker(&set, Shard::new(i, 2).unwrap(), 1, &shared, None).unwrap();
    }
    // Copy worker 0's rows into a bogus extra worker: pure overlap.
    std::fs::copy(
        shared.join(worker_manifest_file(0)),
        shared.join(worker_manifest_file(7)),
    )
    .unwrap();
    let merged = merge_campaign(&shared).unwrap();
    assert_eq!(merged.workers, vec![0, 1, 7]);
    assert!(merged.duplicate_rows > 0, "overlap must be deduplicated");

    // Corrupt one duplicated row's metric: now it conflicts.
    let path = shared.join(worker_manifest_file(7));
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let row = RepRow::parse_line(&lines[1]).expect("data row parses");
    assert!(matches!(row.outcome, RepOutcome::Ok(_)));
    lines[1] = {
        let mut r = row.clone();
        if let RepOutcome::Ok(m) = &mut r.outcome {
            m.avg_bsld += 1.0;
        }
        r.to_csv_line()
    };
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
    let err = merge_campaign(&shared).unwrap_err().to_string();
    assert!(err.contains("conflicting rows"), "{err}");
    assert!(
        err.contains("worker 7") || err.contains("worker 0"),
        "{err}"
    );
    std::fs::remove_dir_all(&shared).ok();
}

/// A manifest whose index spelling doesn't round-trip through the
/// canonical file name (`worker-01.csv`) is still read from its actual
/// path — its rows must not be silently dropped.
#[test]
fn merge_reads_non_canonical_manifest_names() {
    let set = campaign_set(2);
    let shared = tmp_dir("spelling");
    for i in 0..2 {
        run_worker(&set, Shard::new(i, 2).unwrap(), 1, &shared, None).unwrap();
    }
    // Rename worker 1's manifest to a zero-padded spelling: discovery
    // parses index 1, but the canonical name `worker-1.csv` no longer
    // exists on disk.
    std::fs::rename(
        shared.join(worker_manifest_file(1)),
        shared.join("campaign_manifest.worker-01.csv"),
    )
    .unwrap();
    let merged = merge_campaign(&shared).expect("rows must be found at their actual path");
    assert_eq!(merged.outcome.rows.len(), 6, "no rows dropped");
    assert!(merged.outcome.failures.is_empty());
    std::fs::remove_dir_all(&shared).ok();
}

/// The shared directory is pinned to one campaign: a worker arriving with
/// a different spec is rejected; merge without any workers (or without a
/// pinned spec) is an error.
#[test]
fn spec_pinning_and_merge_validation() {
    let set = campaign_set(2);
    let shared = tmp_dir("pin");
    run_worker(&set, Shard::new(0, 2).unwrap(), 1, &shared, None).unwrap();
    assert!(shared.join(SPEC_FILE).exists());

    let mut other = set.clone();
    if let WorkloadSpec::Synthetic { seed, .. } = &mut other.base.workload {
        *seed += 1;
    }
    let err = run_worker(&other, Shard::new(1, 2).unwrap(), 1, &shared, None)
        .unwrap_err()
        .to_string();
    assert!(err.contains("different campaign"), "{err}");

    // Merging with a missing shard names the unfinished units.
    let err = merge_campaign(&shared).unwrap_err().to_string();
    assert!(err.contains("no row in any worker manifest"), "{err}");
    assert!(err.contains("campaign-worker"), "{err}");

    // A directory without a pinned spec cannot merge.
    let empty = tmp_dir("pin_empty");
    let err = merge_campaign(&empty).unwrap_err().to_string();
    assert!(err.contains(SPEC_FILE), "{err}");
    std::fs::remove_dir_all(&shared).ok();
    std::fs::remove_dir_all(&empty).ok();
}

/// A zero cell budget aborts every unit deterministically: the sweep
/// completes (no stall), every unit is a `failed` row with the budget
/// reason, and a resume does not re-burn wall-clock on them.
#[test]
fn zero_budget_records_failed_rows_and_completes() {
    let mut set = campaign_set(2);
    set.cell_budget_s = Some(0.0);
    let dir = tmp_dir("budget");
    let out = run_campaign(&set, &CampaignOptions::fresh(2, &dir), None).unwrap();
    assert_eq!(out.total_units, 6);
    assert_eq!(out.failures.len(), 6, "{:?}", out.failures);
    assert!(out.summaries.is_empty(), "no cell completed");
    assert_eq!(out.rows.len(), 6, "failed rows are rows too");
    for row in &out.rows {
        match &row.outcome {
            RepOutcome::Failed { reason } => {
                assert!(reason.contains("cell_budget_s"), "{reason}")
            }
            RepOutcome::Ok(_) => panic!("unit must have been cut off"),
        }
    }
    // Resume: all six failed rows are cached, nothing reruns.
    let resumed = run_campaign(&set, &CampaignOptions::resume(2, &dir), None).unwrap();
    assert_eq!(resumed.resumed, 6);
    assert_eq!(resumed.failures.len(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

/// An infeasible cell (hard cap nothing can start under) fails while the
/// rest of the sweep completes and aggregates — in the single process, in
/// the sharded workers, and byte-identically across the two.
#[test]
fn infeasible_cell_fails_but_sweep_completes_everywhere() {
    let mut set = campaign_set(2);
    set.axes = vec![SweepAxis::CapFraction(vec![0.001, 1.0])];
    let single = tmp_dir("capsingle");
    let out = run_campaign(&set, &CampaignOptions::fresh(2, &single), None).unwrap();
    assert_eq!(out.total_units, 4);
    assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
    assert_eq!(out.summaries.len(), 1, "the feasible cell aggregates");
    assert_eq!(out.summaries[0].bsld.n, 2);

    let shared = tmp_dir("capshared");
    let mut worker_failures = 0;
    for i in 0..2 {
        // A worker reports its shard's failures but still completes.
        let w = run_worker(&set, Shard::new(i, 2).unwrap(), 1, &shared, None).unwrap();
        worker_failures += w.failures.len();
    }
    assert_eq!(worker_failures, 2, "both infeasible units reported");
    let merged = merge_campaign(&shared).unwrap();
    assert_eq!(merged.outcome.failures.len(), 2);
    for file in [RESULTS_FILE, JSON_FILE] {
        let a = std::fs::read_to_string(single.join(file)).unwrap();
        let b = std::fs::read_to_string(shared.join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical with failures too");
    }
    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&shared).ok();
}

/// Shard::parse accepts I/N and rejects malformed or out-of-range slots.
#[test]
fn shard_parse_validates() {
    assert_eq!(Shard::parse("0/3").unwrap(), Shard::new(0, 3).unwrap());
    assert_eq!(Shard::parse("2/3").unwrap().to_string(), "2/3");
    for bad in ["3/3", "1/0", "x/3", "1/x", "13", ""] {
        assert!(Shard::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}
