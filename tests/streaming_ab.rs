//! A/B oracles for the streaming replay data path: the streaming SWF load
//! (`SwfStream` → `clean_swf_stream` → `Workload`) must be bit-identical
//! to the legacy in-memory path (`read_to_string` → `parse_swf` →
//! `clean_trace` → `Workload::from_swf`) — same jobs, same simulation
//! outcomes, same result-file bytes, same errors.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::campaign::{run_campaign, CampaignOptions, RESULTS_FILE};
use bsld::core::scenario::{run_many, ScenarioSet, WorkloadSpec};
use bsld::core::{set_swf_in_memory, sweep_report, CellOutcome};
use bsld::workload::profiles::TraceProfile;
use bsld::workload::Workload;
use std::path::PathBuf;

/// A scratch directory unique to this test (parallel tests must not
/// collide), removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("bsld-ab-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The five calibrated profiles the paper evaluates.
fn profiles() -> Vec<(&'static str, TraceProfile)> {
    vec![
        ("ctc", TraceProfile::ctc()),
        ("sdsc", TraceProfile::sdsc()),
        ("blue", TraceProfile::sdsc_blue()),
        ("thunder", TraceProfile::llnl_thunder()),
        ("atlas", TraceProfile::llnl_atlas()),
    ]
}

fn assert_same_workload(a: &Workload, b: &Workload, tag: &str) {
    assert_eq!(a.cpus, b.cpus, "{tag}: cpus");
    assert_eq!(a.cluster_name, b.cluster_name, "{tag}: name");
    assert_eq!(a.jobs.len(), b.jobs.len(), "{tag}: job count");
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.id, y.id, "{tag}: id");
        assert_eq!(x.arrival, y.arrival, "{tag}: arrival");
        assert_eq!(x.cpus, y.cpus, "{tag}: cpus of {:?}", x.id);
        assert_eq!(x.runtime, y.runtime, "{tag}: runtime of {:?}", x.id);
        assert_eq!(x.requested, y.requested, "{tag}: requested of {:?}", x.id);
    }
}

/// All five workload profiles, exported to SWF and replayed: the streaming
/// build equals the in-memory pipeline reproduced step by step from the
/// public API.
#[test]
fn five_profiles_stream_and_in_memory_builds_are_bit_identical() {
    let scratch = Scratch::new("profiles");
    for (key, profile) in profiles() {
        let w = profile.scaled_cpus(128).generate(7, 400);
        let path = scratch.path(&format!("{key}.swf"));
        let text = bsld::swf::write_swf(&w.to_swf());
        std::fs::write(&path, &text).unwrap();

        let spec = WorkloadSpec::Swf {
            path: path.clone(),
            clean: true,
        };
        let streamed = spec.build().unwrap();

        // The legacy path, spelled out: slurp, parse, clean, convert.
        let mut trace = bsld::swf::parse_swf(&text).unwrap();
        bsld::swf::clean_trace(&mut trace, &bsld::swf::CleanConfig::default());
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap();
        let in_memory = Workload::from_swf(name, &trace);

        assert_same_workload(&streamed, &in_memory, key);
        assert!(!streamed.jobs.is_empty(), "{key}: replay must keep jobs");
    }
}

/// The `clean = false` replay path: a raw collect over the stream equals
/// the raw in-memory parse.
#[test]
fn unclean_replay_matches_raw_parse() {
    let scratch = Scratch::new("unclean");
    let path = scratch.path("raw.swf");
    let mut buf = Vec::new();
    bsld::swf::generate_swf(&mut buf, 500, 3, 64).unwrap();
    std::fs::write(&path, &buf).unwrap();

    let spec = WorkloadSpec::Swf {
        path: path.clone(),
        clean: false,
    };
    let streamed = spec.build().unwrap();
    let trace = bsld::swf::parse_swf(std::str::from_utf8(&buf).unwrap()).unwrap();
    let in_memory = Workload::from_swf("raw", &trace);
    assert_same_workload(&streamed, &in_memory, "unclean");
}

/// The end-to-end oracle behind the CLI's `--swf-in-memory` flag: the same
/// scenario sweep run through both load paths yields byte-identical result
/// tables and `scenario_results.csv` contents.
#[test]
fn scenario_sweep_is_byte_identical_under_the_toggle() {
    let scratch = Scratch::new("sweep");
    let path = scratch.path("sweep.swf");
    let w = TraceProfile::ctc().scaled_cpus(64).generate(11, 300);
    std::fs::write(&path, bsld::swf::write_swf(&w.to_swf())).unwrap();

    let scn = format!(
        "scenario = ab\nworkload = swf\nswf_path = {}\nsweep.bsld_th = 1.5 3\n",
        path.display()
    );
    let render = || {
        let set = ScenarioSet::parse(&scn).unwrap();
        let cells = set.expand().unwrap();
        let rows: Vec<(String, Result<CellOutcome, String>)> = cells
            .iter()
            .zip(run_many(&cells, 1))
            .map(|(sc, res)| {
                (
                    sc.name.clone(),
                    res.map(|r| CellOutcome::of(&r)).map_err(|e| e.to_string()),
                )
            })
            .collect();
        let report = sweep_report(&rows);
        (report.table, report.csv)
    };

    let streaming = render();
    set_swf_in_memory(true);
    let in_memory = render();
    set_swf_in_memory(false);
    assert_eq!(streaming.0, in_memory.0, "result tables diverged");
    assert_eq!(streaming.1, in_memory.1, "scenario_results.csv diverged");
}

/// The campaign layer under the toggle: manifest-backed runs of the same
/// replay produce byte-identical `campaign_results.csv` files.
#[test]
fn campaign_results_are_byte_identical_under_the_toggle() {
    let scratch = Scratch::new("campaign");
    let path = scratch.path("campaign.swf");
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(5, 250);
    std::fs::write(&path, bsld::swf::write_swf(&w.to_swf())).unwrap();

    let scn = format!(
        "scenario = replay\nworkload = swf\nswf_path = {}\n",
        path.display()
    );
    let run_into = |dir: PathBuf| {
        std::fs::create_dir_all(&dir).unwrap();
        let set = ScenarioSet::parse(&scn).unwrap();
        let opts = CampaignOptions {
            threads: 1,
            dir: Some(dir.clone()),
            resume: false,
        };
        run_campaign(&set, &opts, None).unwrap();
        std::fs::read(dir.join(RESULTS_FILE)).unwrap()
    };

    let streaming = run_into(scratch.path("out-stream"));
    set_swf_in_memory(true);
    let in_memory = run_into(scratch.path("out-mem"));
    set_swf_in_memory(false);
    assert_eq!(streaming, in_memory, "campaign_results.csv diverged");
}

/// Error identity: a trace with a garbage tail (torn download) fails with
/// the *same* error through both load paths, and a truncated final line is
/// likewise path-independent.
#[test]
fn damaged_traces_fail_identically_on_both_paths() {
    let scratch = Scratch::new("damage");
    let mut good = Vec::new();
    bsld::swf::generate_swf(&mut good, 50, 1, 32).unwrap();

    for (tag, tail) in [
        ("garbage", "this is not an swf line at all\n"),
        ("truncated", "51 1000 -1 10\n"),
    ] {
        let path = scratch.path(&format!("{tag}.swf"));
        let mut bytes = good.clone();
        bytes.extend_from_slice(tail.as_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let spec = WorkloadSpec::Swf { path, clean: true };
        let streaming_err = spec.build().unwrap_err().to_string();
        set_swf_in_memory(true);
        let in_memory_err = spec.build().unwrap_err().to_string();
        set_swf_in_memory(false);
        assert_eq!(streaming_err, in_memory_err, "{tag}: errors diverged");
        assert!(
            streaming_err.contains("line"),
            "{tag}: error should locate the bad line: {streaming_err}"
        );
    }
}

/// A missing file is the same `cannot read …` error on both paths.
#[test]
fn missing_file_error_is_path_independent() {
    let spec = WorkloadSpec::Swf {
        path: PathBuf::from("/nonexistent/void.swf"),
        clean: true,
    };
    let streaming_err = spec.build().unwrap_err().to_string();
    set_swf_in_memory(true);
    let in_memory_err = spec.build().unwrap_err().to_string();
    set_swf_in_memory(false);
    assert_eq!(streaming_err, in_memory_err);
    assert!(streaming_err.contains("cannot read"), "{streaming_err}");
}
