//! Integration tests: scheduling substrates beyond the paper's EASY —
//! conservative backfilling and resource selection policies — exercised at
//! workload scale through the facade.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::SelectionPolicy;
use bsld::core::{PowerAwareConfig, Simulator};
use bsld::sched::validate_schedule;
use bsld::workload::profiles::TraceProfile;

#[test]
fn conservative_absorbs_dvfs_feedback_better_than_easy() {
    // The reproduction's headline extra finding: conservative backfilling's
    // duration-aware per-job reservations price the DVFS dilation into
    // every allocation, which dampens the wait-feedback loop that hurts
    // EASY at aggressive settings.
    let w = TraceProfile::sdsc_blue().generate(2010, 1500);
    let cfg = PowerAwareConfig::medium();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let easy = sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics;
    let cons = sim
        .clone()
        .with_conservative()
        .run_power_aware(&w.jobs, &cfg)
        .unwrap()
        .metrics;
    assert!(
        cons.avg_bsld <= easy.avg_bsld,
        "conservative should absorb the feedback: {} vs {}",
        cons.avg_bsld,
        easy.avg_bsld
    );
    // At comparable energy (within a few percent).
    let ratio = cons.energy.computational / easy.energy.computational;
    assert!((0.9..=1.1).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn conservative_baseline_close_to_easy_on_moderate_load() {
    let w = TraceProfile::ctc().generate(7, 1200);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let easy = sim.run_baseline(&w.jobs).unwrap();
    let cons = sim
        .clone()
        .with_conservative()
        .run_baseline(&w.jobs)
        .unwrap();
    validate_schedule(&cons.outcomes, w.cpus).unwrap();
    // Conservative sacrifices some backfilling; waits may rise, but the
    // schedules live in the same regime (classic EASY-vs-conservative
    // result from the backfilling literature).
    assert!(cons.metrics.avg_wait_secs >= easy.metrics.avg_wait_secs * 0.8);
    assert!(cons.metrics.avg_wait_secs <= easy.metrics.avg_wait_secs * 3.0 + 600.0);
}

#[test]
fn contiguous_selection_costs_throughput() {
    let w = TraceProfile::sdsc().generate(11, 800);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let ff = sim.run_baseline(&w.jobs).unwrap();
    let contig = sim
        .clone()
        .with_selection(SelectionPolicy::ContiguousFirstFit)
        .run_baseline(&w.jobs)
        .unwrap();
    validate_schedule(&contig.outcomes, w.cpus).unwrap();
    assert!(
        contig.metrics.avg_wait_secs >= ff.metrics.avg_wait_secs,
        "fragmentation cannot reduce waits: {} vs {}",
        contig.metrics.avg_wait_secs,
        ff.metrics.avg_wait_secs
    );
    assert!(contig.metrics.makespan_secs >= ff.metrics.makespan_secs);
}

#[test]
fn selection_policy_does_not_change_energy_accounting() {
    // Last Fit is schedule-identical to First Fit, so all metrics match
    // exactly (processor identity is invisible to count-based scheduling
    // and to the homogeneous power model).
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(13, 400);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let ff = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap()
        .metrics;
    let lf = sim
        .clone()
        .with_selection(SelectionPolicy::LastFit)
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap()
        .metrics;
    assert_eq!(ff.avg_bsld.to_bits(), lf.avg_bsld.to_bits());
    assert_eq!(
        ff.energy.computational.to_bits(),
        lf.energy.computational.to_bits()
    );
    assert_eq!(ff.reduced_jobs, lf.reduced_jobs);
}

#[test]
fn conservative_composes_with_boost() {
    let w = TraceProfile::llnl_thunder()
        .scaled_cpus(96)
        .generate(17, 400);
    let cfg = PowerAwareConfig {
        bsld_threshold: 3.0,
        wq_threshold: bsld::core::WqThreshold::NoLimit,
    };
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus).with_conservative();
    let plain = sim.run_power_aware(&w.jobs, &cfg).unwrap();
    let boosted = sim
        .clone()
        .with_boost(2)
        .run_power_aware(&w.jobs, &cfg)
        .unwrap();
    validate_schedule(&boosted.outcomes, w.cpus).unwrap();
    assert!(boosted.metrics.avg_wait_secs <= plain.metrics.avg_wait_secs + 1.0);
    assert!(boosted.metrics.energy.computational >= plain.metrics.energy.computational - 1e-9);
}
