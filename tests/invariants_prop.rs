//! Property-based tests over randomly generated workloads.
//!
//! Rather than hand-picking scenarios, generate arbitrary job mixes and
//! assert the invariants that must hold for *every* schedule the engine can
//! produce, under both the baseline and the paper's policy.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::{Cluster, GearSet};
use bsld::core::{BsldThresholdPolicy, PowerAwareConfig, WqThreshold};
use bsld::model::Job;
use bsld::power::BetaModel;
use bsld::sched::{simulate, validate_schedule, EngineConfig, FixedGearPolicy, FrequencyPolicy};
use bsld::simkernel::Time;
use proptest::prelude::*;

/// Strategy: a random rigid job with arrival jitter, bounded size/runtime.
fn arb_job(max_cpus: u32) -> impl Strategy<Value = (u64, u32, u64, u64)> {
    (
        0u64..20_000,            // arrival offset
        1u32..=max_cpus,         // cpus
        1u64..5_000,             // runtime
        proptest::num::u64::ANY, // estimate inflation source
    )
        .prop_map(|(arr, cpus, run, infl)| {
            let factor = 1 + (infl % 8); // requested in [runtime, 8×runtime]
            (arr, cpus, run, run.saturating_mul(factor).max(run))
        })
}

fn build_jobs(raw: Vec<(u64, u32, u64, u64)>) -> Vec<Job> {
    let mut arrivals: Vec<u64> = raw.iter().map(|r| r.0).collect();
    arrivals.sort_unstable();
    raw.into_iter()
        .zip(arrivals)
        .enumerate()
        .map(|(i, ((_, cpus, run, req), arr))| Job::new(i as u32, Time(arr), cpus, run, req))
        .collect()
}

fn run_policy<P: FrequencyPolicy>(
    cpus: u32,
    jobs: &[Job],
    policy: &P,
) -> Vec<bsld::model::JobOutcome> {
    let gears = GearSet::paper();
    let tm = BetaModel::new(gears.clone());
    let res = simulate(
        &Cluster::new("prop", cpus, gears),
        jobs,
        policy,
        &tm,
        &EngineConfig::default(),
    )
    .unwrap();
    res.outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The baseline schedule is always physically valid and complete.
    #[test]
    fn baseline_schedule_always_valid(raw in proptest::collection::vec(arb_job(16), 1..120)) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let outcomes = run_policy(16, &jobs, &FixedGearPolicy::new(gears.top()));
        prop_assert_eq!(outcomes.len(), jobs.len());
        validate_schedule(&outcomes, 16).map_err(TestCaseError::fail)?;
        // No DVFS ⇒ exact nominal runtimes.
        for o in &outcomes {
            prop_assert_eq!(o.penalized_runtime(), o.nominal_runtime);
        }
    }

    /// The power-aware schedule is always valid, never dilates beyond the
    /// lowest gear's coefficient, and never shortens a job.
    #[test]
    fn policy_schedule_always_valid(
        raw in proptest::collection::vec(arb_job(16), 1..120),
        th in 1.2f64..4.0,
        wq in 0usize..20,
    ) {
        let jobs = build_jobs(raw);
        let policy = BsldThresholdPolicy::new(PowerAwareConfig {
            bsld_threshold: th,
            wq_threshold: if wq >= 18 { WqThreshold::NoLimit } else { WqThreshold::Limit(wq) },
        });
        let outcomes = run_policy(16, &jobs, &policy);
        prop_assert_eq!(outcomes.len(), jobs.len());
        validate_schedule(&outcomes, 16).map_err(TestCaseError::fail)?;
        let max_coef = 0.5 * (2.3 / 0.8 - 1.0) + 1.0 + 1e-9;
        for o in &outcomes {
            let dilation = o.penalized_runtime() as f64 / o.nominal_runtime as f64;
            prop_assert!(dilation >= 0.99, "{}: shrunk to {dilation}", o.id);
            // Rounding to whole seconds can push tiny jobs slightly past
            // the ideal coefficient; allow +1 s slack.
            let limit = (o.nominal_runtime as f64 * max_coef).round() + 1.0;
            prop_assert!(
                o.penalized_runtime() as f64 <= limit,
                "{}: dilated past the lowest gear: {} > {}",
                o.id, o.penalized_runtime(), limit
            );
        }
    }

    /// Total busy time under the policy is at least the baseline's, and
    /// computational energy is at most the baseline's.
    #[test]
    fn policy_trades_time_for_energy(raw in proptest::collection::vec(arb_job(8), 1..80)) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let pm = bsld::power::PaperDvfs::paper(gears.clone());
        let base = run_policy(8, &jobs, &FixedGearPolicy::new(gears.top()));
        let policy = BsldThresholdPolicy::new(PowerAwareConfig::medium());
        let dvfs = run_policy(8, &jobs, &policy);

        let busy = |os: &[bsld::model::JobOutcome]| -> u64 { os.iter().map(|o| o.area()).sum() };
        prop_assert!(busy(&dvfs) >= busy(&base));

        let energy = |os: &[bsld::model::JobOutcome]| {
            let mut acc = bsld::power::EnergyAccount::new();
            for o in os {
                acc.add_outcome(&pm, o);
            }
            acc.finish(&pm, 8, 1).computational
        };
        prop_assert!(energy(&dvfs) <= energy(&base) + 1e-6);
    }

    /// With exact user estimates, making estimates *looser* (scaling
    /// requested times up) never breaks schedule validity.
    #[test]
    fn estimate_inflation_keeps_validity(
        raw in proptest::collection::vec(arb_job(8), 1..60),
        scale in 1u64..6,
    ) {
        let mut jobs = build_jobs(raw);
        for j in &mut jobs {
            j.requested = j.requested.saturating_mul(scale);
        }
        let gears = GearSet::paper();
        let outcomes = run_policy(8, &jobs, &FixedGearPolicy::new(gears.top()));
        validate_schedule(&outcomes, 8).map_err(TestCaseError::fail)?;
    }

    /// Determinism: the same input always produces the identical schedule.
    #[test]
    fn simulation_is_deterministic(raw in proptest::collection::vec(arb_job(12), 1..60)) {
        let jobs = build_jobs(raw);
        let policy = BsldThresholdPolicy::new(PowerAwareConfig::medium());
        let a = run_policy(12, &jobs, &policy);
        let b = run_policy(12, &jobs, &policy);
        prop_assert_eq!(a, b);
    }

    /// Conservative backfilling also always yields valid, complete
    /// schedules — under the baseline and the paper's policy.
    #[test]
    fn conservative_schedule_always_valid(
        raw in proptest::collection::vec(arb_job(16), 1..100),
        dvfs in proptest::bool::ANY,
    ) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let tm = BetaModel::new(gears.clone());
        let cfg = bsld::sched::EngineConfig {
            mode: bsld::sched::SchedMode::Conservative,
            ..Default::default()
        };
        let cluster = Cluster::new("prop", 16, gears.clone());
        let outcomes = if dvfs {
            let policy = BsldThresholdPolicy::new(PowerAwareConfig::medium());
            simulate(&cluster, &jobs, &policy, &tm, &cfg).unwrap().outcomes
        } else {
            let policy = FixedGearPolicy::new(gears.top());
            simulate(&cluster, &jobs, &policy, &tm, &cfg).unwrap().outcomes
        };
        prop_assert_eq!(outcomes.len(), jobs.len());
        validate_schedule(&outcomes, 16).map_err(TestCaseError::fail)?;
    }

    /// Contiguous selection: schedules stay valid, every allocation is one
    /// contiguous range, and no job can ever start *earlier* than under
    /// First Fit at the same decision points would allow physically.
    #[test]
    fn contiguous_selection_always_valid(raw in proptest::collection::vec(arb_job(16), 1..80)) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let tm = BetaModel::new(gears.clone());
        let cfg = bsld::sched::EngineConfig {
            selection: bsld::cluster::SelectionPolicy::ContiguousFirstFit,
            collect_trace: true,
            ..Default::default()
        };
        let cluster = Cluster::new("prop", 16, gears.clone());
        let policy = FixedGearPolicy::new(gears.top());
        let res = simulate(&cluster, &jobs, &policy, &tm, &cfg).unwrap();
        prop_assert_eq!(res.outcomes.len(), jobs.len());
        validate_schedule(&res.outcomes, 16).map_err(TestCaseError::fail)?;
    }

    /// The EASY no-delay guarantee, observed through the scheduling trace:
    /// for any job, successive reservations never move *later* — runtime
    /// over-estimates and early completions can only pull a reservation
    /// forward, and backfilled jobs are barred from pushing it back.
    #[test]
    fn easy_reservations_never_regress(raw in proptest::collection::vec(arb_job(16), 1..100)) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let tm = BetaModel::new(gears.clone());
        let cfg = bsld::sched::EngineConfig { collect_trace: true, ..Default::default() };
        let cluster = Cluster::new("prop", 16, gears.clone());
        let policy = FixedGearPolicy::new(gears.top());
        let res = simulate(&cluster, &jobs, &policy, &tm, &cfg).unwrap();
        let mut last_reservation: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for ev in &res.trace {
            match ev {
                bsld::sched::TraceEvent::Reserve { job, start, .. } => {
                    if let Some(&prev) = last_reservation.get(&job.0) {
                        prop_assert!(
                            start.as_secs() <= prev,
                            "{job}: reservation moved later ({prev} -> {start})"
                        );
                    }
                    last_reservation.insert(job.0, start.as_secs());
                }
                bsld::sched::TraceEvent::Start { job, at, .. } => {
                    if let Some(&reserved) = last_reservation.get(&job.0) {
                        prop_assert!(
                            at.as_secs() <= reserved,
                            "{job}: started at {at} after its reservation {reserved}"
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Non-contiguous selection policies are schedule-equivalent: the
    /// count-based scheduler cannot observe processor identity.
    #[test]
    fn last_fit_is_schedule_equivalent_to_first_fit(
        raw in proptest::collection::vec(arb_job(12), 1..80),
    ) {
        let jobs = build_jobs(raw);
        let gears = GearSet::paper();
        let tm = BetaModel::new(gears.clone());
        let cluster = Cluster::new("prop", 12, gears.clone());
        let policy = FixedGearPolicy::new(gears.top());
        let ff = simulate(&cluster, &jobs, &policy, &tm, &Default::default()).unwrap();
        let lf_cfg = bsld::sched::EngineConfig {
            selection: bsld::cluster::SelectionPolicy::LastFit,
            ..Default::default()
        };
        let lf = simulate(&cluster, &jobs, &policy, &tm, &lf_cfg).unwrap();
        for (a, b) in ff.outcomes.iter().zip(&lf.outcomes) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.finish, b.finish);
        }
    }
}
