//! Integration tests: the BSLD-threshold policy end to end.
//!
//! Each test pins one claim the paper makes about its algorithm's
//! behaviour, exercised through the full simulator on calibrated (scaled)
//! workloads.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::model::GearId;
use bsld::sched::validate_schedule;
use bsld::workload::profiles::TraceProfile;

fn cfg(bsld: f64, wq: WqThreshold) -> PowerAwareConfig {
    PowerAwareConfig {
        bsld_threshold: bsld,
        wq_threshold: wq,
    }
}

#[test]
fn single_idle_job_runs_at_lowest_gear() {
    // One long job on an empty machine: predicted BSLD at the lowest gear
    // is Coef(0.8 GHz) ≈ 1.94 ≤ 2 → the policy must pick gear 0.
    let w = TraceProfile::sdsc_blue().scaled_cpus(32).generate(1, 1);
    let sim = Simulator::paper_default("t", 32);
    let res = sim
        .run_power_aware(&w.jobs, &cfg(2.0, WqThreshold::NoLimit))
        .unwrap();
    assert_eq!(res.outcomes[0].gear, GearId(0));
    assert_eq!(res.metrics.reduced_jobs, 1);
}

#[test]
fn tight_threshold_reduces_fewer_jobs() {
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(3, 400);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let strict = sim
        .run_power_aware(&w.jobs, &cfg(1.2, WqThreshold::NoLimit))
        .unwrap();
    let loose = sim
        .run_power_aware(&w.jobs, &cfg(3.0, WqThreshold::NoLimit))
        .unwrap();
    assert!(
        strict.metrics.reduced_jobs <= loose.metrics.reduced_jobs,
        "{} > {}",
        strict.metrics.reduced_jobs,
        loose.metrics.reduced_jobs
    );
    assert!(strict.metrics.energy.computational >= loose.metrics.energy.computational);
}

#[test]
fn wq_limit_ordering_on_energy() {
    // For a fixed BSLD threshold, relaxing the WQ limit can only admit more
    // DVFS: energy at WQ=NO ≤ energy at WQ=16 ≤ ... is the paper's
    // observation (it holds in expectation; we assert the endpoints).
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(5, 500);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let e = |wq| {
        sim.run_power_aware(&w.jobs, &cfg(2.0, wq))
            .unwrap()
            .metrics
            .energy
            .computational
    };
    let e0 = e(WqThreshold::Limit(0));
    let eno = e(WqThreshold::NoLimit);
    assert!(
        eno <= e0 * 1.02,
        "no-limit {eno} should not exceed WQ0 {e0}"
    );
}

#[test]
fn saturated_machine_gets_no_savings() {
    // The SDSC phenomenon: a machine under heavy backlog has such high
    // predicted BSLDs that the policy cannot reduce jobs. Use the full-size
    // SDSC profile (128 cpus) so the backlog dynamics match the paper's.
    let w = TraceProfile::sdsc().generate(2010, 4000);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim.run_baseline(&w.jobs).unwrap();
    assert!(
        base.metrics.avg_bsld > 10.0,
        "workload must be saturated, got {}",
        base.metrics.avg_bsld
    );
    let dvfs = sim
        .run_power_aware(&w.jobs, &cfg(2.0, WqThreshold::Limit(16)))
        .unwrap();
    let norm = dvfs
        .metrics
        .energy
        .normalized_computational(&base.metrics.energy);
    assert!(
        norm > 0.9,
        "saturated workloads should save almost nothing, normalized = {norm}"
    );
    let frac = dvfs.metrics.reduced_jobs as f64 / w.jobs.len() as f64;
    assert!(
        frac < 0.5,
        "most jobs must stay at top frequency, reduced {frac}"
    );
}

#[test]
fn reduced_jobs_run_longer_but_schedule_stays_valid() {
    let w = TraceProfile::llnl_thunder()
        .scaled_cpus(128)
        .generate(9, 400);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim
        .run_power_aware(&w.jobs, &cfg(3.0, WqThreshold::NoLimit))
        .unwrap();
    validate_schedule(&res.outcomes, w.cpus).unwrap();
    let top = GearId(5);
    for o in &res.outcomes {
        let job = &w.jobs[o.id.index()];
        if o.was_reduced(top) {
            assert!(
                o.penalized_runtime() >= job.runtime,
                "{}: dilated runtime shorter than nominal",
                o.id
            );
        } else {
            assert_eq!(o.penalized_runtime(), job.runtime);
        }
    }
}

#[test]
fn policy_never_starts_jobs_early_or_shrinks_work() {
    let w = TraceProfile::ctc().scaled_cpus(64).generate(11, 500);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim.run_baseline(&w.jobs).unwrap();
    let dvfs = sim
        .run_power_aware(&w.jobs, &cfg(2.0, WqThreshold::NoLimit))
        .unwrap();
    // Aggregate dilation: total busy time under DVFS >= baseline.
    assert!(dvfs.metrics.energy.busy_cpu_secs >= base.metrics.energy.busy_cpu_secs);
    // Per-job arrival sanity under both.
    for o in base.outcomes.iter().chain(&dvfs.outcomes) {
        assert!(o.start >= o.arrival);
    }
}

#[test]
fn energy_saving_band_matches_paper_on_midload_workload() {
    // The paper's headline: 7–18 % average CPU energy reduction. SDSC-Blue
    // (mid load) with the medium config must land in a generous band around
    // that range.
    let w = TraceProfile::sdsc_blue().generate(2010, 1500);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim.run_baseline(&w.jobs).unwrap();
    let dvfs = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap();
    let saving = 1.0
        - dvfs
            .metrics
            .energy
            .normalized_computational(&base.metrics.energy);
    assert!(
        (0.04..=0.35).contains(&saving),
        "mid-load saving out of band: {saving}"
    );
}

#[test]
fn boost_extension_bounds_wait_inflation() {
    // With dynamic boost at a tight queue limit, the DVFS-induced wait
    // inflation must shrink relative to the un-boosted policy.
    let w = TraceProfile::llnl_thunder()
        .scaled_cpus(96)
        .generate(13, 500);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let c = cfg(3.0, WqThreshold::NoLimit);
    let plain = sim.run_power_aware(&w.jobs, &c).unwrap();
    let boosted = sim
        .clone()
        .with_boost(2)
        .run_power_aware(&w.jobs, &c)
        .unwrap();
    validate_schedule(&boosted.outcomes, w.cpus).unwrap();
    assert!(
        boosted.metrics.avg_wait_secs <= plain.metrics.avg_wait_secs + 1.0,
        "boost must not increase waits: {} vs {}",
        boosted.metrics.avg_wait_secs,
        plain.metrics.avg_wait_secs
    );
}
