//! Integration tests: the SWF pipeline — generate → write → parse → clean →
//! simulate — plus property-based round-trips.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::Simulator;
use bsld::sched::validate_schedule;
use bsld::swf::{
    clean_trace, parse_swf, select_segment, write_swf, CleanConfig, SwfHeader, SwfRecord, SwfTrace,
    TraceStats,
};
use bsld::workload::Workload;
use proptest::prelude::*;

/// A synthetic SWF file exercising the whole pipeline end to end.
#[test]
fn swf_to_simulation_pipeline() {
    // Build an SWF trace by hand (as if downloaded from the archive).
    let mut records = Vec::new();
    for i in 0..200i64 {
        let mut r = SwfRecord::simple(i + 1, i * 120, 300 + (i % 7) * 500, 1 + (i % 8), 4000);
        r.user = i % 13;
        r.status = 1;
        records.push(r);
    }
    // Add some damage: an unknown-size job and an overrunning job.
    records.push(SwfRecord::unknown());
    let mut overrun = SwfRecord::simple(900, 100, 9999, 2, 1000);
    overrun.req_time = 1000;
    records.push(overrun);

    let trace = SwfTrace {
        header: SwfHeader {
            max_procs: Some(16),
            max_runtime: Some(64_800),
            max_jobs: Some(records.len() as u64),
            unix_start_time: Some(1_000_000_000),
            extra: vec!["Computer: synthetic".into()],
        },
        records,
    };

    // Round-trip through text.
    let text = write_swf(&trace);
    let mut parsed = parse_swf(&text).unwrap();
    assert_eq!(parsed, trace);

    // Clean: drops the unknown record, clamps the overrun.
    let summary = clean_trace(&mut parsed, &CleanConfig::default());
    assert_eq!(summary.dropped_invalid, 1);
    assert_eq!(summary.clamped_runtime, 1);

    // Stats are sane.
    let stats = TraceStats::of(&parsed);
    assert_eq!(stats.jobs, parsed.records.len());
    assert!(stats.offered_load > 0.0);

    // Segment selection rebases to 0.
    let seg = select_segment(&parsed, 10, 100);
    assert_eq!(seg.records.len(), 100);
    assert_eq!(seg.records[0].submit, 0);

    // Simulate the cleaned segment.
    let w = Workload::from_swf("synthetic", &seg);
    assert_eq!(w.cpus, 16);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim.run_baseline(&w.jobs).unwrap();
    assert_eq!(res.outcomes.len(), w.jobs.len());
    validate_schedule(&res.outcomes, w.cpus).unwrap();
}

fn arb_record() -> impl Strategy<Value = SwfRecord> {
    (
        1i64..100_000,
        0i64..10_000_000,
        1i64..100_000,
        1i64..10_000,
        1i64..200_000,
        -1i64..500,
    )
        .prop_map(|(id, submit, run, procs, req, user)| {
            let mut r = SwfRecord::simple(id, submit, run, procs, req);
            r.user = user;
            r.wait = (submit % 997).max(-1);
            r.avg_cpu_time = run / 2;
            r.queue = user % 5;
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write ∘ parse is the identity on arbitrary record sets.
    #[test]
    fn roundtrip_arbitrary_traces(records in proptest::collection::vec(arb_record(), 0..60)) {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(10_000),
                ..Default::default()
            },
            records,
        };
        let text = write_swf(&trace);
        let parsed = parse_swf(&text).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Cleaning is idempotent: a second pass changes nothing.
    #[test]
    fn cleaning_is_idempotent(records in proptest::collection::vec(arb_record(), 0..80)) {
        let mut trace = SwfTrace {
            header: SwfHeader { max_procs: Some(5_000), ..Default::default() },
            records,
        };
        let cfg = CleanConfig::default();
        clean_trace(&mut trace, &cfg);
        let after_first = trace.clone();
        let second = clean_trace(&mut trace, &cfg);
        prop_assert_eq!(trace, after_first);
        prop_assert_eq!(second.dropped_invalid, 0);
        prop_assert_eq!(second.dropped_flurry, 0);
        prop_assert_eq!(second.clamped_runtime, 0);
    }

    /// Conversion never produces jobs violating the model invariants.
    #[test]
    fn conversion_invariants(records in proptest::collection::vec(arb_record(), 0..60)) {
        let jobs = bsld::swf::records_to_jobs(&records);
        for j in &jobs {
            prop_assert!(j.cpus >= 1);
            prop_assert!(j.runtime >= 1);
            prop_assert!(j.requested >= j.runtime);
        }
    }
}

/// An overrunning record (runtime past the user estimate) replayed through
/// the *uncleaned* conversion path: `records_to_jobs` applies
/// kill-at-request semantics, and the engine runs the result without
/// tripping its `wall <= expected` bookkeeping.
#[test]
fn overrunning_record_replays_with_kill_at_request() {
    let mut records = vec![
        SwfRecord::simple(1, 0, 3600, 8, 3600),
        SwfRecord::simple(2, 10, 500, 4, 7200),
    ];
    // Ran 900 s against a 600 s estimate: killed at 600.
    let mut overrun = SwfRecord::simple(3, 20, 900, 4, 600);
    overrun.req_time = 600;
    records.push(overrun);

    let trace = SwfTrace {
        header: SwfHeader {
            max_procs: Some(16),
            ..Default::default()
        },
        records,
    };
    // Deliberately no clean_trace: conversion itself must clamp.
    let w = Workload::from_swf("overrun", &trace);
    let killed = w.jobs.iter().find(|j| j.cpus == 4 && j.requested == 600);
    let killed = killed.expect("overrunning job converted");
    assert_eq!(killed.runtime, 600, "killed at the requested limit");

    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim.run_baseline(&w.jobs).unwrap();
    assert_eq!(res.outcomes.len(), w.jobs.len());
    validate_schedule(&res.outcomes, w.cpus).unwrap();
    let o = res
        .outcomes
        .iter()
        .find(|o| o.requested == 600)
        .expect("outcome for the killed job");
    assert_eq!(o.finish - o.start, 600, "executes for exactly the estimate");
}
