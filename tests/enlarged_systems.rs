//! Integration tests: the Section 5.2 enlarged-systems claims, at reduced
//! scale.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::experiments::{enlarged, ExpOptions};
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::workload::profiles::TraceProfile;

#[test]
fn enlarging_monotonically_improves_bsld_under_dvfs() {
    // Paper: "an additional increase in system size always gives an
    // improvement in performance" (Figure 9).
    let w = TraceProfile::sdsc_blue().scaled_cpus(96).generate(21, 500);
    let cfg = PowerAwareConfig::medium();
    let mut last = f64::INFINITY;
    for pct in [0u32, 20, 50, 100] {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus).enlarged(pct);
        let m = sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics;
        assert!(
            m.avg_bsld <= last * 1.02,
            "+{pct}%: BSLD {} should not exceed previous {last}",
            m.avg_bsld
        );
        last = m.avg_bsld;
    }
}

#[test]
fn computational_energy_decreases_with_size() {
    // Paper: "Logically, computational energy decreases with system
    // dimension increase" — shorter waits admit more DVFS.
    let w = TraceProfile::ctc().scaled_cpus(64).generate(23, 500);
    let cfg = PowerAwareConfig::medium();
    let energy = |pct: u32| {
        Simulator::paper_default(&w.cluster_name, w.cpus)
            .enlarged(pct)
            .run_power_aware(&w.jobs, &cfg)
            .unwrap()
            .metrics
            .energy
            .computational
    };
    let e0 = energy(0);
    let e50 = energy(50);
    let e125 = energy(125);
    assert!(
        e50 <= e0 * 1.02,
        "+50% must not raise computational energy: {e50} vs {e0}"
    );
    assert!(
        e125 <= e50 * 1.02,
        "+125% must not raise it further: {e125} vs {e50}"
    );
}

#[test]
fn idle_aware_energy_eventually_grows_with_size() {
    // Paper: in the idle=low scenario "there is a point after which further
    // increase in system size results in higher energy consumption".
    // Idle power of the extra processors must eventually dominate. Compare
    // the idle components directly: capacity grows linearly with size.
    let w = TraceProfile::llnl_thunder()
        .scaled_cpus(128)
        .generate(25, 400);
    let cfg = PowerAwareConfig::medium();
    let run = |pct: u32| {
        Simulator::paper_default(&w.cluster_name, w.cpus)
            .enlarged(pct)
            .run_power_aware(&w.jobs, &cfg)
            .unwrap()
            .metrics
            .energy
    };
    let e0 = run(0);
    let e125 = run(125);
    assert!(
        e125.idle_cpu_secs > e0.idle_cpu_secs,
        "a much larger machine must idle more: {} vs {}",
        e125.idle_cpu_secs,
        e0.idle_cpu_secs
    );
    // And the with-idle total reflects that pressure: the gap between
    // with_idle and computational grows with machine size.
    let overhead0 = e0.with_idle - e0.computational;
    let overhead125 = e125.with_idle - e125.computational;
    assert!(overhead125 > overhead0);
}

#[test]
fn table3_regimes_hold_at_small_scale() {
    // Structural Table 3 checks on the sweep: DVFS inflates waits at the
    // original size; +50 % processors deflates them below the DVFS-at-
    // original-size values.
    let s = enlarged::run(&ExpOptions::quick(120));
    for (name, base) in &s.baselines {
        let orig_no = s.cell(name, 0, WqThreshold::NoLimit).unwrap().avg_wait;
        let big_no = s.cell(name, 50, WqThreshold::NoLimit).unwrap().avg_wait;
        assert!(
            orig_no + 1.0 >= base.avg_wait_secs,
            "{name}: DVFS should not shorten waits at original size"
        );
        assert!(
            big_no <= orig_no + 1.0,
            "{name}: +50% should cut waits: {big_no} vs {orig_no}"
        );
    }
}

#[test]
fn enlarged_dvfs_beats_baseline_energy_at_20_percent() {
    // The headline claim: +20 % machine + power-aware scheduling can cut
    // computational energy substantially while holding performance.
    let w = TraceProfile::sdsc_blue().generate(27, 1200);
    let cfg = PowerAwareConfig {
        bsld_threshold: 2.0,
        wq_threshold: WqThreshold::Limit(0),
    };
    let sim0 = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim0.run_baseline(&w.jobs).unwrap().metrics;
    let dvfs20 = sim0
        .enlarged(20)
        .run_power_aware(&w.jobs, &cfg)
        .unwrap()
        .metrics;
    let norm = dvfs20.energy.normalized_computational(&base.energy);
    assert!(
        norm < 0.95,
        "+20% DVFS must save energy, normalized = {norm}"
    );
    // The performance crossover: by +50% the power-aware run must beat the
    // original-size baseline (the paper reports the crossover at +10–20 %;
    // our synthetic SDSC-Blue sits closer to saturation and crosses later).
    let dvfs50 = sim0
        .enlarged(50)
        .run_power_aware(&w.jobs, &cfg)
        .unwrap()
        .metrics;
    assert!(
        dvfs50.avg_bsld <= base.avg_bsld,
        "+50% DVFS must beat the original baseline: {} vs {}",
        dvfs50.avg_bsld,
        base.avg_bsld
    );
}
