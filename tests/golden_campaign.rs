//! Byte-identity oracle for the default (no `model` key) campaign path.
//!
//! `tests/golden/` holds a small campaign spec plus the
//! `campaign_results.csv` / `campaign.json` it produced **before** the
//! pluggable power-model subsystem existed. Re-running the spec must
//! reproduce both artifacts byte for byte: the refactor promised that a
//! spec which never mentions a model is priced, scheduled, aggregated and
//! rendered exactly as before.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::fs;
use std::path::{Path, PathBuf};

use bsld::core::campaign::{run_campaign, CampaignOptions, JSON_FILE, MANIFEST_FILE, RESULTS_FILE};
use bsld::core::ScenarioSet;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn no_model_campaign_artifacts_are_byte_identical() {
    let golden = golden_dir();
    let text = fs::read_to_string(golden.join("golden_campaign.scn")).unwrap();
    let set = ScenarioSet::parse(&text).unwrap();

    let out = std::env::temp_dir().join(format!("bsld-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&out);
    let outcome = run_campaign(&set, &CampaignOptions::fresh(2, &out), None).unwrap();
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);

    for name in [RESULTS_FILE, JSON_FILE] {
        let want = fs::read(golden.join(name)).unwrap();
        let got = fs::read(out.join(name)).unwrap();
        assert!(
            want == got,
            "{name} drifted from the pre-refactor golden:\n--- golden ---\n{}\n--- current ---\n{}",
            String::from_utf8_lossy(&want),
            String::from_utf8_lossy(&got),
        );
    }

    // The manifest now ends every row with per-unit wall-clock provenance
    // (`elapsed_s` plus the `parse_s`/`build_s`/`sim_s` phase split); the
    // byte-identical aggregates above prove it stays out of every derived
    // artifact.
    let manifest = fs::read_to_string(out.join(MANIFEST_FILE)).unwrap();
    let mut lines = manifest.lines();
    assert!(
        lines
            .next()
            .unwrap()
            .ends_with(",elapsed_s,parse_s,build_s,sim_s"),
        "manifest header must carry the wall-clock provenance columns"
    );
    for row in lines {
        let mut rest = row;
        for name in ["sim_s", "build_s", "parse_s", "elapsed_s"] {
            let (head, field) = rest.rsplit_once(',').unwrap();
            assert!(
                field.parse::<f64>().is_ok_and(|s| s >= 0.0),
                "bad {name} field {field:?} in manifest row {row:?}"
            );
            rest = head;
        }
    }
    let _ = fs::remove_dir_all(&out);
}
