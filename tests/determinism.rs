//! Integration tests: reproducibility guarantees.
//!
//! Every experiment in the reproduction must be bit-for-bit reproducible:
//! same seed ⇒ same workload ⇒ same schedule ⇒ same metrics — regardless of
//! how many worker threads the sweep uses.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::experiments::{grid, table1, ExpOptions};
use bsld::core::{PowerAwareConfig, Simulator};
use bsld::par::par_map;
use bsld::workload::profiles::TraceProfile;

#[test]
fn workload_generation_reproducible() {
    let a = TraceProfile::ctc().generate(99, 400);
    let b = TraceProfile::ctc().generate(99, 400);
    assert_eq!(a.jobs, b.jobs);
}

#[test]
fn seeds_actually_differ() {
    let a = TraceProfile::ctc().generate(1, 200);
    let b = TraceProfile::ctc().generate(2, 200);
    assert_ne!(a.jobs, b.jobs);
}

#[test]
fn simulation_metrics_reproducible() {
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(17, 400);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let m1 = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap()
        .metrics;
    let m2 = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap()
        .metrics;
    assert_eq!(m1.avg_bsld.to_bits(), m2.avg_bsld.to_bits());
    assert_eq!(
        m1.energy.computational.to_bits(),
        m2.energy.computational.to_bits()
    );
    assert_eq!(m1.reduced_jobs, m2.reduced_jobs);
}

#[test]
fn sweep_results_independent_of_thread_count() {
    let mk = |threads: usize| {
        let opts = ExpOptions {
            threads,
            ..ExpOptions::quick(60)
        };
        let g = grid::run(&opts);
        g.cells
            .iter()
            .map(|c| (c.workload.clone(), c.norm_e_comp.to_bits(), c.reduced_jobs))
            .collect::<Vec<_>>()
    };
    let seq = mk(1);
    let par4 = mk(4);
    let par16 = mk(16);
    assert_eq!(seq, par4);
    assert_eq!(seq, par16);
}

#[test]
fn table1_reproducible_across_runs() {
    let opts = ExpOptions::quick(60);
    let a = table1::run(&opts);
    let b = table1::run(&opts);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.avg_bsld.to_bits(), rb.avg_bsld.to_bits());
        assert_eq!(ra.avg_wait.to_bits(), rb.avg_wait.to_bits());
    }
}

#[test]
fn par_map_is_deterministic_under_contention() {
    // Heavier closure with shared-nothing state: results must be in input
    // order regardless of execution interleavings.
    let inputs: Vec<u64> = (0..200).collect();
    let expected: Vec<u64> = inputs.iter().map(|&x| x * x % 7919).collect();
    for threads in [1, 2, 8] {
        let got = par_map(inputs.clone(), threads, |x| x * x % 7919);
        assert_eq!(got, expected, "threads = {threads}");
    }
}
