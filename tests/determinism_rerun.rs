//! The dynamic half of the determinism contract.
//!
//! `bsld-repro audit` (crates/audit) enforces the *static* half: no hash
//! iteration, no wall-clock reads, no float-equality, in the crates whose
//! output is persisted. Its rules are lexical approximations, so this test
//! closes the loop dynamically: the golden campaign spec is executed
//!
//! 1. twice in fresh directories — results and report must be
//!    byte-identical across the two runs (same process, different
//!    allocator state and directory inodes, so any hash-order or
//!    address-keyed leak shows up); the append-log manifest must match as
//!    a row *set* when parallel and byte-for-byte single-threaded;
//! 2. once as two sharded workers plus a merge — the merged artifacts must
//!    be byte-identical to the single-process run, covering the
//!    distributed path the audit's flow-insensitive D1 heuristic cannot
//!    prove safe.
//!
//! Any drift prints the first differing artifact in full.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::fs;
use std::path::{Path, PathBuf};

use bsld::core::campaign::{run_campaign, CampaignOptions, JSON_FILE, MANIFEST_FILE, RESULTS_FILE};
use bsld::core::distrib::{merge_campaign, run_worker, Shard};
use bsld::core::ScenarioSet;

fn golden_set() -> ScenarioSet {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/golden_campaign.scn");
    ScenarioSet::parse(&fs::read_to_string(path).unwrap()).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsld_rerun_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Asserts that `name` exists in both directories with identical bytes.
fn assert_same_bytes(a: &Path, b: &Path, name: &str) {
    let want = fs::read(a.join(name)).unwrap_or_else(|e| panic!("{}/{name}: {e}", a.display()));
    let got = fs::read(b.join(name)).unwrap_or_else(|e| panic!("{}/{name}: {e}", b.display()));
    assert!(
        want == got,
        "{name} differs between {} and {}:\n--- first ---\n{}\n--- second ---\n{}",
        a.display(),
        b.display(),
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(&got),
    );
}

/// Strips the four trailing wall-clock columns — `elapsed_s` and the
/// `parse_s`/`build_s`/`sim_s` phase breakdown are provenance, scheduler-
/// and machine-dependent by design — after checking each holds what it
/// should: a non-negative number (or `-` on legacy/failure rows, the
/// column name on the header).
fn strip_wall_clock(line: &str) -> String {
    let mut rest = line;
    for name in ["sim_s", "build_s", "parse_s", "elapsed_s"] {
        let (head, field) = rest.rsplit_once(',').expect("manifest line has columns");
        assert!(
            field == name || field == "-" || field.parse::<f64>().is_ok_and(|s| s >= 0.0),
            "bad {name} field {field:?} in row {line:?}"
        );
        rest = head;
    }
    rest.to_string()
}

/// Reads the manifest as a sorted set of rows (header kept first), modulo
/// the wall-clock column: the manifest is a crash-safe append log, so
/// under `threads > 1` its row *order* is completion order —
/// scheduler-dependent by design — while its row *set* must not vary.
fn sorted_manifest(dir: &Path) -> Vec<String> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    let mut lines = text.lines().map(strip_wall_clock);
    let header = lines.next().unwrap();
    let mut rows: Vec<String> = lines.collect();
    rows.sort();
    std::iter::once(header).chain(rows).collect()
}

#[test]
fn same_spec_twice_produces_identical_artifacts() {
    let set = golden_set();
    let first = tmp_dir("first");
    let second = tmp_dir("second");
    for dir in [&first, &second] {
        let outcome = run_campaign(&set, &CampaignOptions::fresh(2, dir), None).unwrap();
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }
    for name in [RESULTS_FILE, JSON_FILE] {
        assert_same_bytes(&first, &second, name);
    }
    assert_eq!(
        sorted_manifest(&first),
        sorted_manifest(&second),
        "manifest row sets must match across runs"
    );
    fs::remove_dir_all(&first).ok();
    fs::remove_dir_all(&second).ok();
}

#[test]
fn single_threaded_runs_are_identical_down_to_the_manifest() {
    // With one worker the completion order is the plan order, so even the
    // append-log manifest must be byte-stable.
    let set = golden_set();
    let first = tmp_dir("st_first");
    let second = tmp_dir("st_second");
    for dir in [&first, &second] {
        let outcome = run_campaign(&set, &CampaignOptions::fresh(1, dir), None).unwrap();
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    }
    for name in [RESULTS_FILE, JSON_FILE] {
        assert_same_bytes(&first, &second, name);
    }
    // The manifest is byte-stable up to its wall-clock provenance columns
    // (`elapsed_s`/`parse_s`/`build_s`/`sim_s` are the deliberately
    // nondeterministic fields).
    let stripped = |dir: &Path| -> Vec<String> {
        fs::read_to_string(dir.join(MANIFEST_FILE))
            .unwrap()
            .lines()
            .map(strip_wall_clock)
            .collect()
    };
    assert_eq!(
        stripped(&first),
        stripped(&second),
        "single-threaded manifests must match byte-for-byte modulo the wall-clock columns"
    );
    fs::remove_dir_all(&first).ok();
    fs::remove_dir_all(&second).ok();
}

#[test]
fn two_shard_worker_merge_matches_single_process() {
    let set = golden_set();
    let single = tmp_dir("single");
    let outcome = run_campaign(&set, &CampaignOptions::fresh(2, &single), None).unwrap();
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);

    let shared = tmp_dir("sharded");
    fs::create_dir_all(&shared).unwrap();
    for i in 0..2 {
        let out = run_worker(&set, Shard::new(i, 2).unwrap(), 2, &shared, None).unwrap();
        assert!(out.failures.is_empty(), "shard {i}: {:?}", out.failures);
    }
    let merged = merge_campaign(&shared).unwrap();
    assert!(merged.outcome.failures.is_empty());
    assert_eq!(merged.workers, vec![0, 1]);
    assert_eq!(merged.duplicate_rows, 0);

    for name in [RESULTS_FILE, JSON_FILE] {
        assert_same_bytes(&single, &shared, name);
    }
    fs::remove_dir_all(&single).ok();
    fs::remove_dir_all(&shared).ok();
}
