//! A/B determinism harness: the incremental scheduling engine vs the full
//! re-scheduling oracle.
//!
//! `EngineConfig::incremental = false` preserves the pre-refactor
//! behaviour — every event rebuilds the availability profile and re-runs
//! the whole pass. These tests replay the paper's grid (Figs. 3–5) and
//! enlarged-system (Figs. 7–9) experiment shapes at reduced scale and
//! assert the incremental engine produces **bit-identical**
//! `SimResult.outcomes`, while doing measurably fewer full profile
//! rebuilds (counters exposed via `SimResult::stats` /
//! `RunResult::pass_stats`).

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::model::Job;
use bsld::simkernel::Time;
use bsld::workload::profiles::TraceProfile;

const AB_JOBS: usize = 250;
const AB_SEED: u64 = 2010;

fn grid_profiles() -> Vec<TraceProfile> {
    TraceProfile::paper_five()
}

#[test]
fn grid_outcomes_bit_identical() {
    // The grid sweep: every workload × BSLD threshold × WQ threshold, plus
    // the no-DVFS baseline, incremental vs full re-scan.
    let thresholds = [1.5, 3.0];
    let wqs = [
        WqThreshold::Limit(0),
        WqThreshold::Limit(16),
        WqThreshold::NoLimit,
    ];
    for profile in grid_profiles() {
        let w = profile.generate(AB_SEED, AB_JOBS);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let oracle = sim.clone().with_full_rescan();

        let a = sim.run_baseline(&w.jobs).unwrap();
        let b = oracle.run_baseline(&w.jobs).unwrap();
        assert_eq!(
            a.outcomes, b.outcomes,
            "{}: baseline diverged",
            w.cluster_name
        );

        for bt in thresholds {
            for wq in wqs {
                let cfg = PowerAwareConfig {
                    bsld_threshold: bt,
                    wq_threshold: wq,
                };
                let a = sim.run_power_aware(&w.jobs, &cfg).unwrap();
                let b = oracle.run_power_aware(&w.jobs, &cfg).unwrap();
                assert_eq!(
                    a.outcomes,
                    b.outcomes,
                    "{}: diverged at {}",
                    w.cluster_name,
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn enlarged_outcomes_bit_identical() {
    // The enlarged-systems sweep shape: BSLD threshold 2, WQ ∈ {0, NO},
    // machine enlarged by the paper's sizes.
    for profile in [TraceProfile::sdsc_blue(), TraceProfile::ctc()] {
        let w = profile.generate(AB_SEED, AB_JOBS);
        let base = Simulator::paper_default(&w.cluster_name, w.cpus);
        for pct in [10, 50, 125] {
            for wq in [WqThreshold::Limit(0), WqThreshold::NoLimit] {
                let cfg = PowerAwareConfig {
                    bsld_threshold: 2.0,
                    wq_threshold: wq,
                };
                let sim = base.enlarged(pct);
                let a = sim.run_power_aware(&w.jobs, &cfg).unwrap();
                let b = sim
                    .clone()
                    .with_full_rescan()
                    .run_power_aware(&w.jobs, &cfg)
                    .unwrap();
                assert_eq!(
                    a.outcomes,
                    b.outcomes,
                    "{} +{}%: diverged at {}",
                    w.cluster_name,
                    pct,
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn conservative_outcomes_bit_identical() {
    let w = TraceProfile::sdsc().generate(AB_SEED, AB_JOBS);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus).with_conservative();
    let a = sim.run_baseline(&w.jobs).unwrap();
    let b = sim
        .clone()
        .with_full_rescan()
        .run_baseline(&w.jobs)
        .unwrap();
    assert_eq!(a.outcomes, b.outcomes);
}

/// A deliberately saturated workload: arrivals outpace service so the
/// queue stays deep — the regime where the incremental engine's skip and
/// in-place updates pay off.
fn saturated_workload(n: u32) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let arrival = (i as u64 / 4) * 15; // bursts of four every 15 s
            let cpus = 1 + i % 8;
            let runtime = 300 + (i as u64 * 41) % 900;
            let requested = runtime + 100 + (i as u64 * 17) % 1200;
            Job::new(i, Time(arrival), cpus, runtime, requested)
        })
        .collect()
}

#[test]
fn saturated_load_halves_profile_rebuilds() {
    // The acceptance gate at test scale (the criterion bench replays it at
    // 10k jobs): outcomes identical, and the incremental engine performs
    // at least 2x fewer full profile rebuilds than the oracle.
    let jobs = saturated_workload(2_000);
    let sim = Simulator::paper_default("saturated", 32);
    let incr = sim.run_baseline(&jobs).unwrap();
    let full = sim.clone().with_full_rescan().run_baseline(&jobs).unwrap();

    assert_eq!(incr.outcomes, full.outcomes, "outcomes must be identical");
    assert_eq!(full.pass_stats.passes_skipped, 0);
    assert!(incr.pass_stats.passes_skipped > 0);
    assert!(
        2 * incr.pass_stats.profile_rebuilds <= full.pass_stats.profile_rebuilds,
        "expected >= 2x fewer rebuilds: incremental {} vs full {}",
        incr.pass_stats.profile_rebuilds,
        full.pass_stats.profile_rebuilds
    );
}
