//! Campaign-layer integration tests: the resume-equivalence guarantee
//! (an interrupted campaign, resumed, produces byte-identical final
//! results), replication aggregation against hand-computed statistics,
//! and cell-ID stability.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::path::PathBuf;

use bsld::core::campaign::{
    read_manifest, run_campaign, CampaignOptions, CellId, RepRow, MANIFEST_FILE, RESULTS_FILE,
};
use bsld::core::scenario::{
    OutputSpec, ProfileName, Scenario, ScenarioSet, SweepAxis, WorkloadSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsld_campaign_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn campaign_set(replications: u32) -> ScenarioSet {
    let base = Scenario::synthetic("camp", ProfileName::SdscBlue, 100, 42).map_workload(|w| {
        if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
            *scale_cpus = Some(64);
        }
    });
    ScenarioSet {
        base,
        axes: vec![SweepAxis::BsldThreshold(vec![1.5, 3.0])],
        replications,
        cell_budget_s: None,
    }
}

/// The headline guarantee: run a campaign, truncate the manifest's last K
/// rows (simulating a crash), re-run with resume — the merged results are
/// byte-identical to the uninterrupted run, for every truncation depth.
#[test]
fn resume_after_truncated_manifest_is_byte_identical() {
    let set = campaign_set(3);
    let clean_dir = tmp_dir("clean");
    let clean = run_campaign(&set, &CampaignOptions::fresh(2, &clean_dir), None).unwrap();
    assert!(clean.failures.is_empty());
    assert_eq!(clean.total_units, 6);
    assert_eq!(clean.resumed, 0);
    let clean_results = std::fs::read_to_string(clean_dir.join(RESULTS_FILE)).unwrap();
    let clean_rows = read_manifest(&clean_dir).unwrap();
    assert_eq!(clean_rows.len(), 6);

    for k in 1..=6usize {
        let dir = tmp_dir(&format!("resume{k}"));
        // Interrupting after N-k rows: keep the header plus the first
        // N-k data lines of the clean manifest.
        let manifest = std::fs::read_to_string(clean_dir.join(MANIFEST_FILE)).unwrap();
        let truncated: Vec<&str> = manifest.lines().take(1 + 6 - k).collect();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            format!("{}\n", truncated.join("\n")),
        )
        .unwrap();

        let resumed = run_campaign(&set, &CampaignOptions::resume(2, &dir), None).unwrap();
        assert!(resumed.failures.is_empty(), "k={k}");
        assert_eq!(resumed.resumed, 6 - k, "k={k}: cached rows skipped");
        assert_eq!(resumed.stale_rows, 0, "k={k}");

        let resumed_results = std::fs::read_to_string(dir.join(RESULTS_FILE)).unwrap();
        assert_eq!(
            resumed_results, clean_results,
            "k={k}: resumed final results must be byte-identical"
        );
        // The completed manifest holds the same row set (order may differ
        // with parallel appends, so compare sorted).
        let mut a: Vec<RepRow> = read_manifest(&dir).unwrap();
        let mut b = clean_rows.clone();
        let key = |r: &RepRow| (r.cell, r.rep);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "k={k}: manifests agree row for row");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// A torn last line (crash mid-append) must not poison the manifest: the
/// partial row is ignored and its unit reruns.
#[test]
fn torn_manifest_tail_is_ignored_and_rerun() {
    let set = campaign_set(2);
    let dir = tmp_dir("torn");
    run_campaign(&set, &CampaignOptions::fresh(1, &dir), None).unwrap();
    let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    let mut lines: Vec<&str> = manifest.lines().collect();
    let torn = &lines[4][..lines[4].len() / 2];
    lines[4] = torn;
    std::fs::write(dir.join(MANIFEST_FILE), lines.join("\n")).unwrap();

    assert_eq!(read_manifest(&dir).unwrap().len(), 3, "torn row dropped");
    let resumed = run_campaign(&set, &CampaignOptions::resume(1, &dir), None).unwrap();
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.resumed, 3, "three intact rows cached");
    assert_eq!(resumed.rows.len(), 4, "torn unit was rerun");
    // The resumed append must terminate the torn tail first: welding the
    // fresh row onto the partial line would lose both. After the resume
    // the on-disk manifest again holds all four rows, durable.
    assert_eq!(
        read_manifest(&dir).unwrap().len(),
        4,
        "fresh row appended on its own line after the torn tail"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Drops the last `n` comma-separated columns of a manifest line —
/// rewinds a row to an older manifest generation.
fn drop_last_columns(line: &str, n: usize) -> &str {
    let mut rest = line;
    for _ in 0..n {
        rest = rest.rsplit_once(',').unwrap().0;
    }
    rest
}

/// Manifests written before the `elapsed_s` column resume untouched: the
/// legacy 17-column rows parse (with every wall-clock field `None`), every
/// unit stays cached, and the final results are byte-identical.
#[test]
fn legacy_manifest_without_elapsed_column_resumes_fully_cached() {
    let set = campaign_set(2);
    let dir = tmp_dir("legacy");
    run_campaign(&set, &CampaignOptions::fresh(1, &dir), None).unwrap();
    let results = std::fs::read_to_string(dir.join(RESULTS_FILE)).unwrap();

    // Rewrite the manifest as a pre-elapsed_s campaign would have left it:
    // drop the four wall-clock columns from the header and every row.
    let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    let legacy: Vec<&str> = manifest.lines().map(|l| drop_last_columns(l, 4)).collect();
    std::fs::write(dir.join(MANIFEST_FILE), format!("{}\n", legacy.join("\n"))).unwrap();

    let rows = read_manifest(&dir).unwrap();
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|r| r.elapsed_s.is_none()));
    assert!(rows
        .iter()
        .all(|r| r.parse_s.is_none() && r.build_s.is_none() && r.sim_s.is_none()));

    let out = run_campaign(&set, &CampaignOptions::resume(1, &dir), None).unwrap();
    assert_eq!(out.resumed, 4, "every legacy row stays cached");
    assert_eq!(
        std::fs::read_to_string(dir.join(RESULTS_FILE)).unwrap(),
        results,
        "legacy resume reproduces the results byte for byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Manifests from the `elapsed_s`-but-no-phase-columns generation (18
/// columns) also resume untouched: `elapsed_s` survives the round trip,
/// the phase columns parse as `None`, and the final results are
/// byte-identical.
#[test]
fn legacy_manifest_without_phase_columns_resumes_fully_cached() {
    let set = campaign_set(2);
    let dir = tmp_dir("legacy18");
    run_campaign(&set, &CampaignOptions::fresh(1, &dir), None).unwrap();
    let results = std::fs::read_to_string(dir.join(RESULTS_FILE)).unwrap();

    // Rewind the manifest one generation: keep elapsed_s, drop the
    // parse_s/build_s/sim_s phase breakdown.
    let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    let legacy: Vec<&str> = manifest.lines().map(|l| drop_last_columns(l, 3)).collect();
    std::fs::write(dir.join(MANIFEST_FILE), format!("{}\n", legacy.join("\n"))).unwrap();

    let rows = read_manifest(&dir).unwrap();
    assert_eq!(rows.len(), 4);
    assert!(
        rows.iter().all(|r| r.elapsed_s.is_some()),
        "elapsed_s survives an 18-column round trip"
    );
    assert!(rows
        .iter()
        .all(|r| r.parse_s.is_none() && r.build_s.is_none() && r.sim_s.is_none()));

    let out = run_campaign(&set, &CampaignOptions::resume(1, &dir), None).unwrap();
    assert_eq!(out.resumed, 4, "every 18-column row stays cached");
    assert_eq!(
        std::fs::read_to_string(dir.join(RESULTS_FILE)).unwrap(),
        results,
        "18-column resume reproduces the results byte for byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Shrinking `replications` between runs leaves excess rows in the
/// manifest; they are reported as such — not as "unknown cell" — and the
/// surviving replications stay cached.
#[test]
fn shrunk_replication_count_reports_excess_not_stale() {
    let dir = tmp_dir("shrink");
    run_campaign(&campaign_set(3), &CampaignOptions::fresh(1, &dir), None).unwrap();
    let out = run_campaign(&campaign_set(2), &CampaignOptions::resume(1, &dir), None).unwrap();
    assert_eq!(out.resumed, 4, "reps 0-1 of both cells stay cached");
    assert_eq!(out.excess_rows, 2, "one rep-2 row per cell is excess");
    assert_eq!(out.stale_rows, 0, "no cell hash changed");
    assert_eq!(out.rows.len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// Replication aggregation matches hand-computed small-N statistics:
/// mean, and 95 % CI via the sample stderr and Student-t (df = n-1).
#[test]
fn aggregation_matches_hand_computed_ci() {
    let set = campaign_set(3);
    let out = run_campaign(&set, &CampaignOptions::in_memory(1), None).unwrap();
    assert_eq!(out.summaries.len(), 2);
    for cell in &out.summaries {
        let rows: Vec<f64> = out
            .rows
            .iter()
            .filter(|r| r.cell == cell.id)
            .map(|r| r.metrics().expect("completed row").avg_bsld)
            .collect();
        assert_eq!(rows.len(), 3);
        let n = rows.len() as f64;
        let mean = rows.iter().sum::<f64>() / n;
        let sample_var = rows.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let half = 4.303 * (sample_var / n).sqrt(); // t(df=2) = 4.303
        assert!((cell.bsld.mean - mean).abs() < 1e-9, "{}", cell.name);
        assert!(
            (cell.bsld.half - half).abs() < 1e-6 * half.max(1.0),
            "{}: ci {} vs hand {half}",
            cell.name,
            cell.bsld.half
        );
        assert_eq!(cell.bsld.n, 3);
        assert!(cell.bsld.half > 0.0, "replications must yield a real CI");
    }
}

/// Replication 0 keeps the base seed, so a 1-replication campaign runs
/// exactly the scenario the file describes; higher replications derive
/// distinct seeds and therefore distinct workloads.
#[test]
fn replication_zero_preserves_base_scenario() {
    let set = campaign_set(3);
    let out = run_campaign(&set, &CampaignOptions::in_memory(1), None).unwrap();
    let seeds: Vec<u64> = out
        .rows
        .iter()
        .filter(|r| r.name == "camp-th1.5")
        .map(|r| r.seed)
        .collect();
    assert_eq!(seeds[0], 42, "rep 0 = the file's seed");
    assert_ne!(seeds[1], seeds[0]);
    assert_ne!(seeds[2], seeds[1]);
    // The rep-0 row equals a plain single run of the cell.
    let cell = set.expand().unwrap()[0].clone();
    let direct = cell.run().unwrap();
    let row0 = out
        .rows
        .iter()
        .find(|r| r.name == "camp-th1.5" && r.rep == 0)
        .unwrap();
    let m0 = row0.metrics().expect("completed row");
    assert_eq!(m0.avg_bsld, direct.run.metrics.avg_bsld);
    assert_eq!(m0.jobs as usize, direct.run.metrics.jobs);
}

/// Cell IDs are content hashes: stable across runs and across
/// presentation-only changes (out_dir), different for different specs.
#[test]
fn cell_ids_are_semantic_content_hashes() {
    let set = campaign_set(2);
    let cells = set.expand().unwrap();
    let a = CellId::of(&cells[0]);
    let b = CellId::of(&cells[1]);
    assert_ne!(a, b, "different thresholds hash differently");
    assert_eq!(a, CellId::of(&cells[0]), "deterministic");
    // out_dir is driver advice, not run semantics: the cache must survive
    // a change of output directory.
    let mut relocated = cells[0].clone();
    relocated.output = OutputSpec {
        out_dir: Some(PathBuf::from("elsewhere")),
    };
    assert_eq!(a, CellId::of(&relocated));
    // The name is a label: renaming a scenario (or permuting sweep axes,
    // which reorders name suffixes) keeps the cached rows and the shard
    // assignment.
    let mut renamed = cells[0].clone();
    renamed.name = "completely-different".into();
    assert_eq!(a, CellId::of(&renamed));
    // But a semantic change (seed) re-keys the cell.
    let mut reseeded = cells[0].clone();
    if let WorkloadSpec::Synthetic { seed, .. } = &mut reseeded.workload {
        *seed += 1;
    }
    assert_ne!(a, CellId::of(&reseeded));
    // The 16-hex text form round-trips.
    assert_eq!(CellId::parse(&a.to_string()).unwrap(), a);
}

/// Duplicate sweep values produce indistinguishable cells — the planner
/// rejects them instead of silently merging their cached rows.
#[test]
fn duplicate_cells_are_rejected() {
    let mut set = campaign_set(1);
    set.axes = vec![SweepAxis::Seed(vec![5, 5])];
    let err = run_campaign(&set, &CampaignOptions::in_memory(1), None)
        .unwrap_err()
        .to_string();
    assert!(err.contains("identical specs"), "{err}");
}

/// The progress callback sees every unit exactly once, cached units up
/// front, and ends at (total, total).
#[test]
fn progress_reports_every_unit() {
    use std::sync::Mutex;
    let set = campaign_set(2);
    let dir = tmp_dir("progress");
    let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
    let record = |done: usize, total: usize| seen.lock().unwrap().push((done, total));
    run_campaign(&set, &CampaignOptions::fresh(1, &dir), Some(&record)).unwrap();
    {
        let s = seen.lock().unwrap();
        assert_eq!(s.first(), Some(&(0, 4)), "initial tick before any run");
        assert_eq!(s.last(), Some(&(4, 4)));
    }
    // Resuming a finished campaign runs nothing and reports completion.
    seen.lock().unwrap().clear();
    let out = run_campaign(&set, &CampaignOptions::resume(1, &dir), Some(&record)).unwrap();
    assert_eq!(out.resumed, 4);
    assert_eq!(seen.lock().unwrap().as_slice(), &[(4, 4)]);
    std::fs::remove_dir_all(&dir).ok();
}
