//! Integration tests for the observability layer's two-plane contract.
//!
//! The *trace plane* is deterministic: a `--trace-out` file is a pure
//! function of the simulated run, so replaying the same grid sweep — at
//! any thread count — must reproduce it byte for byte, and no event may
//! carry a wall-clock field. The *profiling plane* is wall-clock by
//! definition and must never perturb simulation results: attaching a
//! sink changes nothing but the trace file's existence.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::path::PathBuf;

use bsld::core::experiments::{grid, ExpOptions};
use bsld::core::scenario::{ProfileName, Scenario};
use bsld::metrics::Json;
use bsld::obs::BufferSink;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bsld_obs_{tag}_{}.json", std::process::id()))
}

fn grid_opts(threads: usize, trace: PathBuf) -> ExpOptions {
    let mut o = ExpOptions::quick(30);
    o.threads = threads;
    o.trace_out = Some(trace);
    o
}

/// The headline guarantee: the grid sweep's trace file is byte-identical
/// across replays and across thread counts (cells buffer independently
/// and concatenate in expansion order, so scheduling is invisible).
#[test]
fn grid_trace_is_byte_identical_across_replays_and_thread_counts() {
    let (a, b, c) = (tmp("a"), tmp("b"), tmp("c"));
    grid::run(&grid_opts(2, a.clone()));
    grid::run(&grid_opts(2, b.clone()));
    grid::run(&grid_opts(1, c.clone()));
    let first = std::fs::read(&a).unwrap();
    assert_eq!(first, std::fs::read(&b).unwrap(), "replay must not drift");
    assert_eq!(
        first,
        std::fs::read(&c).unwrap(),
        "the thread count must not leak into the trace"
    );
    // And the file is a valid Chrome-trace JSON array with content.
    let doc = Json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
    let Json::Arr(events) = doc else {
        panic!("a Chrome trace is a JSON array");
    };
    assert!(events.len() > 100, "the sweep produces real events");
    for p in [a, b, c] {
        std::fs::remove_file(p).ok();
    }
}

/// The negative plane-separation test: every key of every trace event is
/// on the sim-time whitelist — no `elapsed_s`, no `*_us` wall latency, no
/// profiling-plane vocabulary may ever appear in the trace plane.
#[test]
fn trace_plane_carries_no_wall_clock_fields() {
    const ALLOWED_TOP: [&str; 7] = ["name", "ph", "ts", "pid", "tid", "s", "args"];
    const ALLOWED_ARGS: [&str; 13] = [
        "job",
        "gear",
        "cpus",
        "backfilled",
        "pass",
        "started",
        "rebuilt",
        "elided",
        "site",
        "sleeps",
        "wakes",
        "sleeping",
        // the process_name metadata event's cell label
        "name",
    ];
    let path = tmp("leak");
    grid::run(&grid_opts(2, path.clone()));
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let Json::Arr(events) = Json::parse(&text).unwrap() else {
        panic!("a Chrome trace is a JSON array");
    };
    for ev in &events {
        let Json::Obj(pairs) = ev else {
            panic!("every trace event is an object");
        };
        for (k, v) in pairs {
            assert!(
                ALLOWED_TOP.contains(&k.as_str()),
                "unexpected trace event key {k:?}"
            );
            if k == "args" {
                let Json::Obj(args) = v else {
                    panic!("args is an object");
                };
                for (ak, _) in args {
                    assert!(
                        ALLOWED_ARGS.contains(&ak.as_str()),
                        "unexpected args key {ak:?} — a wall-clock field leaked \
                         into the trace plane?"
                    );
                }
            }
        }
    }
    // Belt and braces: none of the profiling plane's vocabulary, under
    // any key, anywhere in the file.
    for needle in ["elapsed", "wall", "instant", "epoch", "latency", "uptime"] {
        assert!(
            !text.to_ascii_lowercase().contains(needle),
            "trace file contains profiling-plane token {needle:?}"
        );
    }
}

/// Attaching a trace sink must not change any simulation result: the
/// trace plane observes, never steers.
#[test]
fn attaching_a_sink_does_not_change_results() {
    let sc = Scenario::synthetic("obs", ProfileName::SdscBlue, 200, 7);
    let plain = sc.run().unwrap();
    let sink = BufferSink::shared();
    let traced = sc.run_with_sink(sink.clone()).unwrap();
    let (p, t) = (&plain.run.metrics, &traced.run.metrics);
    assert_eq!(p.avg_bsld, t.avg_bsld);
    assert_eq!(p.avg_wait_secs, t.avg_wait_secs);
    assert_eq!(p.makespan_secs, t.makespan_secs);
    assert_eq!(p.energy.with_idle, t.energy.with_idle);
    assert!(!sink.is_empty(), "the sink observed the run");
    // Every job arrives, starts and finishes exactly once.
    let events = sink.take();
    let count = |f: &dyn Fn(&bsld::obs::TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
    assert_eq!(
        count(&|e| matches!(e, bsld::obs::TraceEvent::JobArrive { .. })),
        200
    );
    assert_eq!(
        count(&|e| matches!(e, bsld::obs::TraceEvent::JobStart { .. })),
        200
    );
    assert_eq!(
        count(&|e| matches!(e, bsld::obs::TraceEvent::JobFinish { .. })),
        200
    );
}

/// The profiling plane's phase breakdown covers the run: all three phases
/// are finite and non-negative, and a successful run spends real time
/// simulating.
#[test]
fn phase_profiling_reports_sane_wall_times() {
    let sc = Scenario::synthetic("phase", ProfileName::Ctc, 100, 3);
    let (res, phases) = sc.run_phased_with_abort(None);
    res.unwrap();
    for (name, v) in [
        ("parse_s", phases.parse_s),
        ("build_s", phases.build_s),
        ("sim_s", phases.sim_s),
    ] {
        assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
    }
}
