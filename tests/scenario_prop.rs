//! Property tests for the scenario text format: `parse(render(s)) == s`
//! over randomized specs — every sub-spec variant, SWF paths, custom sleep
//! ladders and sweep axes included.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::path::PathBuf;

use bsld::core::scenario::{
    ClusterSpec, EngineSpec, GearSpec, OutputSpec, PolicySpec, PowerModelSpec, PowerSpec,
    ProfileName, Scenario, ScenarioSet, SleepSpec, SweepAxis, WorkloadSpec,
};
use bsld::core::WqThreshold;
use bsld::powercap::{SleepConfig, SleepState};
use bsld::sched::SchedMode;
use bsld::workload::profiles::BetaSpec;
use proptest::prelude::*;

fn profile_of(i: u8) -> ProfileName {
    ProfileName::ALL[i as usize % ProfileName::ALL.len()]
}

fn arb_wq() -> BoxedStrategy<WqThreshold> {
    (0u8..4, 0usize..64)
        .prop_map(|(k, n)| {
            if k == 0 {
                WqThreshold::NoLimit
            } else {
                WqThreshold::Limit(n)
            }
        })
        .boxed()
}

fn arb_policy() -> BoxedStrategy<PolicySpec> {
    (0u8..3, 10u32..400, 0u8..16, arb_wq())
        .prop_map(|(kind, th10, gear, wq)| match kind {
            0 => PolicySpec::Baseline,
            1 => PolicySpec::FixedGear(gear),
            _ => PolicySpec::BsldThreshold {
                th: th10 as f64 / 10.0,
                wq,
            },
        })
        .boxed()
}

fn arb_beta() -> BoxedStrategy<Option<BetaSpec>> {
    (0u8..3, 0u32..=100, 0u32..=50)
        .prop_map(|(kind, mean, spread)| match kind {
            0 => None,
            1 => Some(BetaSpec::Fixed(mean as f64 / 100.0)),
            _ => Some(BetaSpec::PerJob {
                mean: mean as f64 / 100.0,
                spread: spread as f64 / 100.0,
            }),
        })
        .boxed()
}

fn arb_workload() -> BoxedStrategy<WorkloadSpec> {
    (
        proptest::bool::ANY,
        0u8..5,
        0usize..20_000,
        proptest::num::u64::ANY,
        (proptest::bool::ANY, 1u32..4096),
        arb_beta(),
        (proptest::num::u64::ANY, proptest::bool::ANY),
    )
        .prop_map(
            |(synthetic, prof, jobs, seed, (scaled, cpus), beta, (path_bits, clean))| {
                if synthetic {
                    WorkloadSpec::Synthetic {
                        profile: profile_of(prof),
                        jobs,
                        seed,
                        scale_cpus: scaled.then_some(cpus),
                        beta,
                    }
                } else {
                    WorkloadSpec::Swf {
                        path: PathBuf::from(format!("traces/t{path_bits:016x}.swf")),
                        clean,
                    }
                }
            },
        )
        .boxed()
}

fn arb_cluster() -> BoxedStrategy<ClusterSpec> {
    (0u32..300, proptest::bool::ANY, 2u8..32)
        .prop_map(|(enlarge_pct, paper, n)| ClusterSpec {
            enlarge_pct,
            gears: if paper {
                GearSpec::Paper
            } else {
                GearSpec::Interpolated(n)
            },
        })
        .boxed()
}

/// A valid random sleep ladder: timeouts strictly increase, power
/// fractions are products of factors ≤ 1 so they never grow with depth.
fn arb_sleep() -> BoxedStrategy<SleepSpec> {
    (
        0u8..3,
        proptest::collection::vec((1u64..500, 0u64..30, 0u32..100, 0u32..100), 1..4),
    )
        .prop_map(|(kind, parts)| match kind {
            0 => SleepSpec::None,
            1 => SleepSpec::Paper,
            _ => {
                let mut timeout = 0u64;
                let mut frac = 1.0f64;
                let states = parts
                    .into_iter()
                    .map(|(dt, lat, energy, f)| {
                        timeout += dt;
                        frac *= f as f64 / 100.0;
                        SleepState {
                            idle_timeout_s: timeout,
                            wake_latency_s: lat,
                            wake_energy: energy as f64 / 10.0,
                            power_fraction: frac,
                        }
                    })
                    .collect();
                SleepSpec::Custom(SleepConfig::new(states).expect("constructed ladder is valid"))
            }
        })
        .boxed()
}

/// A power-model spec with a line-safe empirical path (the format
/// normalises other paths on the way out, like SWF paths).
fn model_of(kind: u8, path_bits: u64) -> PowerModelSpec {
    match kind % 5 {
        0 => PowerModelSpec::Paper,
        1 => PowerModelSpec::Constant,
        2 => PowerModelSpec::Linear,
        3 => PowerModelSpec::Cubic,
        _ => PowerModelSpec::Empirical(PathBuf::from(format!("curves/m{path_bits:016x}.csv"))),
    }
}

fn arb_model() -> BoxedStrategy<Option<PowerModelSpec>> {
    (proptest::bool::ANY, 0u8..5, proptest::num::u64::ANY)
        .prop_map(|(some, kind, bits)| some.then(|| model_of(kind, bits)))
        .boxed()
}

fn arb_power() -> BoxedStrategy<PowerSpec> {
    (
        (proptest::bool::ANY, 1u32..=20),
        (proptest::bool::ANY, 0usize..64),
        arb_sleep(),
        (proptest::bool::ANY, 0usize..64),
        arb_model(),
        proptest::bool::ANY,
    )
        .prop_map(
            |((capped, cap20), (soft, escape), sleep, (boosted, limit), model, observe)| {
                PowerSpec {
                    cap_fraction: capped.then_some(cap20 as f64 / 20.0),
                    soft_wq_escape: soft.then_some(escape),
                    sleep,
                    boost: boosted.then_some(limit),
                    model,
                    observe,
                }
            },
        )
        .boxed()
}

fn arb_engine() -> BoxedStrategy<EngineSpec> {
    (
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        0u8..3,
        proptest::bool::ANY,
    )
        .prop_map(
            |(conservative, backfill, incremental, sel, trace)| EngineSpec {
                mode: if conservative {
                    SchedMode::Conservative
                } else {
                    SchedMode::Easy
                },
                backfill,
                incremental,
                selection: match sel {
                    0 => bsld::cluster::SelectionPolicy::FirstFit,
                    1 => bsld::cluster::SelectionPolicy::LastFit,
                    _ => bsld::cluster::SelectionPolicy::ContiguousFirstFit,
                },
                trace,
            },
        )
        .boxed()
}

fn arb_scenario() -> BoxedStrategy<Scenario> {
    (
        proptest::num::u64::ANY,
        arb_workload(),
        arb_cluster(),
        arb_policy(),
        arb_power(),
        arb_engine(),
        (proptest::bool::ANY, proptest::num::u64::ANY),
    )
        .prop_map(
            |(name_bits, workload, cluster, policy, power, engine, (with_out, out_bits))| {
                Scenario {
                    name: format!("s{name_bits:x}"),
                    workload,
                    cluster,
                    policy,
                    power,
                    engine,
                    output: OutputSpec {
                        out_dir: with_out.then(|| PathBuf::from(format!("results/r{out_bits:x}"))),
                    },
                }
            },
        )
        .boxed()
}

fn arb_axis() -> BoxedStrategy<SweepAxis> {
    (
        0u8..7,
        proptest::collection::vec(
            (
                0u8..5,
                10u32..400,
                arb_wq(),
                1u32..=20,
                0u32..300,
                proptest::num::u64::ANY,
            ),
            1..4,
        ),
    )
        .prop_map(|(kind, raw)| match kind {
            0 => SweepAxis::Profile(raw.iter().map(|r| profile_of(r.0)).collect()),
            1 => SweepAxis::BsldThreshold(raw.iter().map(|r| r.1 as f64 / 10.0).collect()),
            2 => SweepAxis::Wq(raw.iter().map(|r| r.2).collect()),
            3 => SweepAxis::CapFraction(raw.iter().map(|r| r.3 as f64 / 20.0).collect()),
            4 => SweepAxis::EnlargePct(raw.iter().map(|r| r.4).collect()),
            5 => SweepAxis::Seed(raw.iter().map(|r| r.5).collect()),
            // Model values must be pairwise distinct on the value level
            // (two kinds can collide only via Empirical paths, which the
            // deterministic bit pattern keeps unique), and whitespace-free
            // (the axis is whitespace-split on re-parse).
            _ => {
                let mut models: Vec<PowerModelSpec> =
                    raw.iter().map(|r| model_of(r.0, r.5)).collect();
                models.dedup_by(|a, b| a == b);
                models.sort_by_key(|m| m.render());
                models.dedup();
                SweepAxis::Model(models)
            }
        })
        .boxed()
}

/// Keeps the first axis of each kind — the text format forbids repeats.
fn dedup_axes(axes: Vec<SweepAxis>) -> Vec<SweepAxis> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for a in axes {
        let key = std::mem::discriminant(&a);
        if !seen.contains(&key) {
            seen.push(key);
            out.push(a);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The single-scenario format is a bijection on the spec space.
    #[test]
    fn scenario_parse_inverts_render(sc in arb_scenario()) {
        let text = sc.render();
        let parsed = Scenario::parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, sc);
    }

    /// The set format round-trips, sweep axes, replication counts and
    /// cell budgets included. Axis keys are deduplicated (first wins):
    /// the parser rejects repeated axes.
    #[test]
    fn scenario_set_parse_inverts_render(
        sc in arb_scenario(),
        axes in proptest::collection::vec(arb_axis(), 0..5),
        reps in 1u32..=8,
        budget in (proptest::bool::ANY, 0u32..=1_000_000),
    ) {
        // Replications > 1 require a synthetic workload (the parser
        // rejects replicated SWF replays — they are deterministic).
        let reps = match sc.workload {
            WorkloadSpec::Swf { .. } => 1,
            WorkloadSpec::Synthetic { .. } => reps,
        };
        let set = ScenarioSet {
            base: sc,
            axes: dedup_axes(axes),
            replications: reps,
            cell_budget_s: budget.0.then(|| budget.1 as f64 / 100.0),
        };
        let text = set.render();
        let parsed = ScenarioSet::parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, set);
    }

    /// Expansion over a synthetic base yields exactly the cartesian
    /// product, and every expanded cell still round-trips.
    #[test]
    fn expansion_is_cartesian_and_cells_round_trip(
        sc in arb_scenario(),
        axes in proptest::collection::vec(arb_axis(), 0..4),
    ) {
        let axes = dedup_axes(axes);
        let mut base = sc;
        // Profile/seed axes only apply to synthetic workloads.
        if let WorkloadSpec::Swf { .. } = base.workload {
            base.workload = WorkloadSpec::Synthetic {
                profile: ProfileName::Ctc,
                jobs: 10,
                seed: 1,
                scale_cpus: None,
                beta: None,
            };
        }
        let set = ScenarioSet { base, axes, replications: 1, cell_budget_s: None };
        let cells = set.expand().map_err(TestCaseError::fail)?;
        let expected: usize = set.axes.iter().map(|a| match a {
            SweepAxis::Profile(v) => v.len(),
            SweepAxis::BsldThreshold(v) => v.len(),
            SweepAxis::Wq(v) => v.len(),
            SweepAxis::CapFraction(v) => v.len(),
            SweepAxis::EnlargePct(v) => v.len(),
            SweepAxis::Seed(v) => v.len(),
            SweepAxis::Model(v) => v.len(),
            // arb_axis never generates SwfDir (its width depends on a real
            // directory); covered by dedicated unit tests instead.
            SweepAxis::SwfDir(_) => unreachable!("not generated"),
        }).product();
        prop_assert_eq!(cells.len(), expected);
        for cell in cells {
            let parsed = Scenario::parse(&cell.render()).map_err(TestCaseError::fail)?;
            prop_assert_eq!(parsed, cell);
        }
    }

    /// Empirical CSV paths are normalised exactly like SWF paths: newlines
    /// become spaces and surrounding whitespace is dropped on the way out,
    /// and the normalised form is a fixed point of parse ∘ render.
    #[test]
    fn empirical_paths_normalise_like_swf_paths(bits in proptest::num::u64::ANY) {
        let mut sc = Scenario::synthetic("p", ProfileName::Ctc, 10, 1);
        let odd = format!("  curves/\nm{bits:x}.csv ");
        sc.power.model = Some(PowerModelSpec::Empirical(PathBuf::from(odd)));
        let reparsed = Scenario::parse(&sc.render()).map_err(TestCaseError::fail)?;
        let expect = format!("curves/ m{bits:x}.csv");
        prop_assert_eq!(
            &reparsed.power.model,
            &Some(PowerModelSpec::Empirical(PathBuf::from(expect)))
        );
        let again = Scenario::parse(&reparsed.render()).map_err(TestCaseError::fail)?;
        prop_assert_eq!(again, reparsed);
    }
}

#[test]
fn model_rejections() {
    let base = Scenario::synthetic("r", ProfileName::Ctc, 10, 1).render();
    // Unknown model names are rejected with the menu, on the key and on
    // the sweep axis alike.
    for line in ["model = warp9", "sweep.model = paper warp9"] {
        let err = ScenarioSet::parse(&format!("{base}{line}\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("paper | constant | linear | cubic"), "{err}");
    }
    // A duplicate model axis is rejected like every other axis.
    let dup = format!("{base}sweep.model = paper\nsweep.model = linear\n");
    let err = ScenarioSet::parse(&dup).unwrap_err().to_string();
    assert!(err.contains("duplicate sweep axis sweep.model"), "{err}");
}
