//! End-to-end tests of the scheduling-as-a-service daemon: a real
//! `Server` on a real Unix socket, exercised the way `bsld-repro query`
//! (and misbehaving clients) would.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use bsld::core::scenario::ScenarioSet;
use bsld::core::{sweep_report, CellOutcome};
use bsld::metrics::Json;
use bsld::serve::{Client, Overrides, ServeConfig, Server, StateConfig};

const SCN: &str = "scenario = demo\n\
                   workload = synthetic\n\
                   profile = ctc\n\
                   jobs = 60\n\
                   seed = 11\n\
                   \n\
                   sweep.bsld_th = 1.5 2\n";

/// A collision-free scratch socket path (multiple tests run in one
/// process; the test harness gives no per-test scratch dir).
fn scratch_socket() -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "bsld-serve-{}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn small_config(socket: PathBuf) -> ServeConfig {
    ServeConfig {
        socket,
        workers: 4,
        state: StateConfig {
            threads: 2,
            ..StateConfig::default()
        },
    }
}

/// Binds a daemon, runs it on a background thread, returns the socket and
/// the join handle (joined after a `shutdown` request).
fn spawn_daemon(cfg: ServeConfig) -> (PathBuf, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind scratch socket");
    let socket = server.socket().to_path_buf();
    let handle = std::thread::spawn(move || server.run().expect("daemon exits cleanly"));
    (socket, handle)
}

/// What the one-shot CLI prints for `SCN`: expand, run, render through the
/// same `sweep_report` path `bsld-repro run` uses.
fn oneshot_table_and_csv() -> (String, String) {
    let set = ScenarioSet::parse(SCN).unwrap();
    let rows: Vec<(String, Result<CellOutcome, String>)> = set
        .run(2)
        .unwrap()
        .into_iter()
        .map(|(sc, res)| (sc.name, Ok(CellOutcome::of(&res))))
        .collect();
    let report = sweep_report(&rows);
    (report.table, report.csv)
}

#[test]
fn daemon_reply_is_byte_identical_to_the_oneshot_cli_path() {
    let (socket, handle) = spawn_daemon(small_config(scratch_socket()));
    let mut client = Client::connect(&socket).unwrap();

    let reply = client.run(SCN, &Overrides::default()).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let (table, csv) = oneshot_table_and_csv();
    assert_eq!(reply.get("table").and_then(Json::as_str), Some(&*table));
    assert_eq!(reply.get("csv").and_then(Json::as_str), Some(&*csv));
    assert_eq!(reply.get("cached").and_then(Json::as_u64), Some(0));

    // Warm repeat: all cells cached, bytes unchanged.
    let warm = client.run(SCN, &Overrides::default()).unwrap();
    assert_eq!(warm.get("cached").and_then(Json::as_u64), Some(2));
    assert_eq!(warm.get("table"), reply.get("table"));
    assert_eq!(warm.get("csv"), reply.get("csv"));

    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists(), "shutdown must unlink the socket");
}

#[test]
fn concurrent_clients_get_identical_replies() {
    let (socket, handle) = spawn_daemon(small_config(scratch_socket()));

    let replies: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&socket).unwrap();
                    let reply = client.run(SCN, &Overrides::default()).unwrap();
                    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
                    // Strip the only request-dependent field: how many cells
                    // happened to be warm when this client's run started.
                    let Json::Obj(pairs) = reply else { panic!() };
                    Json::Obj(pairs.into_iter().filter(|(k, _)| k != "cached").collect()).render()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for r in &replies[1..] {
        assert_eq!(r, &replies[0], "racing clients must agree byte-for-byte");
    }

    Client::connect(&socket).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn result_cache_evicts_at_capacity_without_changing_answers() {
    let mut cfg = small_config(scratch_socket());
    cfg.state.result_capacity = 2;
    let (socket, handle) = spawn_daemon(cfg);
    let mut client = Client::connect(&socket).unwrap();

    // SCN expands to 2 cells, filling the capacity-2 cache exactly.
    let first = client.run(SCN, &Overrides::default()).unwrap();
    // Two more distinct cells (same sweep, different workload seed — the
    // sweep axis would overwrite a bsld_th override) evict the first two.
    let ov = Overrides {
        seed: Some(12),
        ..Overrides::default()
    };
    client.run(SCN, &ov).unwrap();
    let listing = client.cache(false).unwrap();
    assert_eq!(listing.get("results").and_then(Json::as_u64), Some(2));

    // The evicted cell recomputes — and must produce the same bytes.
    let again = client.run(SCN, &Overrides::default()).unwrap();
    assert!(
        again.get("cached").and_then(Json::as_u64) < Some(2),
        "eviction must have dropped at least one of the two cells"
    );
    assert_eq!(again.get("table"), first.get("table"));
    assert_eq!(again.get("csv"), first.get("csv"));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn exhausted_budget_is_a_structured_error_not_a_crash() {
    let (socket, handle) = spawn_daemon(small_config(scratch_socket()));
    let mut client = Client::connect(&socket).unwrap();

    let ov = Overrides {
        budget_s: Some(0.0),
        ..Overrides::default()
    };
    let reply = client.run(SCN, &ov).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    let err = reply.get("error").and_then(Json::as_str).unwrap();
    assert!(err.contains("budget"), "{err}");

    // Aborted cells were not cached: a patient retry computes them fresh.
    let retry = client.run(SCN, &Overrides::default()).unwrap();
    assert_eq!(retry.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(retry.get("cached").and_then(Json::as_u64), Some(0));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn torn_and_malformed_requests_never_take_the_daemon_down() {
    let (socket, handle) = spawn_daemon(small_config(scratch_socket()));

    // Malformed lines get structured error replies on the same connection.
    let mut raw = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();
    for bad in ["this is not json", "{\"op\":\"frobnicate\"}", "[1,2,3]"] {
        raw.write_all(format!("{bad}\n").as_bytes()).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        let parsed = Json::parse(reply.trim_end()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert!(parsed.get("error").is_some(), "{reply}");
    }
    // A torn request: half a line, then the client vanishes mid-write.
    raw.write_all(b"{\"op\":\"ru").unwrap();
    drop(raw);
    drop(reader);

    // The daemon is still fully alive for the next client.
    let mut client = Client::connect(&socket).unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    let ok = client.run(SCN, &Overrides::default()).unwrap();
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn binding_over_a_live_daemon_is_refused_and_stale_sockets_are_reclaimed() {
    let cfg = small_config(scratch_socket());
    let socket = cfg.socket.clone();
    let (bound_socket, handle) = spawn_daemon(cfg.clone());
    assert_eq!(bound_socket, socket);

    // A second daemon on the same socket must refuse, not steal it.
    let err = Server::bind(cfg.clone()).unwrap_err();
    assert!(err.to_string().contains("already serving"), "{err}");

    Client::connect(&socket).unwrap().shutdown().unwrap();
    handle.join().unwrap();

    // A stale socket file (daemon died without unlinking) is reclaimed.
    std::fs::write(&socket, b"").unwrap();
    let server = Server::bind(cfg).expect("stale socket must be replaced");
    let handle = std::thread::spawn(move || server.run().unwrap());
    Client::connect(&socket).unwrap().shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists());
}
