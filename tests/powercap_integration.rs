//! Integration tests: the powercap subsystem end to end through the
//! facade — ledger vs post-hoc energy cross-validation, hard-cap
//! enforcement on calibrated workloads, sleep-state savings, and the
//! power-series writers.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, PowerCapConfig, Simulator, WqThreshold};
use bsld::metrics::series::{resample_power_series, write_power_series};
use bsld::powercap::SleepConfig;
use bsld::sched::validate_schedule;
use bsld::workload::profiles::TraceProfile;

fn workload() -> bsld::workload::Workload {
    TraceProfile::sdsc_blue().scaled_cpus(64).generate(47, 300)
}

#[test]
fn ledger_cross_validates_against_energy_report() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    for cfg in [
        PowerCapConfig::observe_only(),
        PowerCapConfig::observe_only().with_policy(PowerAwareConfig::medium()),
    ] {
        let r = sim.run_power_capped(&w.jobs, &cfg).unwrap();
        // With no sleeping, the ledger integral over [0, makespan] is the
        // idle-aware energy scenario computed post hoc from the outcomes.
        let rel = r.power.energy / r.run.metrics.energy.with_idle;
        assert!((rel - 1.0).abs() < 1e-9, "ledger/post-hoc = {rel}");
    }
}

#[test]
fn hard_cap_holds_for_dvfs_and_baseline() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    for (fraction, policy) in [(0.5, None), (0.7, Some(PowerAwareConfig::medium()))] {
        let mut cfg = PowerCapConfig::hard(fraction).with_sleep(SleepConfig::paper_default());
        cfg.policy = policy;
        let r = sim.run_power_capped(&w.jobs, &cfg).unwrap();
        assert_eq!(r.run.outcomes.len(), w.jobs.len());
        validate_schedule(&r.run.outcomes, w.cpus).unwrap();
        let budget = r.power.budget.unwrap();
        for &(t, p) in &r.power.series {
            assert!(p <= budget + 1e-6, "{p} > {budget} at t={t}");
        }
    }
}

#[test]
fn soft_cap_records_violations_instead_of_stalling() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    // A budget at the idle floor is infeasible for a hard cap…
    let hard = PowerCapConfig::hard(0.15);
    assert!(sim.run_power_capped(&w.jobs, &hard).is_err());
    // …but a soft cap escapes through the queue-depth hatch and finishes.
    let soft = PowerCapConfig::hard(0.15).with_soft_escape(4);
    let r = sim.run_power_capped(&w.jobs, &soft).unwrap();
    assert_eq!(r.run.outcomes.len(), w.jobs.len());
    assert!(r.power.cap.soft_violations > 0);
    let budget = r.power.budget.unwrap();
    assert!(
        r.power.peak > budget,
        "violations imply an over-budget peak"
    );
}

#[test]
fn conservative_mode_caps_without_stalling() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus).with_conservative();
    // Hard cap with room for down-gearing: must complete and hold.
    let hard = sim
        .run_power_capped(
            &w.jobs,
            &PowerCapConfig::hard(0.5).with_policy(PowerAwareConfig::medium()),
        )
        .unwrap();
    assert_eq!(hard.run.outcomes.len(), w.jobs.len());
    let budget = hard.power.budget.unwrap();
    for &(t, p) in &hard.power.series {
        assert!(p <= budget + 1e-6, "{p} > {budget} at t={t}");
    }
    // A soft cap never stalls, even at an infeasible budget.
    let soft = sim
        .run_power_capped(&w.jobs, &PowerCapConfig::hard(0.15).with_soft_escape(4))
        .unwrap();
    assert_eq!(soft.run.outcomes.len(), w.jobs.len());
    assert!(soft.power.cap.soft_violations > 0);
}

#[test]
fn boost_with_cap_and_sleep_keeps_ledger_within_makespan() {
    // Boost re-times running jobs, leaving stale completion events later
    // than the real makespan; the ledger must never advance past the end
    // of the run on their account.
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus).with_boost(2);
    let cfg = PowerCapConfig::hard(0.8)
        .with_sleep(SleepConfig::paper_default())
        .with_policy(PowerAwareConfig {
            bsld_threshold: 3.0,
            wq_threshold: WqThreshold::NoLimit,
        });
    let r = sim.run_power_capped(&w.jobs, &cfg).unwrap();
    assert_eq!(r.run.outcomes.len(), w.jobs.len());
    let makespan = r.run.metrics.makespan_secs;
    let last = r.power.series.last().unwrap().0;
    assert!(
        last <= makespan,
        "series entry at t={last} past makespan {makespan}"
    );
}

#[test]
fn capping_trades_bsld_for_power() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let loose = sim
        .run_power_capped(&w.jobs, &PowerCapConfig::hard(1.0))
        .unwrap();
    let tight = sim
        .run_power_capped(&w.jobs, &PowerCapConfig::hard(0.45))
        .unwrap();
    assert!(
        tight.power.peak <= loose.power.peak + 1e-9,
        "a tighter cap cannot raise peak draw"
    );
    assert!(
        tight.run.metrics.avg_bsld >= loose.run.metrics.avg_bsld - 1e-9,
        "power capping cannot improve BSLD: {} vs {}",
        tight.run.metrics.avg_bsld,
        loose.run.metrics.avg_bsld
    );
}

#[test]
fn power_series_is_a_well_formed_step_function() {
    let w = workload();
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let r = sim
        .run_power_capped(
            &w.jobs,
            &PowerCapConfig::observe_only().with_sleep(SleepConfig::paper_default()),
        )
        .unwrap();
    let series = &r.power.series;
    assert!(!series.is_empty());
    assert_eq!(series[0].0, 0, "series starts at t=0");
    for w2 in series.windows(2) {
        assert!(w2[0].0 < w2[1].0, "instants strictly increasing");
    }
    for &(_, p) in series {
        assert!(p >= 0.0 && p.is_finite());
    }

    // The CSV writer emits one row per step plus a header.
    let mut buf = Vec::new();
    write_power_series(&mut buf, series).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), series.len() + 1);
    assert!(text.starts_with("time_s,power"));

    // Resampling preserves the integral over the covered span.
    let end = r.run.metrics.makespan_secs;
    let step = (end / 50).max(1);
    let coarse = resample_power_series(series, end, step);
    let coarse_integral: f64 = coarse
        .iter()
        .map(|&(t, p)| {
            let width = step.min(end - t);
            p * width as f64
        })
        .sum();
    // `energy` includes wake impulses, which the power-level series does
    // not carry; add them back for the comparison.
    let exact_integral = r.power.energy;
    let wake = r.power.sleep.wake_energy;
    assert!(
        ((coarse_integral + wake) / exact_integral - 1.0).abs() < 1e-9,
        "resampled integral {coarse_integral} + wake {wake} vs exact {exact_integral}"
    );
}

#[test]
fn deferred_head_on_idle_machine_wakes_once_per_sleep_transition() {
    // A 16-cpu machine with a budget below its awake-idle draw: a single
    // 1-cpu job cannot start until the idle processors descend into their
    // first sleep state at t=60 (SleepConfig::paper_default). No job event
    // exists before then, so only the hook-reported power event can wake
    // the scheduler — and it must do so exactly once.
    //
    // Budget calibration (A = p_active(top), p_idle = 0.21 A):
    //   awake-idle draw               16 * 0.21 A ≈ 3.36 A  (> budget)
    //   napping draw + job at top      15 * 0.4 * 0.21 A + A ≈ 2.26 A
    // so 2.5 A (fraction 2.5/16 of peak) vetoes at t=0 and admits at t=60.
    let sim = Simulator::paper_default("wake-test", 16);
    let jobs = vec![bsld::model::Job::new(
        0,
        bsld::simkernel::Time(0),
        1,
        50,
        50,
    )];
    let cfg = PowerCapConfig::hard(2.5 / 16.0).with_sleep(SleepConfig::paper_default());
    let r = sim.run_power_capped(&jobs, &cfg).unwrap();

    assert_eq!(r.run.outcomes.len(), 1, "the run must not stall");
    let o = &r.run.outcomes[0];
    assert_eq!(
        o.start,
        bsld::simkernel::Time(60),
        "start at the first sleep transition"
    );
    // Exactly three passes: the vetoed arrival, the single power-retry
    // wake-up (start), and the completion. A duplicated retry event would
    // add a fourth; a swallowed one would stall.
    assert_eq!(r.run.pass_stats.passes, 3, "exactly one wake-up");
    assert_eq!(r.power.cap.deferrals, 1, "one veto at arrival");
    assert!(r.power.sleep.sleeps >= 1);
    assert!(r.power.sleep.wakes >= 1);
}
