//! A/B equality harness: the declarative `Scenario` path vs the legacy
//! hand-wired `Simulator` path.
//!
//! The scenario layer must be a pure re-expression: building a workload
//! and simulator from a spec and running through `Scenario::run()` has to
//! reproduce, **bit for bit**, what hand-constructing
//! `TraceProfile::generate` + `Simulator::paper_default` + `run_baseline`
//! / `run_power_aware` / `run_power_capped` produced. These tests replay
//! the paper's grid (Figs. 3–5) and the power-cap frontier at reduced
//! scale and compare outcomes, metrics and power series.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::experiments::{grid, powercap, ExpOptions};
use bsld::core::scenario::{PolicySpec, ProfileName, Scenario, SleepSpec};
use bsld::core::{PowerAwareConfig, PowerCapConfig, Simulator, WqThreshold};
use bsld::powercap::SleepConfig;
use bsld::workload::profiles::TraceProfile;

const AB_JOBS: usize = 40;
const AB_SEED: u64 = 2010;

fn legacy_profile(name: &str) -> TraceProfile {
    TraceProfile::paper_five()
        .into_iter()
        .find(|p| p.name == name)
        .expect("paper workload")
}

#[test]
fn scenario_runs_match_legacy_simulator_bit_for_bit() {
    // Cell-level A/B over the grid's parameter shapes, baseline included.
    let cfgs: [Option<PowerAwareConfig>; 3] = [
        None,
        Some(PowerAwareConfig {
            bsld_threshold: 1.5,
            wq_threshold: WqThreshold::Limit(16),
        }),
        Some(PowerAwareConfig::medium()),
    ];
    for profile in [ProfileName::Ctc, ProfileName::Sdsc, ProfileName::SdscBlue] {
        let w = legacy_profile(profile.display_name()).generate(AB_SEED, AB_JOBS);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        for cfg in cfgs {
            let legacy = match &cfg {
                None => sim.run_baseline(&w.jobs).unwrap(),
                Some(c) => sim.run_power_aware(&w.jobs, c).unwrap(),
            };
            let mut sc = Scenario::synthetic("ab", profile, AB_JOBS, AB_SEED);
            if let Some(c) = cfg {
                sc.policy = PolicySpec::from(c);
            }
            let via_scenario = sc.run().unwrap();
            assert_eq!(
                via_scenario.run.outcomes, legacy.outcomes,
                "{profile:?} {cfg:?}: schedules diverged"
            );
            assert_eq!(
                via_scenario.run.metrics.avg_bsld.to_bits(),
                legacy.metrics.avg_bsld.to_bits()
            );
            assert_eq!(
                via_scenario.run.metrics.energy.computational.to_bits(),
                legacy.metrics.energy.computational.to_bits()
            );
        }
    }
}

#[test]
fn grid_experiment_matches_legacy_simulator_path() {
    // The Scenario-driven grid experiment vs an inline reimplementation of
    // the pre-refactor loop (hand-wired workload + Simulator per cell).
    let opts = ExpOptions::quick(AB_JOBS);
    let g = grid::run(&opts);
    assert_eq!(g.cells.len(), 5 * 12);
    for (name, base) in &g.baselines {
        let w = legacy_profile(name).generate(opts.seed, opts.jobs);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let legacy_base = sim.run_baseline(&w.jobs).unwrap().metrics;
        assert_eq!(base.avg_bsld.to_bits(), legacy_base.avg_bsld.to_bits());
        for &bt in &grid::BSLD_THRESHOLDS {
            for &wq in &grid::WQ_THRESHOLDS {
                let cell = g.cell(name, bt, wq).expect("complete grid");
                let cfg = PowerAwareConfig {
                    bsld_threshold: bt,
                    wq_threshold: wq,
                };
                let legacy = sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics;
                assert_eq!(
                    cell.avg_bsld.to_bits(),
                    legacy.avg_bsld.to_bits(),
                    "{name} {bt}/{wq:?}"
                );
                assert_eq!(cell.reduced_jobs, legacy.reduced_jobs);
                assert_eq!(
                    cell.norm_e_comp.to_bits(),
                    legacy
                        .energy
                        .normalized_computational(&legacy_base.energy)
                        .to_bits(),
                    "{name} {bt}/{wq:?}: normalised energy"
                );
                assert_eq!(cell.avg_wait.to_bits(), legacy.avg_wait_secs.to_bits());
            }
        }
    }
}

#[test]
fn powercap_experiment_matches_legacy_simulator_path() {
    // The Scenario-driven power-cap sweep vs the pre-refactor hand-wired
    // run_power_capped loop: ledger energy, series and counters must agree
    // to the bit.
    let opts = ExpOptions::quick(AB_JOBS);
    let sweep = powercap::run(&opts);
    for b in &sweep.baselines {
        let w = legacy_profile(&b.workload).generate(opts.seed, opts.jobs);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let legacy = sim
            .run_power_capped(&w.jobs, &PowerCapConfig::observe_only())
            .unwrap();
        assert_eq!(
            b.energy.to_bits(),
            legacy.power.energy.to_bits(),
            "{}",
            b.workload
        );
        assert_eq!(b.avg_bsld.to_bits(), legacy.run.metrics.avg_bsld.to_bits());
    }
    for cell in &sweep.cells {
        let w = legacy_profile(&cell.workload).generate(opts.seed, opts.jobs);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let cfg = PowerCapConfig::hard(cell.cap_fraction)
            .with_sleep(SleepConfig::paper_default())
            .with_policy(PowerAwareConfig {
                bsld_threshold: cell.bsld_threshold,
                wq_threshold: WqThreshold::NoLimit,
            });
        let legacy = sim.run_power_capped(&w.jobs, &cfg).unwrap();
        let base_energy = sweep
            .baselines
            .iter()
            .find(|b| b.workload == cell.workload)
            .unwrap()
            .energy;
        assert_eq!(
            cell.norm_energy.to_bits(),
            (legacy.power.energy / base_energy).to_bits(),
            "{} cap {} th {}",
            cell.workload,
            cell.cap_fraction,
            cell.bsld_threshold
        );
        assert_eq!(
            cell.avg_bsld.to_bits(),
            legacy.run.metrics.avg_bsld.to_bits()
        );
        assert_eq!(cell.deferrals, legacy.power.cap.deferrals);
        assert_eq!(cell.downgears, legacy.power.cap.downgears);
        assert_eq!(cell.wakes, legacy.power.sleep.wakes);
    }
}

#[test]
fn power_capped_scenario_matches_legacy_power_series() {
    // Full power-report equality on one capped cell, series included.
    let w = TraceProfile::sdsc_blue()
        .scaled_cpus(64)
        .generate(AB_SEED, 200);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let cfg = PowerCapConfig::hard(0.7)
        .with_sleep(SleepConfig::paper_default())
        .with_policy(PowerAwareConfig::medium());
    let legacy = sim.run_power_capped(&w.jobs, &cfg).unwrap();

    let mut sc = Scenario::synthetic("ab-cap", ProfileName::SdscBlue, 200, AB_SEED);
    sc = sc.map_workload(|wl| {
        if let bsld::core::scenario::WorkloadSpec::Synthetic { scale_cpus, .. } = wl {
            *scale_cpus = Some(64);
        }
    });
    sc.policy = PolicySpec::from(PowerAwareConfig::medium());
    sc.power.cap_fraction = Some(0.7);
    sc.power.sleep = SleepSpec::Paper;
    let via = sc.run().unwrap();
    let power = via.power.expect("capped run reports power");

    assert_eq!(via.run.outcomes, legacy.run.outcomes);
    assert_eq!(power.series, legacy.power.series);
    assert_eq!(power.energy.to_bits(), legacy.power.energy.to_bits());
    assert_eq!(power.peak.to_bits(), legacy.power.peak.to_bits());
    assert_eq!(power.cap.deferrals, legacy.power.cap.deferrals);
    assert_eq!(power.sleep.sleeps, legacy.power.sleep.sleeps);
}
