//! A/B oracle for the pluggable power-model subsystem.
//!
//! The pre-refactor simulator priced power with one hard-wired formula:
//! dynamic `A·C·f·V²` (running activity 2.5× idle) plus static `α·V`
//! with α pinning the static share to 25 % of total active power at the
//! top gear. These tests pin the refactor against that original formula:
//!
//! * [`PaperDvfs`]'s gear tables are **bit-identical** to an inline
//!   longhand re-derivation, both directly and behind the trait object;
//! * the single-rail [`RailSet`] aggregate — the new default machine
//!   layout — reproduces the bare model's draw bit for bit;
//! * on the paper's grid experiment shape (reduced scale, as in
//!   `incremental_ab.rs`) splitting the machine into CPU/memory/
//!   interconnect rails never perturbs the schedule;
//! * a scenario that selects `model = paper` produces the same outcomes
//!   and the same CPU-rail energy, bit for bit, as a spec that never
//!   mentions a model.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::GearSet;
use bsld::core::scenario::{PowerModelSpec, ProfileName, Scenario, WorkloadSpec};
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::power::{Constant, Linear, PaperDvfs, PowerModel, Rail, RailKind, RailSet};
use bsld::workload::profiles::TraceProfile;

const AB_JOBS: usize = 250;
const AB_SEED: u64 = 2010;

/// The original formula, written out longhand with the paper's numbers
/// (activity ratio 2.5, static share 25 %, normalised `A_idle·C = 1`).
/// Returns the per-gear active table (ascending) and the idle draw.
fn oracle_tables(gears: &GearSet) -> (Vec<f64>, f64) {
    let top = gears.get(gears.top());
    let act_idle_c = 1.0;
    let act_run_c = act_idle_c * 2.5;
    let alpha = 0.25 / (1.0 - 0.25) * act_run_c * top.freq_ghz * top.voltage;
    let p_active = gears
        .ascending()
        .map(|(_, g)| act_run_c * g.freq_ghz * g.voltage * g.voltage + alpha * g.voltage)
        .collect();
    let low = gears.get(gears.lowest());
    let p_idle = act_idle_c * low.freq_ghz * low.voltage * low.voltage + alpha * low.voltage;
    (p_active, p_idle)
}

#[test]
fn paper_model_bit_identical_to_inline_oracle() {
    let gears = GearSet::paper();
    let (active, idle) = oracle_tables(&gears);
    let m = PaperDvfs::paper(gears.clone());
    for ((id, _), want) in gears.ascending().zip(&active) {
        assert_eq!(m.p_active(id).to_bits(), want.to_bits(), "gear {id}");
    }
    assert_eq!(m.p_idle().to_bits(), idle.to_bits());

    // The same bits again behind the trait object…
    let boxed: Box<dyn PowerModel> = Box::new(PaperDvfs::paper(gears.clone()));
    // …and through the single-rail aggregate the simulator defaults to
    // (a one-element sum starts at 0.0, and 0.0 + x == x exactly).
    let rail = RailSet::cpu(boxed.clone());
    for ((id, _), want) in gears.ascending().zip(&active) {
        assert_eq!(boxed.p_active(id).to_bits(), want.to_bits(), "gear {id}");
        assert_eq!(
            PowerModel::p_active(&rail, id).to_bits(),
            want.to_bits(),
            "rail aggregate, gear {id}"
        );
    }
    assert_eq!(boxed.p_idle().to_bits(), idle.to_bits());
    assert_eq!(PowerModel::p_idle(&rail).to_bits(), idle.to_bits());
}

/// The three-rail layout a `model = …` scenario builds: the chosen CPU
/// model plus memory/interconnect rails anchored to the paper's
/// endpoints.
fn three_rail(gears: &GearSet) -> RailSet {
    let paper = PaperDvfs::paper(gears.clone());
    let idle = paper.p_idle();
    let full = paper.p_active(gears.top());
    RailSet::new(vec![
        Rail::new(RailKind::Cpu, Box::new(paper)),
        Rail::new(
            RailKind::Memory,
            Box::new(Linear::new(gears.clone(), 0.30 * idle, 0.30 * full)),
        ),
        Rail::new(
            RailKind::Interconnect,
            Box::new(Constant::new(gears.clone(), 0.15 * full)),
        ),
    ])
    .expect("static three-rail layout is valid")
}

#[test]
fn grid_outcomes_unchanged_by_rail_split() {
    // The grid sweep shape at reduced scale: every workload × BSLD
    // threshold × WQ threshold, plus the no-DVFS baseline. Splitting the
    // machine into rails changes reporting only, never the schedule.
    let thresholds = [1.5, 3.0];
    let wqs = [
        WqThreshold::Limit(0),
        WqThreshold::Limit(16),
        WqThreshold::NoLimit,
    ];
    for profile in TraceProfile::paper_five() {
        let w = profile.generate(AB_SEED, AB_JOBS);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let mut railed = sim.clone();
        railed.power = three_rail(&GearSet::paper());

        let a = sim.run_baseline(&w.jobs).unwrap();
        let b = railed.run_baseline(&w.jobs).unwrap();
        assert_eq!(
            a.outcomes, b.outcomes,
            "{}: baseline diverged",
            w.cluster_name
        );

        for bt in thresholds {
            for wq in wqs {
                let cfg = PowerAwareConfig {
                    bsld_threshold: bt,
                    wq_threshold: wq,
                };
                let a = sim.run_power_aware(&w.jobs, &cfg).unwrap();
                let b = railed.run_power_aware(&w.jobs, &cfg).unwrap();
                assert_eq!(
                    a.outcomes,
                    b.outcomes,
                    "{}: diverged at {}",
                    w.cluster_name,
                    cfg.label()
                );
            }
        }
    }
}

#[test]
fn scenario_model_paper_is_reporting_only() {
    // Scenario-level A/B across profiles and thresholds: `model = paper`
    // against a spec with no model line. Outcomes identical; the CPU
    // rail's energy identical bit for bit; the extra rails sum into the
    // aggregate.
    for (profile, th) in [
        (ProfileName::SdscBlue, 1.5),
        (ProfileName::Ctc, 3.0),
        (ProfileName::Sdsc, 2.0),
    ] {
        let mut sc = Scenario::synthetic("ab", profile, 200, AB_SEED).map_workload(|w| {
            if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
                *scale_cpus = Some(64);
            }
        });
        sc.policy = bsld::core::scenario::PolicySpec::BsldThreshold {
            th,
            wq: WqThreshold::NoLimit,
        };
        sc.power.observe = true;

        let default_run = sc.run().unwrap();
        sc.power.model = Some(PowerModelSpec::Paper);
        let paper_run = sc.run().unwrap();

        assert_eq!(
            default_run.run.outcomes, paper_run.run.outcomes,
            "{profile:?} th={th}: schedule diverged"
        );
        let d = default_run.power.expect("observed run reports power");
        let p = paper_run.power.expect("observed run reports power");
        assert_eq!(d.rails.len(), 1);
        assert_eq!(p.rails.len(), 3);
        assert_eq!(
            d.rails[0].energy.to_bits(),
            p.rails[0].energy.to_bits(),
            "{profile:?} th={th}: CPU rail repriced"
        );
        assert_eq!(d.energy.to_bits(), d.rails[0].energy.to_bits());
        let rail_sum: f64 = p.rails.iter().map(|r| r.energy).sum();
        assert!(
            (rail_sum - p.energy).abs() <= 1e-9 * p.energy.max(1.0),
            "{profile:?} th={th}: rails do not sum to aggregate ({rail_sum} vs {})",
            p.energy
        );
    }
}
