//! Integration tests: end-to-end energy-accounting identities.
//!
//! The energy numbers behind Figures 3/7/8 must be *derivable by hand* from
//! the schedule; these tests recompute them independently and compare.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::GearSet;
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::model::GearId;
use bsld::power::{BetaModel, PaperDvfs};
use bsld::workload::profiles::TraceProfile;

#[test]
fn baseline_energy_equals_area_times_top_power() {
    let w = TraceProfile::ctc().scaled_cpus(32).generate(31, 300);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim.run_baseline(&w.jobs).unwrap();
    let pm = PaperDvfs::paper(GearSet::paper());
    let top = GearSet::paper().top();
    let expected: f64 = w
        .jobs
        .iter()
        .map(|j| j.cpus as f64 * j.runtime as f64 * pm.p_active(top))
        .sum();
    let got = res.metrics.energy.computational;
    assert!(
        (got / expected - 1.0).abs() < 1e-9,
        "computational energy mismatch: {got} vs {expected}"
    );
}

#[test]
fn policy_energy_recomputable_from_outcomes() {
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(33, 400);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim
        .run_power_aware(
            &w.jobs,
            &PowerAwareConfig {
                bsld_threshold: 3.0,
                wq_threshold: WqThreshold::NoLimit,
            },
        )
        .unwrap();
    let pm = PaperDvfs::paper(GearSet::paper());
    let pm_ref = &pm;
    let manual: f64 = res
        .outcomes
        .iter()
        .flat_map(|o| {
            o.phases
                .iter()
                .map(move |p| o.cpus as f64 * p.seconds as f64 * pm_ref.p_active(p.gear))
        })
        .sum();
    let got = res.metrics.energy.computational;
    assert!((got / manual - 1.0).abs() < 1e-9, "{got} vs {manual}");
}

#[test]
fn idle_energy_identity() {
    let w = TraceProfile::llnl_thunder()
        .scaled_cpus(64)
        .generate(35, 300);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim.run_baseline(&w.jobs).unwrap();
    let pm = PaperDvfs::paper(GearSet::paper());
    let e = &res.metrics.energy;
    let capacity = w.cpus as f64 * e.makespan_secs as f64;
    let expected_idle = (capacity - e.busy_cpu_secs) * pm.p_idle();
    assert!(
        ((e.with_idle - e.computational) / expected_idle - 1.0).abs() < 1e-9,
        "idle component mismatch"
    );
}

#[test]
fn dilated_runtime_matches_beta_model_per_job() {
    let w = TraceProfile::sdsc_blue().scaled_cpus(48).generate(37, 250);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim
        .run_power_aware(
            &w.jobs,
            &PowerAwareConfig {
                bsld_threshold: 3.0,
                wq_threshold: WqThreshold::NoLimit,
            },
        )
        .unwrap();
    let tm = BetaModel::new(GearSet::paper());
    for o in &res.outcomes {
        if o.phases.len() == 1 {
            let job = &w.jobs[o.id.index()];
            let expected = tm.dilate(job.runtime, job.beta, o.gear);
            assert_eq!(
                o.penalized_runtime(),
                expected,
                "{}: runtime at {} should be {}",
                o.id,
                o.gear,
                expected
            );
        }
    }
}

#[test]
fn bsld_metric_recomputable_from_outcomes() {
    let w = TraceProfile::ctc().scaled_cpus(32).generate(39, 300);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let res = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap();
    let manual: f64 =
        res.outcomes.iter().map(|o| o.bsld(600)).sum::<f64>() / res.outcomes.len() as f64;
    assert!((res.metrics.avg_bsld / manual - 1.0).abs() < 1e-12);
    // And per the paper's Eq. 6, every BSLD ≥ 1 with the nominal-runtime
    // denominator.
    for o in &res.outcomes {
        let denom = 600u64.max(o.nominal_runtime) as f64;
        let expected = ((o.wait() + o.penalized_runtime()) as f64 / denom).max(1.0);
        assert!((o.bsld(600) - expected).abs() < 1e-12);
    }
}

#[test]
fn utilization_in_unit_interval_and_consistent() {
    for (seed, profile) in [(41u64, TraceProfile::ctc()), (43, TraceProfile::sdsc())] {
        let w = profile.scaled_cpus(32).generate(seed, 300);
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let m = sim.run_baseline(&w.jobs).unwrap().metrics;
        assert!(
            m.utilization > 0.0 && m.utilization <= 1.0,
            "util = {}",
            m.utilization
        );
        let manual = m.energy.busy_cpu_secs / (w.cpus as f64 * m.makespan_secs as f64);
        assert!((m.utilization - manual).abs() < 1e-12);
    }
}

#[test]
fn gear_histogram_sums_to_job_count() {
    let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(45, 350);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let m = sim
        .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
        .unwrap()
        .metrics;
    let total: usize = m.gear_histogram.iter().sum();
    assert_eq!(total, w.jobs.len());
    // Reduced = everything not initially at top... unless boosted (no boost
    // here), so the histogram's sub-top mass equals reduced_jobs.
    let sub_top: usize = m.gear_histogram[..5].iter().sum();
    assert_eq!(sub_top, m.reduced_jobs);
    let _ = GearId(0); // silence unused-import lints if histogram shrinks
}
