//! Alternative power models in the spirit of dslab's `dslab-power-models`:
//! constant, linear and cubic utilization curves, plus an empirical
//! piecewise-linear curve loaded from a small CSV of `(utilization, watts)`
//! points.
//!
//! Each model prices a DVFS gear at the utilization level `u = f/f_top`, so
//! the gear table and the continuous curve always agree (the property the
//! ledger cross-validation tests pin down).

use bsld_cluster::GearSet;
use bsld_model::GearId;

use crate::model::PowerModel;

/// Piecewise-linear interpolation over `points` sorted by ascending `x`,
/// clamped to the first/last point outside the covered range.
// Exact equality guards a duplicated knot (x1 == x0 would divide by zero);
// the knots are literals from calibration tables, not computed values.
#[allow(clippy::float_cmp)]
pub(crate) fn interp_clamped(points: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(!points.is_empty(), "interpolation needs at least one point");
    if x <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            if x1 == x0 {
                return y1;
            }
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    points[points.len() - 1].1
}

/// A gear's operating point on the utilization axis: its fraction of the
/// top frequency.
fn gear_util(gears: &GearSet, gear: GearId) -> f64 {
    gears.get(gear).freq_ghz / gears.get(gears.top()).freq_ghz
}

/// Energy-unproportional extreme: the same draw at every gear and every
/// utilization, idle included.
#[derive(Debug, Clone)]
pub struct Constant {
    gears: GearSet,
    watts: f64,
}

impl Constant {
    /// A constant draw of `watts` (finite, non-negative).
    pub fn new(gears: GearSet, watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "constant draw must be finite and non-negative"
        );
        Constant { gears, watts }
    }
}

impl PowerModel for Constant {
    fn gears(&self) -> &GearSet {
        &self.gears
    }

    fn p_active(&self, _gear: GearId) -> f64 {
        self.watts
    }

    fn p_idle(&self) -> f64 {
        self.watts
    }

    fn power(&self, _utilization: f64) -> f64 {
        self.watts
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

/// Energy-proportional model: `P(u) = idle + (full − idle)·u`.
#[derive(Debug, Clone)]
pub struct Linear {
    gears: GearSet,
    idle: f64,
    full: f64,
}

impl Linear {
    /// A linear ramp from `idle` (draw at zero utilization) to `full` (draw
    /// at the top gear). Requires `0 ≤ idle ≤ full`, both finite.
    pub fn new(gears: GearSet, idle: f64, full: f64) -> Self {
        assert!(
            idle.is_finite() && full.is_finite() && idle >= 0.0 && full >= idle,
            "linear model needs finite 0 <= idle <= full"
        );
        Linear { gears, idle, full }
    }
}

impl PowerModel for Linear {
    fn gears(&self) -> &GearSet {
        &self.gears
    }

    fn p_active(&self, gear: GearId) -> f64 {
        self.power(gear_util(&self.gears, gear))
    }

    fn p_idle(&self) -> f64 {
        self.idle
    }

    fn power(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle + (self.full - self.idle) * u
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

/// Cubic frequency scaling: `P(u) = idle + (full − idle)·u³` — dynamic power
/// grows with `f·V²` and voltage tracks frequency, so draw collapses fast
/// below the top gear.
#[derive(Debug, Clone)]
pub struct Cubic {
    gears: GearSet,
    idle: f64,
    full: f64,
}

impl Cubic {
    /// A cubic ramp from `idle` to `full`. Requires `0 ≤ idle ≤ full`, both
    /// finite.
    pub fn new(gears: GearSet, idle: f64, full: f64) -> Self {
        assert!(
            idle.is_finite() && full.is_finite() && idle >= 0.0 && full >= idle,
            "cubic model needs finite 0 <= idle <= full"
        );
        Cubic { gears, idle, full }
    }
}

impl PowerModel for Cubic {
    fn gears(&self) -> &GearSet {
        &self.gears
    }

    fn p_active(&self, gear: GearId) -> f64 {
        self.power(gear_util(&self.gears, gear))
    }

    fn p_idle(&self) -> f64 {
        self.idle
    }

    fn power(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle + (self.full - self.idle) * u.powi(3)
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

/// Piecewise-linear curve through measured `(utilization, watts)` points,
/// loaded from a small CSV.
#[derive(Debug, Clone)]
pub struct Empirical {
    gears: GearSet,
    points: Vec<(f64, f64)>,
}

impl Empirical {
    /// Builds the model from explicit points: at least two, utilizations in
    /// `[0, 1]` strictly increasing, watts finite and non-negative.
    pub fn from_points(gears: GearSet, points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.len() < 2 {
            return Err(format!(
                "empirical model needs at least 2 points, got {}",
                points.len()
            ));
        }
        let mut prev = f64::NEG_INFINITY;
        for &(u, w) in &points {
            if !(0.0..=1.0).contains(&u) {
                return Err(format!("utilization {u} outside [0, 1]"));
            }
            if u <= prev {
                return Err(format!(
                    "utilizations must be strictly increasing ({prev} then {u})"
                ));
            }
            if !w.is_finite() || w < 0.0 {
                return Err(format!(
                    "watts {w} at utilization {u} must be finite and >= 0"
                ));
            }
            prev = u;
        }
        Ok(Empirical { gears, points })
    }

    /// Parses the CSV text: one `utilization,watts` pair per line, `#`
    /// comments and blank lines skipped, an optional `utilization,watts`
    /// header tolerated.
    pub fn from_csv_str(gears: GearSet, text: &str) -> Result<Self, String> {
        let mut points = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if points.is_empty()
                && line.to_ascii_lowercase().replace(' ', "") == "utilization,watts"
            {
                continue;
            }
            let (u_s, w_s) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected utilization,watts", i + 1))?;
            let u: f64 = u_s
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad utilization {:?}", i + 1, u_s.trim()))?;
            let w: f64 = w_s
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad watts {:?}", i + 1, w_s.trim()))?;
            points.push((u, w));
        }
        Self::from_points(gears, points)
    }

    /// The curve's points, ascending by utilization.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl PowerModel for Empirical {
    fn gears(&self) -> &GearSet {
        &self.gears
    }

    fn p_active(&self, gear: GearId) -> f64 {
        self.power(gear_util(&self.gears, gear))
    }

    fn p_idle(&self) -> f64 {
        self.power(0.0)
    }

    fn power(&self, utilization: f64) -> f64 {
        interp_clamped(&self.points, utilization.clamp(0.0, 1.0))
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperDvfs;

    fn gs() -> GearSet {
        GearSet::paper()
    }

    #[test]
    fn constant_is_flat_everywhere() {
        let m = Constant::new(gs(), 7.5);
        assert_eq!(m.p_idle(), 7.5);
        assert_eq!(m.power(0.3), 7.5);
        for (id, _) in m.gears().ascending().collect::<Vec<_>>() {
            assert_eq!(m.p_active(id), 7.5);
        }
    }

    #[test]
    fn linear_endpoints_and_gear_points() {
        let m = Linear::new(gs(), 2.0, 10.0);
        assert_eq!(m.p_idle(), 2.0);
        assert!((m.power(1.0) - 10.0).abs() < 1e-12);
        assert!((m.power(0.5) - 6.0).abs() < 1e-12);
        let top = m.gears().top();
        assert!((m.p_active(top) - 10.0).abs() < 1e-12);
        // Gear draw equals the curve at the gear's frequency ratio.
        let low = m.gears().lowest();
        let u = gear_util(m.gears(), low);
        assert!((m.p_active(low) - m.power(u)).abs() < 1e-12);
    }

    #[test]
    fn cubic_sits_below_linear_between_endpoints() {
        let lin = Linear::new(gs(), 2.0, 10.0);
        let cub = Cubic::new(gs(), 2.0, 10.0);
        assert_eq!(cub.p_idle(), lin.p_idle());
        assert!((cub.power(1.0) - lin.power(1.0)).abs() < 1e-12);
        for u in [0.2, 0.5, 0.8] {
            assert!(cub.power(u) < lin.power(u), "cubic must undercut at {u}");
        }
    }

    #[test]
    fn empirical_parses_and_interpolates() {
        let csv = "# measured rail\nutilization,watts\n0.0, 3.0\n0.5, 5.0\n1.0, 11.0\n";
        let m = Empirical::from_csv_str(gs(), csv).unwrap();
        assert_eq!(m.points().len(), 3);
        assert!((m.p_idle() - 3.0).abs() < 1e-12);
        assert!((m.power(0.25) - 4.0).abs() < 1e-12);
        assert!((m.power(0.75) - 8.0).abs() < 1e-12);
        assert_eq!(m.power(2.0), 11.0);
    }

    #[test]
    fn empirical_rejects_bad_input() {
        assert!(Empirical::from_csv_str(gs(), "0.0,3.0\n").is_err());
        assert!(Empirical::from_csv_str(gs(), "0.5,3.0\n0.5,4.0\n").is_err());
        assert!(Empirical::from_csv_str(gs(), "0.0,3.0\n1.5,4.0\n").is_err());
        assert!(Empirical::from_csv_str(gs(), "0.0,-1.0\n1.0,4.0\n").is_err());
        assert!(Empirical::from_csv_str(gs(), "0.0 3.0\n").is_err());
        assert!(Empirical::from_csv_str(gs(), "0.0,x\n1.0,4.0\n").is_err());
    }

    #[test]
    fn paper_anchored_models_share_endpoints() {
        // The scenario layer anchors every CPU-rail model to the paper
        // model's endpoints; the alternatives then agree with it at u = 0
        // and u = 1 and only disagree in between.
        let paper = PaperDvfs::paper(gs());
        let idle = paper.p_idle();
        let full = paper.p_active(paper.gears().top());
        let lin = Linear::new(gs(), idle, full);
        let cub = Cubic::new(gs(), idle, full);
        assert!((lin.p_idle() - paper.p_idle()).abs() < 1e-12);
        assert!((cub.p_active(gs().top()) - full).abs() < 1e-12);
    }
}
