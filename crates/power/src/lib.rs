//! Power and execution-time models (Section 4 of Etinski et al. 2010), now
//! pluggable.
//!
//! * [`PowerModel`] — the trait every model implements: draw by DVFS gear
//!   (`p_active`/`p_idle`), draw by continuous utilization (`power(u)`), and
//!   a static/idle decomposition.
//! * [`PaperDvfs`] — the paper's CPU model: dynamic power `P = A·C·f·V²`
//!   plus static power `P = α·V`, with a running/idle activity ratio of 2.5
//!   and α derived from the static share of total active power at the top
//!   gear (25 % in the paper). The derived model reproduces the paper's
//!   observation that an idle processor draws ≈ 21 % of a busy
//!   top-frequency processor.
//! * [`Constant`], [`Linear`], [`Cubic`], [`Empirical`] — alternative
//!   utilization curves in the spirit of dslab's `dslab-power-models`; the
//!   empirical one loads `(utilization, watts)` points from a small CSV.
//! * [`RailSet`] — per-subsystem rails (CPU / memory / interconnect), each
//!   priced by its own model; the set itself is a `PowerModel` summing its
//!   rails.
//! * [`BetaModel`] — the β execution-time dilation model
//!   `T(f)/T(f_top) = β·(f_top/f − 1) + 1`.
//! * [`EnergyAccount`] — accumulates per-phase active energy and derives the
//!   paper's two energy scenarios: *computational energy* (idle processors
//!   free) and *idle-aware energy* (idle processors at lowest-gear idle
//!   power).
//!
//! Power is expressed in normalised units (`A_idle·C = 1`); every reported
//! energy in the reproduction is a ratio against a no-DVFS run of the same
//! workload, so the absolute scale cancels.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod energy;
pub mod model;
pub mod models;
pub mod rail;
pub mod time_model;

pub use energy::{EnergyAccount, EnergyReport};
pub use model::{PaperDvfs, PowerModel};
pub use models::{Constant, Cubic, Empirical, Linear};
pub use rail::{Rail, RailKind, RailSet};
pub use time_model::BetaModel;

/// The paper's default β (Section 4, after Freeh et al. measurements).
pub const DEFAULT_BETA: f64 = 0.5;

/// The paper's static share of total active CPU power at the top frequency.
pub const DEFAULT_STATIC_FRACTION: f64 = 0.25;

/// The paper's running-to-idle activity-factor ratio.
pub const DEFAULT_ACTIVITY_RATIO: f64 = 2.5;
