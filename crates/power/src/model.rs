//! The CPU power model.

use bsld_cluster::GearSet;
use bsld_model::GearId;

use crate::{DEFAULT_ACTIVITY_RATIO, DEFAULT_STATIC_FRACTION};

/// Dynamic + static CPU power (Eqs. 3–4 of the paper).
///
/// Dynamic power is `A·C·f·V²` where `A` is the activity factor and `C` the
/// switched capacitance; the product `A·C` is normalised to 1 for an idle
/// processor, and a running processor's activity is `activity_ratio` (2.5)
/// times higher. Static power is `α·V` with α chosen such that static power
/// is `static_fraction` (25 %) of the total active power at the top gear.
///
/// Idle processors are assumed to sit at the lowest gear with idle activity
/// — the paper's "idle = low" scenario.
#[derive(Debug, Clone)]
pub struct PowerModel {
    gears: GearSet,
    /// `A_idle · C` in normalised power units.
    act_idle_c: f64,
    /// Running activity / idle activity (2.5 in the paper).
    activity_ratio: f64,
    /// Static power coefficient (derived).
    alpha: f64,
}

impl PowerModel {
    /// The paper's parameterisation for a given gear set: activity ratio
    /// 2.5, static share 25 % at the top gear, normalised `A_idle·C = 1`.
    pub fn paper(gears: GearSet) -> Self {
        Self::with_params(gears, DEFAULT_STATIC_FRACTION, DEFAULT_ACTIVITY_RATIO, 1.0)
    }

    /// Fully parameterised constructor.
    ///
    /// * `static_fraction` — static share of *total active* power at the top
    ///   gear, in `[0, 1)`;
    /// * `activity_ratio` — running vs. idle activity (≥ 1);
    /// * `act_idle_c` — the normalised `A_idle·C` product (> 0).
    pub fn with_params(
        gears: GearSet,
        static_fraction: f64,
        activity_ratio: f64,
        act_idle_c: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&static_fraction),
            "static fraction must be in [0,1)"
        );
        assert!(
            activity_ratio >= 1.0,
            "running activity must be >= idle activity"
        );
        assert!(act_idle_c > 0.0, "A_idle·C must be positive");
        let top = gears.get(gears.top());
        // P_static(top) = sf · (P_dyn_run(top) + P_static(top))
        //   ⇒ α·V_top·(1−sf) = sf · A_run·C·f_top·V_top²
        //   ⇒ α = sf/(1−sf) · A_run·C · f_top · V_top
        let act_run_c = act_idle_c * activity_ratio;
        let alpha =
            static_fraction / (1.0 - static_fraction) * act_run_c * top.freq_ghz * top.voltage;
        PowerModel {
            gears,
            act_idle_c,
            activity_ratio,
            alpha,
        }
    }

    /// The gear set this model prices.
    pub fn gears(&self) -> &GearSet {
        &self.gears
    }

    /// Dynamic power of a processor *running a job* at `gear`.
    #[inline]
    pub fn p_dynamic_running(&self, gear: GearId) -> f64 {
        let g = self.gears.get(gear);
        self.act_idle_c * self.activity_ratio * g.freq_ghz * g.voltage * g.voltage
    }

    /// Dynamic power of an *idle* processor parked at `gear`.
    #[inline]
    pub fn p_dynamic_idle(&self, gear: GearId) -> f64 {
        let g = self.gears.get(gear);
        self.act_idle_c * g.freq_ghz * g.voltage * g.voltage
    }

    /// Static (leakage) power at `gear` (Eq. 4: `α·V`).
    #[inline]
    pub fn p_static(&self, gear: GearId) -> f64 {
        self.alpha * self.gears.get(gear).voltage
    }

    /// Total power of a processor running a job at `gear`.
    #[inline]
    pub fn p_active(&self, gear: GearId) -> f64 {
        self.p_dynamic_running(gear) + self.p_static(gear)
    }

    /// Total power of an idle processor (lowest gear, idle activity).
    #[inline]
    pub fn p_idle(&self) -> f64 {
        let low = self.gears.lowest();
        self.p_dynamic_idle(low) + self.p_static(low)
    }

    /// `P_idle / P_active(top)` — the paper reports ≈ 0.21 for its
    /// parameters.
    pub fn idle_fraction_of_top(&self) -> f64 {
        self.p_idle() / self.p_active(self.gears.top())
    }

    /// Energy (per processor) to run one second of *top-frequency work* at
    /// `gear`, i.e. `P_active(gear) · Coef` where the caller supplies the
    /// β-model dilation `coef`. Useful for reasoning about whether a gear
    /// saves energy per unit of work.
    #[inline]
    pub fn energy_per_work_second(&self, gear: GearId, coef: f64) -> f64 {
        self.p_active(gear) * coef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> PowerModel {
        PowerModel::paper(GearSet::paper())
    }

    #[test]
    fn static_share_at_top_is_25_percent() {
        let m = paper_model();
        let top = m.gears().top();
        let share = m.p_static(top) / m.p_active(top);
        assert!((share - 0.25).abs() < 1e-12, "share = {share}");
    }

    #[test]
    fn idle_is_21_percent_of_top_active() {
        // The paper: "an idle processor consumes 21% of the power consumed
        // by a processor executing a job at the highest frequency".
        let m = paper_model();
        let frac = m.idle_fraction_of_top();
        assert!((frac - 0.213).abs() < 0.005, "idle fraction = {frac}");
    }

    #[test]
    fn power_increases_with_gear() {
        let m = paper_model();
        let mut prev = 0.0;
        for (id, _) in m.gears().ascending().collect::<Vec<_>>() {
            let p = m.p_active(id);
            assert!(p > prev, "P_active must increase with frequency");
            prev = p;
        }
    }

    #[test]
    fn running_beats_idle_dynamic_by_activity_ratio() {
        let m = paper_model();
        let g = GearId(3);
        let ratio = m.p_dynamic_running(g) / m.p_dynamic_idle(g);
        assert!((ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lowest_gear_saves_energy_per_work_second() {
        // With β = 0.5 the energy per top-frequency work second must be
        // lower at the lowest gear — that is the entire point of the policy.
        let m = paper_model();
        let gs = m.gears().clone();
        let coef_low = 0.5 * (gs.freq_ratio(gs.lowest()) - 1.0) + 1.0;
        let e_low = m.energy_per_work_second(gs.lowest(), coef_low);
        let e_top = m.energy_per_work_second(gs.top(), 1.0);
        assert!(
            e_low < e_top,
            "lowest gear must be more energy-efficient per unit work: {e_low} vs {e_top}"
        );
        // And the saving is bounded (≈ 45 % for the paper's parameters).
        let saving = 1.0 - e_low / e_top;
        assert!((saving - 0.45).abs() < 0.02, "saving = {saving}");
    }

    #[test]
    fn energy_per_work_monotone_across_gears_with_beta_half() {
        // For β = 0.5 and the paper's gear table, lower gears are strictly
        // more efficient per work second — the policy's low-to-high search
        // therefore finds the most efficient admissible gear first.
        let m = paper_model();
        let gs = m.gears().clone();
        let mut prev = f64::NEG_INFINITY;
        for (id, _) in gs.ascending() {
            let coef = 0.5 * (gs.freq_ratio(id) - 1.0) + 1.0;
            let e = m.energy_per_work_second(id, coef);
            assert!(e > prev, "gear {id}: {e} <= {prev}");
            prev = e;
        }
    }

    #[test]
    fn custom_static_fraction() {
        let m = PowerModel::with_params(GearSet::paper(), 0.4, 2.5, 1.0);
        let top = m.gears().top();
        let share = m.p_static(top) / m.p_active(top);
        assert!((share - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "static fraction")]
    fn rejects_bad_static_fraction() {
        let _ = PowerModel::with_params(GearSet::paper(), 1.0, 2.5, 1.0);
    }
}
