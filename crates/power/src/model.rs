//! The `PowerModel` trait and the paper's CPU power model.

use bsld_cluster::GearSet;
use bsld_model::GearId;

use crate::{DEFAULT_ACTIVITY_RATIO, DEFAULT_STATIC_FRACTION};

/// A pluggable processor power model.
///
/// A model prices a processor's draw two ways, and the two views must agree:
///
/// * **by gear** — [`p_active`](PowerModel::p_active) is the draw of a
///   processor running a job at a DVFS gear, [`p_idle`](PowerModel::p_idle)
///   the draw of an idle processor. These discrete points are what the
///   ledger, the cap policy and the energy account integrate.
/// * **by utilization** — [`power`](PowerModel::power) is the continuous
///   curve `u ∈ [0, 1] → watts`, where `u` is the fraction of the top
///   frequency the processor is driven at (`u = 0` is idle, `u = 1` is a job
///   at the top gear). A gear's operating point sits at `u = f/f_top`, so
///   `power(f_g/f_top) == p_active(g)` and `power(0) == p_idle()`.
///
/// Implementations also expose a static/idle decomposition via
/// [`p_static`](PowerModel::p_static): the load-independent part of the draw.
pub trait PowerModel: std::fmt::Debug + Send + Sync {
    /// The gear set this model prices.
    fn gears(&self) -> &GearSet;

    /// Total power of a processor running a job at `gear`.
    fn p_active(&self, gear: GearId) -> f64;

    /// Total power of an idle processor.
    fn p_idle(&self) -> f64;

    /// Power at a continuous utilization `u ∈ [0, 1]` (fraction of the top
    /// frequency). Clamped outside the unit interval.
    fn power(&self, utilization: f64) -> f64;

    /// Static (load-independent) power at `gear`. Defaults to the curve's
    /// value at zero utilization.
    fn p_static(&self, gear: GearId) -> f64 {
        let _ = gear;
        self.power(0.0)
    }

    /// Energy (per processor) to run one second of *top-frequency work* at
    /// `gear`, i.e. `P_active(gear) · coef` where the caller supplies the
    /// β-model dilation `coef`.
    fn energy_per_work_second(&self, gear: GearId, coef: f64) -> f64 {
        self.p_active(gear) * coef
    }

    /// Clones the model behind a trait object.
    fn clone_model(&self) -> Box<dyn PowerModel>;
}

impl Clone for Box<dyn PowerModel> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// Dynamic + static CPU power (Eqs. 3–4 of the paper).
///
/// Dynamic power is `A·C·f·V²` where `A` is the activity factor and `C` the
/// switched capacitance; the product `A·C` is normalised to 1 for an idle
/// processor, and a running processor's activity is `activity_ratio` (2.5)
/// times higher. Static power is `α·V` with α chosen such that static power
/// is `static_fraction` (25 %) of the total active power at the top gear.
///
/// Idle processors are assumed to sit at the lowest gear with idle activity
/// — the paper's "idle = low" scenario.
#[derive(Debug, Clone)]
pub struct PaperDvfs {
    gears: GearSet,
    /// `A_idle · C` in normalised power units.
    act_idle_c: f64,
    /// Running activity / idle activity (2.5 in the paper).
    activity_ratio: f64,
    /// Static power coefficient (derived).
    alpha: f64,
}

impl PaperDvfs {
    /// The paper's parameterisation for a given gear set: activity ratio
    /// 2.5, static share 25 % at the top gear, normalised `A_idle·C = 1`.
    pub fn paper(gears: GearSet) -> Self {
        Self::with_params(gears, DEFAULT_STATIC_FRACTION, DEFAULT_ACTIVITY_RATIO, 1.0)
    }

    /// Fully parameterised constructor.
    ///
    /// * `static_fraction` — static share of *total active* power at the top
    ///   gear, in `[0, 1)`;
    /// * `activity_ratio` — running vs. idle activity (≥ 1);
    /// * `act_idle_c` — the normalised `A_idle·C` product (> 0).
    pub fn with_params(
        gears: GearSet,
        static_fraction: f64,
        activity_ratio: f64,
        act_idle_c: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&static_fraction),
            "static fraction must be in [0,1)"
        );
        assert!(
            activity_ratio >= 1.0,
            "running activity must be >= idle activity"
        );
        assert!(act_idle_c > 0.0, "A_idle·C must be positive");
        let top = gears.get(gears.top());
        // P_static(top) = sf · (P_dyn_run(top) + P_static(top))
        //   ⇒ α·V_top·(1−sf) = sf · A_run·C·f_top·V_top²
        //   ⇒ α = sf/(1−sf) · A_run·C · f_top · V_top
        let act_run_c = act_idle_c * activity_ratio;
        let alpha =
            static_fraction / (1.0 - static_fraction) * act_run_c * top.freq_ghz * top.voltage;
        PaperDvfs {
            gears,
            act_idle_c,
            activity_ratio,
            alpha,
        }
    }

    /// The gear set this model prices.
    pub fn gears(&self) -> &GearSet {
        &self.gears
    }

    /// Dynamic power of a processor *running a job* at `gear`.
    #[inline]
    pub fn p_dynamic_running(&self, gear: GearId) -> f64 {
        let g = self.gears.get(gear);
        self.act_idle_c * self.activity_ratio * g.freq_ghz * g.voltage * g.voltage
    }

    /// Dynamic power of an *idle* processor parked at `gear`.
    #[inline]
    pub fn p_dynamic_idle(&self, gear: GearId) -> f64 {
        let g = self.gears.get(gear);
        self.act_idle_c * g.freq_ghz * g.voltage * g.voltage
    }

    /// Static (leakage) power at `gear` (Eq. 4: `α·V`).
    #[inline]
    pub fn p_static(&self, gear: GearId) -> f64 {
        self.alpha * self.gears.get(gear).voltage
    }

    /// Total power of a processor running a job at `gear`.
    #[inline]
    pub fn p_active(&self, gear: GearId) -> f64 {
        self.p_dynamic_running(gear) + self.p_static(gear)
    }

    /// Total power of an idle processor (lowest gear, idle activity).
    #[inline]
    pub fn p_idle(&self) -> f64 {
        let low = self.gears.lowest();
        self.p_dynamic_idle(low) + self.p_static(low)
    }

    /// `P_idle / P_active(top)` — the paper reports ≈ 0.21 for its
    /// parameters.
    pub fn idle_fraction_of_top(&self) -> f64 {
        self.p_idle() / self.p_active(self.gears.top())
    }

    /// Energy (per processor) to run one second of *top-frequency work* at
    /// `gear`, i.e. `P_active(gear) · Coef` where the caller supplies the
    /// β-model dilation `coef`. Useful for reasoning about whether a gear
    /// saves energy per unit of work.
    #[inline]
    pub fn energy_per_work_second(&self, gear: GearId, coef: f64) -> f64 {
        self.p_active(gear) * coef
    }
}

impl PowerModel for PaperDvfs {
    fn gears(&self) -> &GearSet {
        &self.gears
    }

    fn p_active(&self, gear: GearId) -> f64 {
        PaperDvfs::p_active(self, gear)
    }

    fn p_idle(&self) -> f64 {
        PaperDvfs::p_idle(self)
    }

    fn p_static(&self, gear: GearId) -> f64 {
        PaperDvfs::p_static(self, gear)
    }

    fn power(&self, utilization: f64) -> f64 {
        // Piecewise-linear through the gear operating points, anchored at
        // (0, p_idle): below the lowest gear's frequency ratio the curve
        // descends towards the idle draw.
        let top = self.gears.get(self.gears.top()).freq_ghz;
        let mut pts = Vec::with_capacity(self.gears.len() + 1);
        pts.push((0.0, PaperDvfs::p_idle(self)));
        for (id, g) in self.gears.ascending() {
            pts.push((g.freq_ghz / top, PaperDvfs::p_active(self, id)));
        }
        crate::models::interp_clamped(&pts, utilization)
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> PaperDvfs {
        PaperDvfs::paper(GearSet::paper())
    }

    #[test]
    fn static_share_at_top_is_25_percent() {
        let m = paper_model();
        let top = m.gears().top();
        let share = m.p_static(top) / m.p_active(top);
        assert!((share - 0.25).abs() < 1e-12, "share = {share}");
    }

    #[test]
    fn idle_is_21_percent_of_top_active() {
        // The paper: "an idle processor consumes 21% of the power consumed
        // by a processor executing a job at the highest frequency".
        let m = paper_model();
        let frac = m.idle_fraction_of_top();
        assert!((frac - 0.213).abs() < 0.005, "idle fraction = {frac}");
    }

    #[test]
    fn power_increases_with_gear() {
        let m = paper_model();
        let mut prev = 0.0;
        for (id, _) in m.gears().ascending().collect::<Vec<_>>() {
            let p = m.p_active(id);
            assert!(p > prev, "P_active must increase with frequency");
            prev = p;
        }
    }

    #[test]
    fn running_beats_idle_dynamic_by_activity_ratio() {
        let m = paper_model();
        let g = GearId(3);
        let ratio = m.p_dynamic_running(g) / m.p_dynamic_idle(g);
        assert!((ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lowest_gear_saves_energy_per_work_second() {
        // With β = 0.5 the energy per top-frequency work second must be
        // lower at the lowest gear — that is the entire point of the policy.
        let m = paper_model();
        let gs = m.gears().clone();
        let coef_low = 0.5 * (gs.freq_ratio(gs.lowest()) - 1.0) + 1.0;
        let e_low = m.energy_per_work_second(gs.lowest(), coef_low);
        let e_top = m.energy_per_work_second(gs.top(), 1.0);
        assert!(
            e_low < e_top,
            "lowest gear must be more energy-efficient per unit work: {e_low} vs {e_top}"
        );
        // And the saving is bounded (≈ 45 % for the paper's parameters).
        let saving = 1.0 - e_low / e_top;
        assert!((saving - 0.45).abs() < 0.02, "saving = {saving}");
    }

    #[test]
    fn energy_per_work_monotone_across_gears_with_beta_half() {
        // For β = 0.5 and the paper's gear table, lower gears are strictly
        // more efficient per work second — the policy's low-to-high search
        // therefore finds the most efficient admissible gear first.
        let m = paper_model();
        let gs = m.gears().clone();
        let mut prev = f64::NEG_INFINITY;
        for (id, _) in gs.ascending() {
            let coef = 0.5 * (gs.freq_ratio(id) - 1.0) + 1.0;
            let e = m.energy_per_work_second(id, coef);
            assert!(e > prev, "gear {id}: {e} <= {prev}");
            prev = e;
        }
    }

    #[test]
    fn custom_static_fraction() {
        let m = PaperDvfs::with_params(GearSet::paper(), 0.4, 2.5, 1.0);
        let top = m.gears().top();
        let share = m.p_static(top) / m.p_active(top);
        assert!((share - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "static fraction")]
    fn rejects_bad_static_fraction() {
        let _ = PaperDvfs::with_params(GearSet::paper(), 1.0, 2.5, 1.0);
    }

    #[test]
    fn utilization_curve_passes_through_gear_points() {
        let m = paper_model();
        let gs = m.gears().clone();
        let top_f = gs.get(gs.top()).freq_ghz;
        let pm: &dyn PowerModel = &m;
        for (id, g) in gs.ascending() {
            let u = g.freq_ghz / top_f;
            assert!(
                (pm.power(u) - m.p_active(id)).abs() < 1e-12,
                "gear {id}: curve and table disagree"
            );
        }
        assert!((pm.power(0.0) - m.p_idle()).abs() < 1e-12);
        // Clamped outside the unit interval.
        assert_eq!(pm.power(1.5), pm.power(1.0));
        assert_eq!(pm.power(-0.5), pm.power(0.0));
    }
}
