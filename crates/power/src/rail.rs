//! Per-subsystem power rails.
//!
//! Following Subramaniam & Feng's subsystem-level decomposition, a machine's
//! draw splits into rails — CPU, memory, interconnect — each priced by its
//! own [`PowerModel`]. A [`RailSet`] is itself a `PowerModel` whose draw is
//! the sum of its rails', so everything downstream (cap enforcement, sleep
//! ladders, energy reports) keeps working on the aggregate unchanged while
//! the ledger can attribute energy per rail.

use bsld_cluster::GearSet;
use bsld_model::GearId;

use crate::model::PowerModel;

/// Which subsystem a rail meters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RailKind {
    /// Processor cores (the paper's model lives here).
    Cpu,
    /// DRAM / memory subsystem.
    Memory,
    /// Network / interconnect.
    Interconnect,
}

impl RailKind {
    /// Every rail kind, in canonical order (CPU first).
    pub const ALL: [RailKind; 3] = [RailKind::Cpu, RailKind::Memory, RailKind::Interconnect];

    /// Stable lowercase label used in report column names.
    pub fn label(&self) -> &'static str {
        match self {
            RailKind::Cpu => "cpu",
            RailKind::Memory => "mem",
            RailKind::Interconnect => "net",
        }
    }
}

/// One powered subsystem: a kind plus the model pricing it.
#[derive(Debug, Clone)]
pub struct Rail {
    kind: RailKind,
    model: Box<dyn PowerModel>,
}

impl Rail {
    /// A rail of `kind` priced by `model`.
    pub fn new(kind: RailKind, model: Box<dyn PowerModel>) -> Self {
        Rail { kind, model }
    }

    /// The subsystem this rail meters.
    pub fn kind(&self) -> RailKind {
        self.kind
    }

    /// The model pricing this rail.
    pub fn model(&self) -> &dyn PowerModel {
        self.model.as_ref()
    }
}

/// An ordered set of rails; the machine's total power model.
///
/// The single-rail form ([`RailSet::cpu`]) is the bit-identical default: a
/// one-element sum starts at `0.0`, and `0.0 + x == x` exactly in IEEE
/// arithmetic, so the aggregate draw equals the lone model's draw bit for
/// bit.
#[derive(Debug, Clone)]
pub struct RailSet {
    rails: Vec<Rail>,
}

impl RailSet {
    /// A single CPU rail — the default machine layout.
    pub fn cpu(model: Box<dyn PowerModel>) -> RailSet {
        RailSet {
            rails: vec![Rail::new(RailKind::Cpu, model)],
        }
    }

    /// A validated multi-rail set: non-empty, CPU rail first, no duplicate
    /// kinds, and every rail pricing the same number of gears.
    pub fn new(rails: Vec<Rail>) -> Result<RailSet, String> {
        if rails.is_empty() {
            return Err("a rail set needs at least one rail".to_string());
        }
        if rails[0].kind != RailKind::Cpu {
            return Err("the first rail must be the CPU rail".to_string());
        }
        let gear_count = rails[0].model.gears().len();
        for (i, r) in rails.iter().enumerate() {
            if rails[..i].iter().any(|o| o.kind == r.kind) {
                return Err(format!("duplicate {} rail", r.kind.label()));
            }
            if r.model.gears().len() != gear_count {
                return Err(format!(
                    "{} rail prices {} gears, cpu rail prices {gear_count}",
                    r.kind.label(),
                    r.model.gears().len()
                ));
            }
        }
        Ok(RailSet { rails })
    }

    /// The rails, CPU first.
    pub fn rails(&self) -> &[Rail] {
        &self.rails
    }

    /// Number of rails.
    pub fn len(&self) -> usize {
        self.rails.len()
    }

    /// Whether this is the single-rail (CPU-only) default layout.
    pub fn is_single(&self) -> bool {
        self.rails.len() == 1
    }

    /// `len() == 0` is impossible by construction; provided for clippy's
    /// `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl PowerModel for RailSet {
    fn gears(&self) -> &GearSet {
        self.rails[0].model.gears()
    }

    fn p_active(&self, gear: GearId) -> f64 {
        self.rails.iter().map(|r| r.model.p_active(gear)).sum()
    }

    fn p_idle(&self) -> f64 {
        self.rails.iter().map(|r| r.model.p_idle()).sum()
    }

    fn p_static(&self, gear: GearId) -> f64 {
        self.rails.iter().map(|r| r.model.p_static(gear)).sum()
    }

    fn power(&self, utilization: f64) -> f64 {
        self.rails.iter().map(|r| r.model.power(utilization)).sum()
    }

    fn clone_model(&self) -> Box<dyn PowerModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Constant, Linear};
    use crate::PaperDvfs;

    fn paper() -> PaperDvfs {
        PaperDvfs::paper(GearSet::paper())
    }

    #[test]
    fn single_rail_sum_is_bit_identical() {
        let pm = paper();
        let set = RailSet::cpu(Box::new(pm.clone()));
        for (id, _) in GearSet::paper().ascending() {
            assert_eq!(set.p_active(id).to_bits(), pm.p_active(id).to_bits());
        }
        assert_eq!(set.p_idle().to_bits(), pm.p_idle().to_bits());
        assert!(set.is_single());
    }

    #[test]
    fn multi_rail_aggregates_sum() {
        let pm = paper();
        let set = RailSet::new(vec![
            Rail::new(RailKind::Cpu, Box::new(pm.clone())),
            Rail::new(
                RailKind::Memory,
                Box::new(Linear::new(GearSet::paper(), 1.0, 3.0)),
            ),
            Rail::new(
                RailKind::Interconnect,
                Box::new(Constant::new(GearSet::paper(), 2.0)),
            ),
        ])
        .unwrap();
        assert_eq!(set.len(), 3);
        let top = GearSet::paper().top();
        let expected = pm.p_active(top) + 3.0 + 2.0;
        assert!((set.p_active(top) - expected).abs() < 1e-12);
        let expected_idle = pm.p_idle() + 1.0 + 2.0;
        assert!((set.p_idle() - expected_idle).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_layouts() {
        assert!(RailSet::new(vec![]).is_err());
        assert!(RailSet::new(vec![Rail::new(
            RailKind::Memory,
            Box::new(Constant::new(GearSet::paper(), 1.0))
        )])
        .is_err());
        assert!(RailSet::new(vec![
            Rail::new(RailKind::Cpu, Box::new(paper())),
            Rail::new(
                RailKind::Cpu,
                Box::new(Constant::new(GearSet::paper(), 1.0))
            ),
        ])
        .is_err());
    }
}
