//! The β execution-time dilation model (Eq. 5 of the paper).
//!
//! `T(f) / T(f_top) = β · (f_top / f − 1) + 1`
//!
//! β = 1 means halving the frequency doubles the runtime (CPU-bound);
//! β = 0 means frequency does not matter (memory/communication-bound).
//! The paper uses a global β = 0.5; per-job β is supported for the paper's
//! stated future work.

use bsld_cluster::GearSet;
use bsld_model::GearId;

/// Frequency→runtime dilation under the β model.
///
/// The model owns a copy of the gear set so callers only pass gear ids.
#[derive(Debug, Clone)]
pub struct BetaModel {
    gears: GearSet,
}

impl BetaModel {
    /// Creates a β model over `gears`.
    pub fn new(gears: GearSet) -> Self {
        BetaModel { gears }
    }

    /// The gear set the model dilates against.
    pub fn gears(&self) -> &GearSet {
        &self.gears
    }

    /// The dilation coefficient `Coef(f) = β(f_top/f − 1) + 1 ≥ 1`.
    #[inline]
    pub fn coef(&self, beta: f64, gear: GearId) -> f64 {
        beta * (self.gears.freq_ratio(gear) - 1.0) + 1.0
    }

    /// Dilates a top-frequency duration (seconds) to gear `gear`.
    ///
    /// Rounds to the nearest whole second, never below 1 s; the rounding is
    /// monotone in `secs`, so `requested ≥ runtime` is preserved under
    /// dilation.
    // Rust guarantees f64 -> u64 `as` saturates at the type bounds; the
    // audit:allow lines below carry the same justification.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    pub fn dilate(&self, secs: u64, beta: f64, gear: GearId) -> u64 {
        // audit:allow(N2): f64 -> u64 `as` saturates at the bounds; result clamped >= 1
        ((secs as f64 * self.coef(beta, gear)).round() as u64).max(1)
    }

    /// Top-frequency work-seconds completed after running `elapsed` wall
    /// seconds at `gear` (the inverse of [`BetaModel::dilate`], continuous).
    #[inline]
    pub fn work_done(&self, elapsed: u64, beta: f64, gear: GearId) -> f64 {
        elapsed as f64 / self.coef(beta, gear)
    }

    /// Wall seconds needed to complete `work` top-frequency work-seconds at
    /// `gear` (rounded up, at least 1 s for positive work).
    // Same saturation argument as `dilate` above.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    pub fn wall_for_work(&self, work: f64, beta: f64, gear: GearId) -> u64 {
        if work <= 0.0 {
            return 0;
        }
        // audit:allow(N2): f64 -> u64 `as` saturates at the bounds; result clamped >= 1
        ((work * self.coef(beta, gear)).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;

    fn model() -> BetaModel {
        BetaModel::new(GearSet::paper())
    }

    #[test]
    fn coef_at_top_is_one() {
        let m = model();
        let top = m.gears().top();
        assert!((m.coef(0.5, top) - 1.0).abs() < 1e-12);
        assert!((m.coef(1.0, top) - 1.0).abs() < 1e-12);
        assert!((m.coef(0.0, top) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coef_matches_paper_formula() {
        let m = model();
        // Lowest gear 0.8 GHz: ratio 2.875; β=0.5 ⇒ Coef = 0.5·1.875+1 = 1.9375.
        assert!((m.coef(0.5, GearId(0)) - 1.9375).abs() < 1e-12);
        // β=1 ⇒ Coef = ratio.
        assert!((m.coef(1.0, GearId(0)) - 2.875).abs() < 1e-12);
        // β=0 ⇒ frequency does not matter.
        assert!((m.coef(0.0, GearId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coef_decreases_with_gear() {
        let m = model();
        let mut prev = f64::INFINITY;
        for (id, _) in m.gears().ascending() {
            let c = m.coef(0.5, id);
            assert!(c < prev);
            prev = c;
        }
    }

    #[test]
    fn dilate_rounds_and_floors() {
        let m = model();
        // 1000 × Coef(0.8 GHz) ≈ 1937.5; the binary ratio 2.3/0.8 is a hair
        // below 2.875, so the product lands just under the half and rounds
        // down. Assert the exact deterministic value.
        assert_eq!(m.dilate(1000, 0.5, GearId(0)), 1937);
        assert_eq!(m.dilate(1000, 0.5, m.gears().top()), 1000);
        assert_eq!(m.dilate(0, 0.5, GearId(0)), 1, "durations are at least 1 s");
    }

    #[test]
    fn dilation_is_monotone_in_duration() {
        let m = model();
        for g in 0..6u8 {
            let mut prev = 0;
            for secs in [1u64, 2, 10, 59, 60, 600, 3599, 86400] {
                let d = m.dilate(secs, 0.5, GearId(g));
                assert!(d >= prev, "dilate must be monotone");
                prev = d;
            }
        }
    }

    #[test]
    fn work_roundtrip() {
        let m = model();
        let g = GearId(1);
        let wall = m.dilate(5000, 0.5, g);
        let work = m.work_done(wall, 0.5, g);
        assert!((work - 5000.0).abs() < 1.0, "work = {work}");
        let back = m.wall_for_work(work, 0.5, g);
        assert!(back.abs_diff(wall) <= 1, "wall {wall} vs {back}");
    }

    #[test]
    fn wall_for_zero_work_is_zero() {
        let m = model();
        assert_eq!(m.wall_for_work(0.0, 0.5, GearId(0)), 0);
        assert_eq!(m.wall_for_work(-1.0, 0.5, GearId(0)), 0);
        assert_eq!(m.wall_for_work(0.1, 0.5, GearId(0)), 1);
    }
}
