//! Workload energy accounting.
//!
//! The paper reports two CPU-energy scenarios for every run:
//!
//! * **computational energy** (`E_idle=0`) — idle processors dissipate
//!   nothing; only job execution counts;
//! * **idle-aware energy** (`E_idle=low`) — idle processors draw the
//!   lowest-gear idle power for every idle processor-second of the
//!   workload's makespan.
//!
//! [`EnergyAccount`] accumulates job phases during (or after) a simulation
//! and produces an [`EnergyReport`] holding both scenarios.

use bsld_model::{GearId, JobOutcome};

use crate::model::PowerModel;

/// Accumulates active energy and busy processor-time for one run.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    active: f64,
    busy_cpu_secs: f64,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one executed phase: `cpus` processors for `secs` wall seconds at
    /// `gear`. Seconds are `f64` so sub-second phases (as the ledger steps
    /// them) don't silently truncate; whole-second callers lose nothing
    /// (`u64 → f64` is exact below 2⁵³).
    pub fn add_phase(&mut self, pm: &dyn PowerModel, cpus: u32, secs: f64, gear: GearId) {
        let cpu_secs = cpus as f64 * secs;
        self.active += cpu_secs * pm.p_active(gear);
        self.busy_cpu_secs += cpu_secs;
    }

    /// Adds every phase of a completed job.
    pub fn add_outcome(&mut self, pm: &dyn PowerModel, outcome: &JobOutcome) {
        for phase in &outcome.phases {
            self.add_phase(pm, outcome.cpus, phase.seconds as f64, phase.gear);
        }
    }

    /// Finalises the account for a machine of `total_cpus` whose simulated
    /// span (first arrival to last completion) was `makespan_secs`.
    pub fn finish(&self, pm: &dyn PowerModel, total_cpus: u32, makespan_secs: u64) -> EnergyReport {
        let capacity = total_cpus as f64 * makespan_secs as f64;
        // Guard against accounting drift: busy time can never exceed
        // capacity by more than rounding noise.
        let idle_cpu_secs = (capacity - self.busy_cpu_secs).max(0.0);
        let idle = idle_cpu_secs * pm.p_idle();
        EnergyReport {
            computational: self.active,
            with_idle: self.active + idle,
            busy_cpu_secs: self.busy_cpu_secs,
            idle_cpu_secs,
            makespan_secs,
            total_cpus,
        }
    }
}

/// Energy totals of one simulation run (normalised power units × seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// `E_idle=0`: energy of job execution only.
    pub computational: f64,
    /// `E_idle=low`: computational energy plus idle power.
    pub with_idle: f64,
    /// Processor-seconds spent running jobs.
    pub busy_cpu_secs: f64,
    /// Processor-seconds spent idle within the makespan.
    pub idle_cpu_secs: f64,
    /// The makespan used for the idle computation, seconds.
    pub makespan_secs: u64,
    /// Machine size used for the idle computation.
    pub total_cpus: u32,
}

impl EnergyReport {
    /// Machine utilisation: busy processor-time over capacity.
    pub fn utilization(&self) -> f64 {
        let cap = self.total_cpus as f64 * self.makespan_secs as f64;
        // audit:allow(N1): exact-zero guard against 0/0; cap is a product of integer casts
        if cap == 0.0 {
            0.0
        } else {
            self.busy_cpu_secs / cap
        }
    }

    /// This report's computational energy normalised by `baseline`'s.
    pub fn normalized_computational(&self, baseline: &EnergyReport) -> f64 {
        self.computational / baseline.computational
    }

    /// This report's idle-aware energy normalised by `baseline`'s.
    pub fn normalized_with_idle(&self, baseline: &EnergyReport) -> f64 {
        self.with_idle / baseline.with_idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_model::{JobId, Phase};
    use bsld_simkernel::Time;

    fn pm() -> crate::PaperDvfs {
        crate::PaperDvfs::paper(GearSet::paper())
    }

    #[test]
    fn single_phase_energy() {
        let pm = pm();
        let mut acc = EnergyAccount::new();
        acc.add_phase(&pm, 4, 100.0, GearId(5));
        let rep = acc.finish(&pm, 8, 100);
        let expected_active = 4.0 * 100.0 * pm.p_active(GearId(5));
        assert!((rep.computational - expected_active).abs() < 1e-9);
        // 8 cpus × 100 s capacity, 400 busy ⇒ 400 idle cpu·s.
        assert!((rep.idle_cpu_secs - 400.0).abs() < 1e-9);
        let expected_idle = 400.0 * pm.p_idle();
        assert!((rep.with_idle - (expected_active + expected_idle)).abs() < 1e-9);
        assert!((rep.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outcome_phases_accumulate() {
        let pm = pm();
        let outcome = JobOutcome {
            id: JobId(0),
            cpus: 2,
            arrival: Time(0),
            start: Time(0),
            finish: Time(300),
            gear: GearId(0),
            phases: vec![
                Phase {
                    gear: GearId(0),
                    seconds: 200,
                },
                Phase {
                    gear: GearId(5),
                    seconds: 100,
                },
            ],
            nominal_runtime: 250,
            requested: 250,
        };
        let mut acc = EnergyAccount::new();
        acc.add_outcome(&pm, &outcome);
        let rep = acc.finish(&pm, 2, 300);
        let expected = 2.0 * 200.0 * pm.p_active(GearId(0)) + 2.0 * 100.0 * pm.p_active(GearId(5));
        assert!((rep.computational - expected).abs() < 1e-9);
        assert!((rep.utilization() - 1.0).abs() < 1e-12);
        assert!((rep.idle_cpu_secs - 0.0).abs() < 1e-9);
    }

    #[test]
    fn reduced_gear_saves_computational_energy_for_same_work() {
        // One job, 1000 work-seconds on 4 cpus: lowest gear (dilated) must
        // cost less active energy than top gear.
        let pm = pm();
        let gs = GearSet::paper();
        let beta = crate::BetaModel::new(gs.clone());
        let mut at_top = EnergyAccount::new();
        at_top.add_phase(&pm, 4, 1000.0, gs.top());
        let mut at_low = EnergyAccount::new();
        at_low.add_phase(
            &pm,
            4,
            beta.dilate(1000, 0.5, gs.lowest()) as f64,
            gs.lowest(),
        );
        let span = 10_000;
        let top_rep = at_top.finish(&pm, 4, span);
        let low_rep = at_low.finish(&pm, 4, span);
        assert!(low_rep.computational < top_rep.computational);
        // Ratio ≈ 0.55 for the paper's parameters (the 45 % bound).
        let ratio = low_rep.normalized_computational(&top_rep);
        assert!((ratio - 0.55).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn with_idle_always_at_least_computational() {
        let pm = pm();
        let mut acc = EnergyAccount::new();
        acc.add_phase(&pm, 1, 50.0, GearId(2));
        let rep = acc.finish(&pm, 10, 100);
        assert!(rep.with_idle >= rep.computational);
    }

    #[test]
    fn empty_account() {
        let pm = pm();
        let rep = EnergyAccount::new().finish(&pm, 4, 0);
        assert_eq!(rep.computational, 0.0);
        assert_eq!(rep.with_idle, 0.0);
        assert_eq!(rep.utilization(), 0.0);
    }

    #[test]
    fn idle_time_clamps_at_zero_when_busy_exceeds_capacity() {
        // A caller passing a makespan shorter than the busy time (or a
        // machine size smaller than the allocation) must not produce
        // negative idle energy: the guard clamps idle processor-seconds
        // at zero and the idle-aware scenario degenerates to the
        // computational one.
        let pm = pm();
        let mut acc = EnergyAccount::new();
        acc.add_phase(&pm, 8, 100.0, GearId(5)); // 800 busy cpu·s
        let rep = acc.finish(&pm, 4, 100); // capacity only 400 cpu·s
        assert_eq!(rep.idle_cpu_secs, 0.0);
        assert!((rep.with_idle - rep.computational).abs() < 1e-12);
        assert!(
            rep.utilization() > 1.0,
            "overcommit shows up as >1 utilisation"
        );
    }

    #[test]
    fn scenarios_differ_by_exactly_the_idle_term() {
        let pm = pm();
        let mut acc = EnergyAccount::new();
        acc.add_phase(&pm, 3, 500.0, GearId(4));
        acc.add_phase(&pm, 2, 250.0, GearId(1));
        let rep = acc.finish(&pm, 8, 1000);
        let expected_idle_cpu_secs = 8.0 * 1000.0 - (3.0 * 500.0 + 2.0 * 250.0);
        assert!((rep.idle_cpu_secs - expected_idle_cpu_secs).abs() < 1e-9);
        let idle_term = rep.idle_cpu_secs * pm.p_idle();
        assert!((rep.with_idle - rep.computational - idle_term).abs() < 1e-9);
        // The computational scenario is independent of machine size and
        // makespan; the idle-aware one is not.
        let rep_wider = {
            let mut acc = EnergyAccount::new();
            acc.add_phase(&pm, 3, 500.0, GearId(4));
            acc.add_phase(&pm, 2, 250.0, GearId(1));
            acc.finish(&pm, 16, 2000)
        };
        assert!((rep_wider.computational - rep.computational).abs() < 1e-12);
        assert!(rep_wider.with_idle > rep.with_idle);
    }

    #[test]
    fn normalization_identities() {
        let pm = pm();
        let mut a = EnergyAccount::new();
        a.add_phase(&pm, 4, 100.0, GearId(5));
        let base = a.finish(&pm, 4, 200);
        let mut b = EnergyAccount::new();
        b.add_phase(&pm, 4, 100.0, GearId(0));
        let low = b.finish(&pm, 4, 200);
        assert!((base.normalized_computational(&base) - 1.0).abs() < 1e-12);
        assert!((base.normalized_with_idle(&base) - 1.0).abs() < 1e-12);
        assert!(low.normalized_computational(&base) < 1.0);
    }
}
