//! `bsld-repro` — regenerate every table and figure of Etinski et al. 2010.
//!
//! ```text
//! bsld-repro <experiment> [--jobs N] [--seed S] [--threads T] [--out DIR] [--no-csv]
//!
//! experiments:
//!   table1     workload characteristics & baseline avg BSLD
//!   table3     average wait times (orig / enlarged systems)
//!   fig3       normalized energy, original size (both idle scenarios)
//!   fig4       number of jobs run at reduced frequency
//!   fig5       average BSLD, original size
//!   fig6       SDSC-Blue wait-time series (orig vs DVFS 2/16)
//!   fig7       normalized energy of enlarged systems, WQ = 0
//!   fig8       normalized energy of enlarged systems, WQ = NO
//!   fig9       average BSLD of enlarged systems
//!   ablations  beyond-paper studies (boost / beta / fcfs / gears / selection)
//!   powercap   beyond-paper: power-cap levels x BSLD thresholds frontier
//!   all        everything above
//!   calibrate  baseline-vs-paper calibration summary (same as table1)
//!
//! tooling subcommands:
//!   run FILE.scn [--jobs N] [--seed S]   parse a scenario file (sweep axes
//!                                        included), expand and run every
//!                                        cell, print the result table
//!   campaign-worker FILE.scn --shard I/N --out DIR
//!                                        run one shard of a campaign,
//!                                        appending to a per-worker
//!                                        manifest in the shared DIR
//!   campaign-merge DIR                   validate and union the worker
//!                                        manifests of DIR, write the
//!                                        aggregated results + JSON report
//!   generate --workload W --swf FILE     export a calibrated synthetic
//!                                        workload as an SWF trace
//!   gen-swf --jobs N --seed S --swf FILE write a deterministic synthetic
//!                                        SWF trace of N jobs (scale
//!                                        testing; survives cleaning
//!                                        untouched)
//!   simulate [--workload W | --swf FILE] [--bsld-th X] [--wq N|no]
//!            [--conservative] [--boost N] [--export PREFIX]
//!                                        run one simulation, print the
//!                                        detailed report; --export writes
//!                                        PREFIX_{schedule,utilization,queue}.csv
//!   serve --socket PATH                  scheduling-as-a-service daemon:
//!                                        resident workloads + cached cells
//!                                        answering JSON queries on a Unix
//!                                        socket (see crates/serve)
//!   query <op> --socket PATH             one request to a running daemon
//!   trace-summary FILE                   validate a --trace-out Chrome
//!                                        trace and print per-cell event
//!                                        tallies (exit 1 on malformed
//!                                        input — the CI trace validator)
//! ```
//!
//! The grid experiments (`fig3`/`fig4`/`fig5`/`all`) additionally accept
//! `--trace-out PATH`: write the deterministic simulation trace of every
//! sweep cell as one Chrome-trace JSON file (Perfetto-loadable,
//! byte-identical across re-runs regardless of `--threads`).

use std::path::PathBuf;
use std::process::ExitCode;

use bsld_core::campaign::{run_campaign, CampaignOptions, JSON_FILE, RESULTS_FILE};
use bsld_core::distrib::{merge_campaign, run_worker, worker_manifest_file, Shard};
use bsld_core::experiments::{ablation, enlarged, fig6, grid, powercap, table1, ExpOptions};
use bsld_core::policy::WqThreshold;
use bsld_core::scenario::{PolicySpec, ProfileName, ScenarioSet, WorkloadSpec};
use bsld_core::{sweep_report, CellOutcome, Scenario};
use bsld_metrics::{Json, RunDetails};

/// Every experiment name the CLI accepts, shown by `--help` and by
/// unknown-experiment errors.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablations",
    "powercap",
    "all",
    "calibrate",
];

fn usage() -> String {
    format!(
        "usage: bsld-repro <{}|run|campaign-worker|campaign-merge|generate|gen-swf|simulate|audit|serve|query|trace-summary> [--jobs N] [--seed S] [--threads T] [--out DIR] [--no-csv]\n\
         \x20          (fig3/fig4/fig5/all also take --trace-out PATH: write the\n\
         \x20          deterministic per-cell Chrome trace of the grid sweep)\n\
         run:       run FILE.scn [--jobs N] [--seed S] [--threads T] [--out DIR] [--no-csv] [--resume DIR]\n\
         \x20          [--swf-in-memory]\n\
         \x20          (--swf-in-memory replays SWF workloads through the legacy\n\
         \x20          in-memory load path — the streaming path's A/B oracle)\n\
         \x20          (files with `replications = N`, `cell_budget_s`, or --resume run as a\n\
         \x20          campaign: per-cell mean ± 95% CI, incremental manifest, cached cells\n\
         \x20          skipped, campaign.json report)\n\
         campaign-worker: campaign-worker FILE.scn --shard I/N --out DIR [--jobs N] [--seed S] [--threads T]\n\
         \x20          (runs only the units content-hashed to shard I of N; re-running a\n\
         \x20          killed worker resumes its own manifest)\n\
         campaign-merge:  campaign-merge DIR\n\
         \x20          (validates shard coverage, unions worker manifests, writes\n\
         \x20          campaign_results.csv + campaign.json byte-identical to `run`)\n\
         generate:  --workload <ctc|sdsc|blue|thunder|atlas> --swf FILE\n\
         gen-swf:   --jobs N --seed S --swf FILE [--max-procs P]\n\
         \x20          (deterministic synthetic SWF writer for scale testing: N jobs on a\n\
         \x20          P-processor machine at ~0.7 offered load, cleaning-invariant)\n\
         simulate:  [--workload W | --swf FILE] [--bsld-th X] [--wq N|no] [--conservative] [--boost N] [--export PREFIX]\n\
         \x20          [--swf-in-memory]\n\
         audit:     audit [--json] [--root DIR]\n\
         \x20          (static determinism/numeric-safety audit of the workspace source;\n\
         \x20          exit 1 on violations — see crates/audit)\n\
         serve:     serve --socket PATH [--workers W] [--threads T] [--cache N] [--budget S]\n\
         \x20          (daemon: keeps parsed workloads and finished cells resident, answers\n\
         \x20          line-delimited JSON queries on the Unix socket until shutdown)\n\
         query:     query <run FILE.scn|status|metrics|cache [clear]|shutdown> --socket PATH\n\
         \x20          [--set key=value ...] [--budget S] [--swf PATH]\n\
         \x20          (one request to a running daemon; `run` prints the same table as the\n\
         \x20          one-shot run subcommand, --set tweaks single knobs: bsld_th, wq, cap,\n\
         \x20          model, jobs, seed, profile, enlarge_pct; `metrics` prints the\n\
         \x20          profiling plane: cache counters + per-op latency histograms;\n\
         \x20          `cache --swf PATH` pins a parsed+cleaned trace into the daemon's\n\
         \x20          workload cache)\n\
         trace-summary: trace-summary FILE\n\
         \x20          (validate a --trace-out Chrome trace file and print per-cell event\n\
         \x20          tallies; exits 1 on malformed input)",
        EXPERIMENTS.join("|")
    )
}

struct Args {
    experiment: String,
    opts: ExpOptions,
    /// `true` iff `--jobs`/`--seed`/an output flag was given explicitly
    /// (the `run` subcommand only overrides the scenario file then).
    jobs_set: bool,
    seed_set: bool,
    out_set: bool,
    /// Positional argument after the subcommand (the `.scn` path for `run`).
    positional: Option<String>,
    // tooling options
    workload: Option<String>,
    swf: Option<PathBuf>,
    bsld_th: Option<f64>,
    wq: Option<WqThreshold>,
    conservative: bool,
    boost: Option<usize>,
    /// Path prefix for `simulate`'s schedule/utilization/queue CSV exports.
    export: Option<String>,
    /// Campaign directory for `run --resume`: cached cells are skipped,
    /// fresh rows are appended to the manifest there.
    resume: Option<PathBuf>,
    /// `--shard I/N` for `campaign-worker`.
    shard: Option<String>,
    /// Unix-socket path for `serve` / `query`.
    socket: Option<PathBuf>,
    /// `serve --workers N`: concurrent connection handlers.
    workers: Option<usize>,
    /// `serve --cache N`: result-cache capacity in cells.
    cache: Option<usize>,
    /// `serve --budget S` (default per-request budget) or `query run
    /// --budget S` (this request's budget override).
    budget: Option<f64>,
    /// `query run --set key=value` overrides (repeatable).
    sets: Vec<String>,
    /// Second positional operand (`query run FILE.scn`, `query cache clear`).
    positional2: Option<String>,
    /// `gen-swf --max-procs P`: machine size of the synthetic trace.
    max_procs: Option<u32>,
    /// `--swf-in-memory`: replay SWF workloads via the legacy in-memory
    /// load path (the streaming path's A/B oracle).
    swf_in_memory: bool,
}

/// `Ok(true)`: `--help` was requested (print usage, exit 0).
fn parse_args() -> Result<(Args, bool), String> {
    let mut opts = ExpOptions::default();
    let mut experiment: Option<String> = None;
    let mut positional = None;
    let mut jobs_set = false;
    let mut seed_set = false;
    let mut out_set = false;
    let mut help = false;
    let mut workload = None;
    let mut swf = None;
    let mut bsld_th = None;
    let mut wq = None;
    let mut conservative = false;
    let mut boost = None;
    let mut export = None;
    let mut resume = None;
    let mut shard = None;
    let mut socket = None;
    let mut workers = None;
    let mut cache = None;
    let mut budget = None;
    let mut sets = Vec::new();
    let mut positional2 = None;
    let mut max_procs = None;
    let mut swf_in_memory = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                jobs_set = true;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                seed_set = true;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out_dir = Some(PathBuf::from(v));
                out_set = true;
            }
            "--no-csv" => {
                opts.out_dir = None;
                out_set = true;
            }
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?));
            }
            "--workload" => {
                workload = Some(it.next().ok_or("--workload needs a value")?);
            }
            "--swf" => {
                swf = Some(PathBuf::from(it.next().ok_or("--swf needs a value")?));
            }
            "--bsld-th" => {
                let v = it.next().ok_or("--bsld-th needs a value")?;
                bsld_th = Some(v.parse().map_err(|_| format!("bad --bsld-th value: {v}"))?);
            }
            "--wq" => {
                let v = it.next().ok_or("--wq needs a value")?;
                wq = Some(WqThreshold::parse(&v)?);
            }
            "--conservative" => conservative = true,
            "--boost" => {
                let v = it.next().ok_or("--boost needs a value")?;
                boost = Some(v.parse().map_err(|_| format!("bad --boost value: {v}"))?);
            }
            "--export" => {
                export = Some(it.next().ok_or("--export needs a path prefix")?);
            }
            "--resume" => {
                resume = Some(PathBuf::from(
                    it.next().ok_or("--resume needs a directory")?,
                ));
            }
            "--shard" => {
                shard = Some(it.next().ok_or("--shard needs a value (I/N)")?);
            }
            "--socket" => {
                socket = Some(PathBuf::from(it.next().ok_or("--socket needs a path")?));
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = Some(v.parse().map_err(|_| format!("bad --workers value: {v}"))?);
            }
            "--cache" => {
                let v = it.next().ok_or("--cache needs a value")?;
                cache = Some(v.parse().map_err(|_| format!("bad --cache value: {v}"))?);
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value (seconds)")?;
                budget = Some(v.parse().map_err(|_| format!("bad --budget value: {v}"))?);
            }
            "--max-procs" => {
                let v = it.next().ok_or("--max-procs needs a value")?;
                max_procs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-procs value: {v}"))?,
                );
            }
            "--swf-in-memory" => swf_in_memory = true,
            "--set" => {
                let v = it.next().ok_or("--set needs key=value")?;
                if !v.contains('=') {
                    return Err(format!("bad --set {v:?}: expected key=value"));
                }
                sets.push(v);
            }
            "--help" | "-h" => help = true,
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            // Only `run`, `campaign-worker` (the .scn path) and
            // `campaign-merge` (the directory) take a positional operand;
            // anywhere else a stray bare word is an error, not ignored.
            other
                if matches!(
                    experiment.as_deref(),
                    Some("run" | "campaign-worker" | "campaign-merge" | "query" | "trace-summary")
                ) && positional.is_none()
                    && !other.starts_with('-') =>
            {
                positional = Some(other.to_string());
            }
            // `query` takes a second operand: `query run FILE.scn`,
            // `query cache clear`.
            other
                if experiment.as_deref() == Some("query")
                    && positional2.is_none()
                    && !other.starts_with('-') =>
            {
                positional2 = Some(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}\n{}", usage())),
        }
    }
    if help {
        // A bare `--help` needs no experiment.
        return Ok((
            Args {
                experiment: String::new(),
                opts,
                jobs_set,
                seed_set,
                out_set,
                positional,
                workload,
                swf,
                bsld_th,
                wq,
                conservative,
                boost,
                export,
                resume,
                shard,
                socket,
                workers,
                cache,
                budget,
                sets,
                positional2,
                max_procs,
                swf_in_memory,
            },
            true,
        ));
    }
    let experiment = experiment.ok_or_else(usage)?;
    if opts.trace_out.is_some() && !matches!(experiment.as_str(), "fig3" | "fig4" | "fig5" | "all")
    {
        return Err(format!(
            "--trace-out only applies to the grid experiments (fig3, fig4, fig5, all)\n{}",
            usage()
        ));
    }
    if resume.is_some() && experiment != "run" {
        return Err(format!(
            "--resume only applies to the run subcommand\n{}",
            usage()
        ));
    }
    if shard.is_some() && experiment != "campaign-worker" {
        return Err(format!(
            "--shard only applies to the campaign-worker subcommand\n{}",
            usage()
        ));
    }
    if socket.is_some() && !matches!(experiment.as_str(), "serve" | "query") {
        return Err(format!(
            "--socket only applies to the serve and query subcommands\n{}",
            usage()
        ));
    }
    if (workers.is_some() || cache.is_some()) && experiment != "serve" {
        return Err(format!(
            "--workers/--cache only apply to the serve subcommand\n{}",
            usage()
        ));
    }
    if !sets.is_empty() && experiment != "query" {
        return Err(format!(
            "--set only applies to the query subcommand\n{}",
            usage()
        ));
    }
    if budget.is_some() && !matches!(experiment.as_str(), "serve" | "query") {
        return Err(format!(
            "--budget only applies to the serve and query subcommands\n{}",
            usage()
        ));
    }
    if max_procs.is_some() && experiment != "gen-swf" {
        return Err(format!(
            "--max-procs only applies to the gen-swf subcommand\n{}",
            usage()
        ));
    }
    if swf_in_memory && !matches!(experiment.as_str(), "run" | "simulate") {
        return Err(format!(
            "--swf-in-memory only applies to the run and simulate subcommands\n{}",
            usage()
        ));
    }
    Ok((
        Args {
            experiment,
            opts,
            jobs_set,
            seed_set,
            out_set,
            positional,
            workload,
            swf,
            bsld_th,
            wq,
            conservative,
            boost,
            export,
            resume,
            shard,
            socket,
            workers,
            cache,
            budget,
            sets,
            positional2,
            max_procs,
            swf_in_memory,
        },
        false,
    ))
}

/// Builds the scenario described by the tooling flags (`--workload` /
/// `--swf`, policy and engine options) — the single construction path both
/// `simulate` and `generate` go through.
fn scenario_from_args(args: &Args) -> Result<Scenario, String> {
    let mut sc = match (&args.swf, &args.workload) {
        (Some(path), _) => {
            let mut sc = Scenario::synthetic("cli", ProfileName::Ctc, 0, 0);
            sc.workload = WorkloadSpec::Swf {
                path: path.clone(),
                clean: true,
            };
            sc
        }
        (None, Some(name)) => Scenario::synthetic(
            "cli",
            ProfileName::parse(name)?,
            args.opts.jobs,
            args.opts.seed,
        ),
        (None, None) => return Err("simulate/generate need --workload or --swf".to_string()),
    };
    if args.conservative {
        sc.engine.mode = bsld_sched::SchedMode::Conservative;
    }
    sc.power.boost = args.boost;
    if let Some(th) = args.bsld_th {
        sc.policy = PolicySpec::BsldThreshold {
            th,
            wq: args.wq.unwrap_or(WqThreshold::NoLimit),
        };
    }
    Ok(sc)
}

fn run_generate(args: &Args) -> Result<(), String> {
    let name = args
        .workload
        .as_deref()
        .ok_or("generate needs --workload")?;
    let out = args.swf.clone().ok_or("generate needs --swf FILE")?;
    let profile = ProfileName::parse(name)?;
    let w = Scenario::synthetic("generate", profile, args.opts.jobs, args.opts.seed)
        .build_workload()
        .map_err(|e| e.to_string())?;
    let text = bsld_swf::write_swf(&w.to_swf());
    std::fs::write(&out, text).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!(
        "# wrote {} ({} jobs on {} cpus, offered load {:.2})",
        out.display(),
        w.jobs.len(),
        w.cpus,
        w.offered_load()
    );
    Ok(())
}

/// `gen-swf --jobs N --seed S --swf FILE [--max-procs P]`: write a
/// deterministic synthetic SWF trace straight to disk — the scale-testing
/// counterpart of `generate` (which routes through a calibrated profile
/// and holds the whole workload in memory).
fn run_gen_swf(args: &Args) -> Result<(), String> {
    let out = args.swf.clone().ok_or("gen-swf needs --swf FILE")?;
    let jobs = args.opts.jobs as u64;
    let max_procs = args.max_procs.unwrap_or(bsld_swf::GEN_SWF_DEFAULT_PROCS);
    if max_procs == 0 {
        return Err("--max-procs must be at least 1".to_string());
    }
    let file =
        std::fs::File::create(&out).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let mut w = std::io::BufWriter::new(file);
    bsld_swf::generate_swf(&mut w, jobs, args.opts.seed, max_procs)
        .and_then(|()| std::io::Write::flush(&mut w))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!(
        "# wrote {} ({jobs} jobs on {max_procs} cpus, seed {})",
        out.display(),
        args.opts.seed
    );
    Ok(())
}

fn run_simulate(args: &Args) -> Result<(), String> {
    let sc = scenario_from_args(args)?;
    let w = sc.build_workload().map_err(|e| e.to_string())?;
    let sim = sc.simulator(&w).map_err(|e| e.to_string())?;
    let label = match &sc.policy {
        PolicySpec::Baseline => "EASY baseline (no DVFS)".to_string(),
        PolicySpec::FixedGear(g) => format!("fixed gear {g}"),
        PolicySpec::BsldThreshold { th, wq } => format!("power-aware {th}/{}", wq.label()),
    };
    println!(
        "{}: {} jobs on {} cpus — {label}",
        w.cluster_name,
        w.jobs.len(),
        w.cpus
    );
    let res = sc
        .run_prepared(&sim, &w.jobs)
        .map_err(|e| e.to_string())?
        .run;
    let m = &res.metrics;
    println!(
        "avg BSLD {:.2} | avg wait {:.0} s | reduced {} | util {:.3} | makespan {:.1} d",
        m.avg_bsld,
        m.avg_wait_secs,
        m.reduced_jobs,
        m.utilization,
        m.makespan_secs as f64 / 86_400.0
    );
    println!(
        "energy: computational {:.3e}, with idle {:.3e} (normalised units)",
        m.energy.computational, m.energy.with_idle
    );
    let details = RunDetails::compute(&res.outcomes, &sim.power);
    println!("\n{}", details.render());

    if let Some(prefix) = &args.export {
        export_schedule(prefix, &res.outcomes).map_err(|e| format!("export failed: {e}"))?;
    }
    Ok(())
}

/// Writes `<prefix>_schedule.csv` (one row per job: the Gantt data),
/// `<prefix>_utilization.csv` and `<prefix>_queue.csv` (step series).
fn export_schedule(prefix: &str, outcomes: &[bsld_model::JobOutcome]) -> std::io::Result<()> {
    use bsld_metrics::series::{queue_depth_series, utilization_series};

    let mut by_id: Vec<&bsld_model::JobOutcome> = outcomes.iter().collect();
    by_id.sort_by_key(|o| o.id);
    let rows: Vec<Vec<String>> = by_id
        .iter()
        .map(|o| {
            vec![
                o.id.0.to_string(),
                o.cpus.to_string(),
                o.arrival.as_secs().to_string(),
                o.start.as_secs().to_string(),
                o.finish.as_secs().to_string(),
                o.gear.0.to_string(),
                format!("{:.3}", o.bsld(bsld_model::BSLD_SHORT_JOB_THRESHOLD_SECS)),
            ]
        })
        .collect();
    let path = format!("{prefix}_schedule.csv");
    let mut f = std::fs::File::create(&path)?;
    bsld_metrics::write_csv(
        &mut f,
        &[
            "job",
            "cpus",
            "arrival_s",
            "start_s",
            "finish_s",
            "gear",
            "bsld",
        ],
        &rows,
    )?;
    eprintln!("# wrote {path}");

    for (name, series) in [
        ("utilization", utilization_series(outcomes)),
        ("queue", queue_depth_series(outcomes)),
    ] {
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|&(t, v)| vec![t.to_string(), v.to_string()])
            .collect();
        let path = format!("{prefix}_{name}.csv");
        let mut f = std::fs::File::create(&path)?;
        bsld_metrics::write_csv(&mut f, &["time_s", name], &rows)?;
        eprintln!("# wrote {path}");
    }
    Ok(())
}

/// The `run FILE.scn` subcommand: parse, expand the sweep axes, run every
/// cell in parallel and print/write a results table.
fn run_scenario_file(args: &Args) -> Result<(), String> {
    // simulate/generate flags have no meaning here; accepting them would
    // let a user believe they overrode the file's configuration.
    for (flag, given) in [
        ("--workload", args.workload.is_some()),
        ("--swf", args.swf.is_some()),
        ("--bsld-th", args.bsld_th.is_some()),
        ("--wq", args.wq.is_some()),
        ("--conservative", args.conservative),
        ("--boost", args.boost.is_some()),
        ("--export", args.export.is_some()),
    ] {
        if given {
            return Err(format!(
                "{flag} does not apply to `run`: the scenario file defines the configuration"
            ));
        }
    }
    let path = args
        .positional
        .as_deref()
        .ok_or("run needs a scenario file: bsld-repro run FILE.scn")?;
    let mut set = load_scenario_file(path, args)?;
    if args.out_set {
        set.base.output.out_dir = args.opts.out_dir.clone();
    }
    // Replicated sweeps, budgeted sweeps and resumable runs go through the
    // campaign layer: per-cell mean ± 95% CI, content-hash cell IDs,
    // incremental manifest, failure rows.
    if set.replications > 1 || set.cell_budget_s.is_some() || args.resume.is_some() {
        return run_campaign_file(path, &set, args);
    }
    let cells = set.expand().map_err(|e| e.to_string())?;
    eprintln!("# {path}: {} scenario(s)", cells.len());
    let results = bsld_core::scenario::run_many(&cells, args.opts.threads);

    // The one sweep renderer, shared with the serve daemon: its output is
    // the byte-identity contract between `run` and `query run`.
    let rows: Vec<(String, Result<CellOutcome, String>)> = cells
        .iter()
        .zip(results)
        .map(|(sc, res)| {
            (
                sc.name.clone(),
                res.map(|r| CellOutcome::of(&r)).map_err(|e| e.to_string()),
            )
        })
        .collect();
    let report = sweep_report(&rows);
    println!("{}", report.table);
    if let Some(dir) = &set.base.output.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let out = dir.join("scenario_results.csv");
        std::fs::write(&out, &report.csv).map_err(|e| e.to_string())?;
        eprintln!("# wrote {}", out.display());
    }
    if let Some(msg) = report.failure_summary() {
        return Err(msg);
    }
    Ok(())
}

/// Parses a scenario file and applies the `--jobs`/`--seed` overrides —
/// the shared front door of `run` and `campaign-worker` (both must see the
/// same spec for their artifacts to be byte-identical).
fn load_scenario_file(path: &str, args: &Args) -> Result<ScenarioSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut set = ScenarioSet::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if args.jobs_set || args.seed_set {
        match &mut set.base.workload {
            WorkloadSpec::Synthetic { jobs, seed, .. } => {
                if args.jobs_set {
                    *jobs = args.opts.jobs;
                }
                if args.seed_set {
                    *seed = args.opts.seed;
                }
            }
            WorkloadSpec::Swf { path: swf, .. } => {
                eprintln!(
                    "# warning: --jobs/--seed do not apply to an SWF workload; \
                     replaying the full trace {}",
                    swf.display()
                );
            }
        }
    }
    Ok(set)
}

/// The campaign path of `run`: replications fan out across derived seeds,
/// each completed replication is flushed to the manifest immediately, and
/// `--resume DIR` skips cells whose rows are already on disk. A live
/// status line tracks unit completion.
fn run_campaign_file(path: &str, set: &ScenarioSet, args: &Args) -> Result<(), String> {
    // The manifest lives in the resume dir when given, else the out dir.
    // Without either the campaign runs in memory (no caching). An explicit
    // --out next to --resume would be silently shadowed — reject it
    // instead of letting the user believe artifacts land in two places
    // (--no-csv stays allowed: it asks for nothing).
    if args.resume.is_some() && args.out_set && args.opts.out_dir.is_some() {
        return Err(
            "--out does not combine with --resume: the campaign's manifest and results \
             live in the resume directory"
                .to_string(),
        );
    }
    let dir = args
        .resume
        .clone()
        .or_else(|| set.base.output.out_dir.clone());
    let opts = CampaignOptions {
        threads: args.opts.threads,
        dir: dir.clone(),
        resume: args.resume.is_some(),
    };
    let cells = set.expand().map_err(|e| e.to_string())?.len();
    eprintln!(
        "# {path}: campaign of {cells} cell(s) x {} replication(s){}",
        set.replications,
        match &dir {
            Some(d) => format!(", manifest in {}", d.display()),
            None => ", in memory (no --resume dir, no out_dir: nothing cached)".into(),
        }
    );
    // The status line: workers tick the shared Progress counter; each tick
    // redraws in place (\r) on stderr via StatusLine, the final newline
    // lands after the run.
    let line = bsld_par::StatusLine::new("campaign");
    let status = |done: usize, total: usize| line.update(done, total);
    let outcome = run_campaign(set, &opts, Some(&status)).map_err(|e| e.to_string())?;
    line.finish();
    if outcome.resumed > 0 {
        eprintln!(
            "# resumed: {} of {} run(s) already cached in the manifest",
            outcome.resumed, outcome.total_units
        );
    }
    if outcome.stale_rows > 0 {
        eprintln!(
            "# warning: {} manifest row(s) match no cell of this campaign (ignored)",
            outcome.stale_rows
        );
    }
    if outcome.excess_rows > 0 {
        eprintln!(
            "# note: {} manifest row(s) are replications beyond the current \
             `replications = {}` (ignored)",
            outcome.excess_rows, set.replications
        );
    }
    println!("{}", outcome.render_table());
    if let Some(d) = &dir {
        eprintln!("# wrote {}", d.join(RESULTS_FILE).display());
        eprintln!("# wrote {}", d.join(JSON_FILE).display());
    }
    if !outcome.failures.is_empty() {
        return Err(format!(
            "{} of {} run(s) failed (recorded as `failed` manifest rows; delete the rows \
             or the manifest to retry):\n  {}",
            outcome.failures.len(),
            outcome.total_units,
            outcome.failures.join("\n  ")
        ));
    }
    Ok(())
}

/// The `campaign-worker FILE.scn --shard I/N --out DIR` subcommand: run
/// one content-hash shard of the campaign, appending to this worker's own
/// manifest in the shared directory. Re-running after a crash resumes.
fn run_campaign_worker(args: &Args) -> Result<(), String> {
    let path = args.positional.as_deref().ok_or(
        "campaign-worker needs a scenario file: bsld-repro campaign-worker FILE.scn --shard I/N --out DIR",
    )?;
    let shard = Shard::parse(
        args.shard
            .as_deref()
            .ok_or("campaign-worker needs --shard I/N")?,
    )?;
    let dir = match (&args.opts.out_dir, args.out_set) {
        (Some(d), true) => d.clone(),
        _ => return Err("campaign-worker needs --out DIR (the shared campaign directory)".into()),
    };
    let set = load_scenario_file(path, args)?;
    eprintln!(
        "# {path}: shard {shard} into {} (manifest {})",
        dir.display(),
        worker_manifest_file(shard.index)
    );
    let line = bsld_par::StatusLine::new(format!("worker {}", shard.index));
    let status = |done: usize, total: usize| line.update(done, total);
    let outcome = run_worker(&set, shard, args.opts.threads, &dir, Some(&status))
        .map_err(|e| e.to_string())?;
    line.finish();
    if outcome.resumed > 0 {
        eprintln!(
            "# resumed: {} of {} shard run(s) already in this worker's manifest",
            outcome.resumed, outcome.shard_units
        );
    }
    eprintln!(
        "# shard {shard}: {} of {} campaign unit(s) done; merge with \
         `bsld-repro campaign-merge {}` once every shard has run",
        outcome.shard_units,
        outcome.total_units,
        dir.display()
    );
    if !outcome.failures.is_empty() {
        return Err(format!(
            "{} of {} shard run(s) failed (recorded as `failed` manifest rows; delete the \
             rows or the manifest to retry):\n  {}",
            outcome.failures.len(),
            outcome.shard_units,
            outcome.failures.join("\n  ")
        ));
    }
    Ok(())
}

/// The `campaign-merge DIR` subcommand: validate shard coverage, union the
/// per-worker manifests, and write aggregated artifacts byte-identical to
/// a single-process `run` of the pinned scenario file.
fn run_campaign_merge(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(
        args.positional
            .as_deref()
            .ok_or("campaign-merge needs a directory: bsld-repro campaign-merge DIR")?,
    );
    let merged = merge_campaign(&dir).map_err(|e| e.to_string())?;
    let outcome = &merged.outcome;
    eprintln!(
        "# merged {} worker manifest(s) (shards {}), {} unit(s)",
        merged.workers.len(),
        merged
            .workers
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(","),
        outcome.total_units
    );
    if merged.duplicate_rows > 0 {
        eprintln!(
            "# note: {} identical duplicate row(s) from overlapping shard re-runs (deduplicated)",
            merged.duplicate_rows
        );
    }
    if outcome.stale_rows > 0 {
        eprintln!(
            "# warning: {} manifest row(s) match no cell of this campaign (ignored)",
            outcome.stale_rows
        );
    }
    if outcome.excess_rows > 0 {
        eprintln!(
            "# note: {} manifest row(s) are replications beyond `replications = {}` (ignored)",
            outcome.excess_rows, merged.set.replications
        );
    }
    println!("{}", outcome.render_table());
    eprintln!("# wrote {}", dir.join(RESULTS_FILE).display());
    eprintln!("# wrote {}", dir.join(JSON_FILE).display());
    if !outcome.failures.is_empty() {
        return Err(format!(
            "{} of {} run(s) failed (recorded as `failed` manifest rows):\n  {}",
            outcome.failures.len(),
            outcome.total_units,
            outcome.failures.join("\n  ")
        ));
    }
    Ok(())
}

/// `serve --socket PATH`: stand up the scheduling-as-a-service daemon and
/// block until a client sends `{"op":"shutdown"}`.
fn run_serve(args: &Args) -> Result<(), String> {
    let socket = args
        .socket
        .clone()
        .ok_or("serve needs --socket PATH (the Unix socket to listen on)")?;
    let mut cfg = bsld_serve::ServeConfig::new(socket);
    if let Some(w) = args.workers {
        cfg.workers = w.max(1);
    }
    cfg.state.threads = args.opts.threads;
    if let Some(n) = args.cache {
        cfg.state.result_capacity = n;
    }
    cfg.state.default_budget_s = args.budget;
    eprintln!(
        "# serve: listening on {} (workers={}, threads={}, result cache={} cells{})",
        cfg.socket.display(),
        cfg.workers,
        cfg.state.threads,
        cfg.state.result_capacity,
        match cfg.state.default_budget_s {
            Some(b) => format!(", default budget={b}s"),
            None => String::new(),
        }
    );
    let server = bsld_serve::Server::bind(cfg).map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())?;
    eprintln!("# serve: drained and exited cleanly");
    Ok(())
}

/// Builds the daemon overrides from `--set key=value` pairs (numbers parse
/// as numbers, everything else ships as a string) plus `--budget`.
fn query_overrides(sets: &[String], budget: Option<f64>) -> Result<bsld_serve::Overrides, String> {
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    for kv in sets {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("bad --set {kv:?}: expected key=value"))?;
        let val = match v.parse::<f64>() {
            Ok(n) if n.is_finite() => Json::Num(n),
            _ => Json::str(v),
        };
        pairs.push((k, val));
    }
    let mut ov = bsld_serve::Overrides::from_json(&Json::Obj(
        pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    ))?;
    if let Some(b) = budget {
        if !b.is_finite() || b < 0.0 {
            return Err(format!("--budget must be finite and >= 0, got {b}"));
        }
        ov.budget_s = Some(b);
    }
    Ok(ov)
}

/// `query <op> --socket PATH`: one request to a running daemon. `run`
/// prints the daemon's table to stdout — byte-identical to the one-shot
/// `run` subcommand — and exits 1 on cell failures, exactly like it.
fn run_query(args: &Args) -> Result<(), String> {
    let socket = args
        .socket
        .clone()
        .ok_or("query needs --socket PATH (a running daemon's socket)")?;
    let op = args.positional.as_deref().ok_or(
        "query needs an operation: query <run FILE.scn|status|metrics|cache [clear]|shutdown> --socket PATH",
    )?;
    let mut client = bsld_serve::Client::connect(&socket)?;
    match op {
        "run" => {
            let file = args
                .positional2
                .as_deref()
                .ok_or("query run needs a scenario file: query run FILE.scn --socket PATH")?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read scenario file {file}: {e}"))?;
            let ov = query_overrides(&args.sets, args.budget)?;
            let reply = client.run(&text, &ov)?;
            if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                let msg = reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("daemon sent a malformed reply");
                return Err(format!("query failed: {msg}"));
            }
            let table = reply
                .get("table")
                .and_then(Json::as_str)
                .ok_or("daemon reply lacks a table")?;
            println!("{table}");
            if let Some(summary) = reply.get("failure_summary").and_then(Json::as_str) {
                return Err(summary.to_string());
            }
            Ok(())
        }
        "status" => {
            let reply = client.status()?;
            println!("{}", reply.render());
            Ok(())
        }
        "metrics" => {
            let reply = client.metrics()?;
            println!("{}", reply.render());
            Ok(())
        }
        "cache" => {
            let clear = match args.positional2.as_deref() {
                None => false,
                Some("clear") => true,
                Some(other) => {
                    return Err(format!(
                        "bad cache operand {other:?} (only `clear` is accepted)"
                    ))
                }
            };
            let reply = match &args.swf {
                Some(path) if clear => {
                    return Err(format!(
                        "cache takes either `clear` or --swf {}, not both",
                        path.display()
                    ))
                }
                Some(path) => {
                    let p = path
                        .to_str()
                        .ok_or("--swf path must be valid UTF-8 for the wire protocol")?;
                    client.cache_pin(p)?
                }
                None => client.cache(clear)?,
            };
            println!("{}", reply.render());
            Ok(())
        }
        "shutdown" => {
            let reply = client.shutdown()?;
            println!("{}", reply.render());
            Ok(())
        }
        other => Err(format!(
            "unknown query operation {other:?} (run FILE.scn | status | metrics | cache [clear] | shutdown)"
        )),
    }
}

/// Per-cell tallies accumulated while validating a Chrome trace.
#[derive(Default)]
struct TraceCellSummary {
    name: String,
    arrivals: u64,
    starts: u64,
    backfilled: u64,
    finishes: u64,
    passes: u64,
    elided: u64,
    cap_vetoes: u64,
    retries: u64,
    sleeps: u64,
    boosts: u64,
    boost_vetoes: u64,
    /// Latest simulated-microsecond timestamp seen.
    last_us: u64,
}

/// `trace-summary FILE`: parse a `--trace-out` Chrome trace, reject
/// anything malformed (not a JSON array, events missing `ph`/`pid`/`ts`,
/// unknown event names, unbalanced job slices) and print per-cell event
/// tallies. CI uses this as the trace validator: exit 1 means the trace
/// plane regressed.
fn run_trace_summary(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .as_deref()
        .ok_or("trace-summary needs a trace file: bsld-repro trace-summary FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let Json::Arr(events) = doc else {
        return Err(format!(
            "{path}: a Chrome trace is a JSON array of event objects"
        ));
    };
    let mut cells: Vec<TraceCellSummary> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let bad = |what: &str| format!("{path}: event {i} {what}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("lacks a string \"ph\" phase"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("lacks a numeric \"pid\""))?;
        // A hostile pid would balloon the per-cell table; real sweeps are
        // a few dozen cells.
        let pid = usize::try_from(pid)
            .ok()
            .filter(|&p| p < 100_000)
            .ok_or_else(|| bad("has an implausible \"pid\""))?;
        while cells.len() <= pid {
            cells.push(TraceCellSummary::default());
        }
        let cell = &mut cells[pid];
        if ph == "M" {
            cell.name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .ok_or_else(|| bad("metadata lacks args.name"))?
                .to_string();
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("lacks a numeric \"ts\""))?;
        cell.last_us = cell.last_us.max(ts);
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("lacks a string \"name\""))?;
        let arg_bool = |key: &str| {
            ev.get("args")
                .and_then(|a| a.get(key))
                .and_then(Json::as_bool)
        };
        match (ph, name) {
            ("B", _) => {
                cell.starts += 1;
                if arg_bool("backfilled") == Some(true) {
                    cell.backfilled += 1;
                }
            }
            ("E", _) => cell.finishes += 1,
            ("i", "arrive") => cell.arrivals += 1,
            ("i", "pass") => {
                if arg_bool("elided") == Some(true) {
                    cell.elided += 1;
                } else {
                    cell.passes += 1;
                }
            }
            ("i", "cap veto") => cell.cap_vetoes += 1,
            ("i", "power retry") => cell.retries += 1,
            ("i", "sleep") => cell.sleeps += 1,
            ("i", "boost") => cell.boosts += 1,
            ("i", "boost veto") => cell.boost_vetoes += 1,
            ("i", other) => return Err(bad(&format!("has an unknown instant name {other:?}"))),
            (other, _) => return Err(bad(&format!("has an unknown phase {other:?}"))),
        }
    }
    for (pid, c) in cells.iter().enumerate() {
        if c.finishes > c.starts {
            return Err(format!(
                "{path}: pid {pid}: {} slice end(s) but only {} begin(s) — unbalanced job slices",
                c.finishes, c.starts
            ));
        }
    }
    println!(
        "{path}: {} event(s) across {} cell(s)",
        events.len(),
        cells.len()
    );
    println!(
        "{:<32} {:>7} {:>7} {:>7} {:>6} {:>6} {:>5} {:>10}",
        "cell", "arrive", "start", "finish", "pass", "elided", "veto", "span_sim_s"
    );
    let mut bf = 0u64;
    let (mut retries, mut sleeps, mut boosts, mut bvetoes) = (0u64, 0u64, 0u64, 0u64);
    for (pid, c) in cells.iter().enumerate() {
        let label = if c.name.is_empty() {
            format!("pid {pid}")
        } else {
            c.name.clone()
        };
        println!(
            "{label:<32} {:>7} {:>7} {:>7} {:>6} {:>6} {:>5} {:>10}",
            c.arrivals,
            c.starts,
            c.finishes,
            c.passes,
            c.elided,
            c.cap_vetoes,
            c.last_us / 1_000_000,
        );
        bf += c.backfilled;
        retries += c.retries;
        sleeps += c.sleeps;
        boosts += c.boosts;
        bvetoes += c.boost_vetoes;
    }
    println!(
        "totals: {bf} backfilled start(s), {retries} power retry(s), {sleeps} sleep \
         transition(s), {boosts} boost(s) ({bvetoes} vetoed)"
    );
    Ok(())
}

fn main() -> ExitCode {
    // `audit` has its own flag set (--json, --root): hand it off before the
    // experiment argument parser can reject those flags.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("audit") {
        let code = bsld_audit::run_cli(&raw[1..]);
        return ExitCode::from(u8::try_from(code).unwrap_or(1));
    }
    let (args, help) = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.swf_in_memory {
        bsld_core::set_swf_in_memory(true);
        eprintln!("# swf: legacy in-memory load path forced (--swf-in-memory)");
    }
    let opts = &args.opts;
    eprintln!(
        "# bsld-repro: {} (jobs={}, seed={}, threads={})",
        args.experiment, opts.jobs, opts.seed, opts.threads
    );
    let t0 = std::time::Instant::now();
    match args.experiment.as_str() {
        "run" => {
            if let Err(e) = run_scenario_file(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "campaign-worker" => {
            if let Err(e) = run_campaign_worker(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "campaign-merge" => {
            if let Err(e) = run_campaign_merge(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "generate" => {
            if let Err(e) = run_generate(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "gen-swf" => {
            if let Err(e) = run_gen_swf(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "simulate" => {
            if let Err(e) = run_simulate(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "serve" => {
            if let Err(e) = run_serve(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "query" => {
            if let Err(e) = run_query(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "trace-summary" => {
            if let Err(e) = run_trace_summary(&args) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        "table1" | "calibrate" => {
            let t = table1::run(opts);
            println!("{}", t.render());
            report_csv(t.write_csv(opts).map(|p| p.into_iter().collect()));
        }
        "fig3" | "fig4" | "fig5" => {
            let g = grid::run(opts);
            match args.experiment.as_str() {
                "fig3" => {
                    println!("{}", g.render_fig3(false));
                    println!("{}", g.render_fig3(true));
                    println!("{}", g.render_summary());
                }
                "fig4" => println!("{}", g.render_fig4()),
                _ => println!("{}", g.render_fig5()),
            }
            report_csv(g.write_csv(opts));
        }
        "fig6" => {
            let f = fig6::run(opts);
            println!("{}", f.render());
            report_csv(f.write_csv(opts).map(|p| p.into_iter().collect()));
        }
        "table3" | "fig7" | "fig8" | "fig9" => {
            let s = enlarged::run(opts);
            match args.experiment.as_str() {
                "table3" => println!("{}", s.render_table3()),
                "fig7" => {
                    println!("{}", s.render_energy(WqThreshold::Limit(0), false));
                    println!("{}", s.render_energy(WqThreshold::Limit(0), true));
                }
                "fig8" => {
                    println!("{}", s.render_energy(WqThreshold::NoLimit, false));
                    println!("{}", s.render_energy(WqThreshold::NoLimit, true));
                }
                _ => {
                    println!("{}", s.render_bsld(WqThreshold::NoLimit));
                    println!("{}", s.render_bsld(WqThreshold::Limit(0)));
                }
            }
            report_csv(s.write_csv(opts));
        }
        "ablations" => {
            for a in [
                ablation::boost(opts),
                ablation::beta(opts),
                ablation::fcfs(opts),
                ablation::gears(opts),
                ablation::selection(opts),
                ablation::engine(opts),
            ] {
                println!("{}", a.render());
                report_csv(a.write_csv(opts).map(|p| p.into_iter().collect()));
            }
        }
        "powercap" => {
            let s = powercap::run(opts);
            println!("{}", s.render_frontier());
            println!("{}", s.render_cells());
            report_csv(s.write_csv(opts));
        }
        "all" => {
            let t = table1::run(opts);
            println!("{}", t.render());
            report_csv(t.write_csv(opts).map(|p| p.into_iter().collect()));

            let g = grid::run(opts);
            println!("{}", g.render_fig3(false));
            println!("{}", g.render_fig3(true));
            println!("{}", g.render_summary());
            println!("{}", g.render_fig4());
            println!("{}", g.render_fig5());
            report_csv(g.write_csv(opts));

            let f = fig6::run(opts);
            println!("{}", f.render());
            report_csv(f.write_csv(opts).map(|p| p.into_iter().collect()));

            let s = enlarged::run(opts);
            println!("{}", s.render_energy(WqThreshold::Limit(0), false));
            println!("{}", s.render_energy(WqThreshold::Limit(0), true));
            println!("{}", s.render_energy(WqThreshold::NoLimit, false));
            println!("{}", s.render_energy(WqThreshold::NoLimit, true));
            println!("{}", s.render_bsld(WqThreshold::NoLimit));
            println!("{}", s.render_bsld(WqThreshold::Limit(0)));
            println!("{}", s.render_table3());
            report_csv(s.write_csv(opts));

            for a in [
                ablation::boost(opts),
                ablation::beta(opts),
                ablation::fcfs(opts),
                ablation::gears(opts),
                ablation::selection(opts),
                ablation::engine(opts),
            ] {
                println!("{}", a.render());
                report_csv(a.write_csv(opts).map(|p| p.into_iter().collect()));
            }

            let pc = powercap::run(opts);
            println!("{}", pc.render_frontier());
            report_csv(pc.write_csv(opts));

            write_summary_json(opts, &t, &g);
        }
        other => {
            eprintln!(
                "unknown experiment: {other} (valid: {}, run, campaign-worker, campaign-merge, \
                 generate, gen-swf, simulate, serve, query, trace-summary)\n{}",
                EXPERIMENTS.join(", "),
                usage()
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("# done in {:.2?}", t0.elapsed());
    ExitCode::SUCCESS
}

/// Writes `summary.json`: the calibration rows and the headline savings,
/// for dashboards and regression tracking.
fn write_summary_json(opts: &ExpOptions, t: &table1::Table1, g: &grid::OriginalSizeGrid) {
    let Some(dir) = &opts.out_dir else {
        return;
    };
    let baselines = Json::Arr(
        t.rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("workload", Json::str(&r.workload)),
                    ("cpus", Json::from(r.cpus as u64)),
                    ("avg_bsld", Json::from(r.avg_bsld)),
                    ("paper_avg_bsld", Json::from(r.paper.avg_bsld)),
                    ("avg_wait_s", Json::from(r.avg_wait)),
                    ("paper_avg_wait_s", Json::from(r.paper.avg_wait)),
                    ("utilization", Json::from(r.utilization)),
                ])
            })
            .collect(),
    );
    let headline = Json::Arr(
        g.average_savings()
            .into_iter()
            .map(|(cfg, saving)| {
                Json::obj(vec![
                    ("bsld_threshold", Json::from(cfg.bsld_threshold)),
                    ("wq_threshold", Json::str(cfg.wq_threshold.label())),
                    ("mean_energy_saving", Json::from(saving)),
                ])
            })
            .collect(),
    );
    let doc = Json::obj(vec![
        ("paper", Json::str("Etinski et al., IPPS 2010")),
        ("seed", Json::from(opts.seed)),
        ("jobs", Json::from(opts.jobs)),
        ("baselines", baselines),
        ("headline_savings", headline),
    ]);
    let path = dir.join("summary.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# JSON write failed: {e}"),
    }
}

fn report_csv(res: std::io::Result<Vec<PathBuf>>) {
    match res {
        Ok(paths) => {
            for p in paths {
                eprintln!("# wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("# CSV write failed: {e}"),
    }
}
