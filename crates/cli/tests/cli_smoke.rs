//! End-to-end smoke tests of the `bsld-repro` binary: every experiment
//! name runs green at reduced scale, help exits 0, unknown names list the
//! valid ones, and the `run` subcommand executes a scenario file.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bsld-repro"))
}

fn run(args: &[&str]) -> Output {
    bin()
        .args(args)
        .output()
        .expect("bsld-repro binary must spawn")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn every_experiment_runs_at_reduced_scale() {
    for exp in [
        "table1",
        "table3",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "ablations",
        "powercap",
        "calibrate",
    ] {
        let out = run(&[exp, "--jobs", "50", "--no-csv"]);
        assert!(
            out.status.success(),
            "{exp} failed:\n{}\n{}",
            stdout(&out),
            stderr(&out)
        );
        assert!(!stdout(&out).is_empty(), "{exp} printed nothing to stdout");
    }
}

#[test]
fn help_exits_zero_and_shows_usage() {
    for flags in [&["--help"][..], &["-h"][..], &["table1", "--help"][..]] {
        let out = run(flags);
        assert!(out.status.success(), "{flags:?}: {}", stderr(&out));
        assert!(stdout(&out).contains("usage: bsld-repro"), "{flags:?}");
    }
}

#[test]
fn unknown_experiment_lists_valid_names() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown experiment: frobnicate"), "{err}");
    for name in ["table1", "fig6", "ablations", "powercap", "run"] {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
}

#[test]
fn stray_positional_argument_is_an_error_outside_run() {
    // `table3 100` (forgot --jobs) must error, not silently run defaults.
    let out = run(&["table3", "100"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown argument: 100"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_workload_lists_valid_names() {
    let out = run(&["simulate", "--workload", "marsrover", "--jobs", "10"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown workload: marsrover"), "{err}");
    for name in ["ctc", "sdsc", "blue", "thunder", "atlas"] {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
}

#[test]
fn simulate_runs_and_reports() {
    let out = run(&[
        "simulate",
        "--workload",
        "blue",
        "--jobs",
        "60",
        "--bsld-th",
        "2",
        "--wq",
        "no",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("SDSCBlue"), "{text}");
    assert!(text.contains("avg BSLD"), "{text}");
}

#[test]
fn run_subcommand_executes_scenario_file() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("sweep.scn");
    std::fs::write(
        &scn,
        "scenario = smoke\n\
         workload = synthetic\n\
         profile = blue\n\
         jobs = 500\n\
         seed = 7\n\
         scale_cpus = 64\n\
         policy = bsld:2/NO\n\
         sweep.bsld_th = 1.5 3\n",
    )
    .unwrap();
    let out = run(&[
        "run",
        scn.to_str().unwrap(),
        "--jobs",
        "80",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("smoke-th1.5"), "{text}");
    assert!(text.contains("smoke-th3"), "{text}");
    // The --jobs override applies to every expanded cell.
    assert!(text.contains("80"), "{text}");
    let csv = dir.join("scenario_results.csv");
    let body = std::fs::read_to_string(&csv).expect("results CSV written");
    assert_eq!(body.lines().count(), 3, "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_replications_resume_round_trip() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_campaign_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("campaign.scn");
    std::fs::write(
        &scn,
        "scenario = camp\n\
         workload = synthetic\n\
         profile = blue\n\
         jobs = 80\n\
         seed = 7\n\
         scale_cpus = 64\n\
         policy = bsld:2/NO\n\
         replications = 3\n\
         sweep.bsld_th = 1.5 3\n",
    )
    .unwrap();
    let out_dir = dir.join("out");
    let out = run(&[
        "run",
        scn.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let table = stdout(&out);
    // Per-cell mean ± 95% CI columns in the table...
    assert!(table.contains('±'), "CI columns expected: {table}");
    assert!(table.contains("camp-th1.5"), "{table}");
    // ...and in the CSV.
    let results = out_dir.join("campaign_results.csv");
    let body = std::fs::read_to_string(&results).expect("aggregated results written");
    assert!(body.starts_with("cell,scenario,reps,"), "{body}");
    assert!(body.contains("avg_bsld_mean,avg_bsld_ci95"), "{body}");
    assert_eq!(body.lines().count(), 3, "two cells + header: {body}");

    // Interrupt: drop the last two manifest rows, then resume.
    let manifest = out_dir.join("campaign_manifest.csv");
    let full = std::fs::read_to_string(&manifest).unwrap();
    assert_eq!(full.lines().count(), 7, "6 replications + header: {full}");
    let truncated: Vec<&str> = full.lines().take(5).collect();
    std::fs::write(&manifest, format!("{}\n", truncated.join("\n"))).unwrap();
    std::fs::remove_file(&results).unwrap();

    let resumed = run(&[
        "run",
        scn.to_str().unwrap(),
        "--resume",
        out_dir.to_str().unwrap(),
        "--no-csv",
    ]);
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    let err = stderr(&resumed);
    assert!(err.contains("resumed: 4 of 6"), "{err}");
    let resumed_body = std::fs::read_to_string(&results).expect("results rewritten on resume");
    assert_eq!(
        resumed_body, body,
        "resumed campaign must be byte-identical to the clean run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_worker_and_merge_reproduce_single_process_run() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_distrib_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("campaign.scn");
    std::fs::write(
        &scn,
        "scenario = dist\n\
         workload = synthetic\n\
         profile = blue\n\
         jobs = 60\n\
         seed = 7\n\
         scale_cpus = 64\n\
         policy = bsld:2/NO\n\
         replications = 2\n\
         sweep.bsld_th = 1.5 3\n",
    )
    .unwrap();
    let scn = scn.to_str().unwrap();

    // Single-process reference.
    let single = dir.join("single");
    let out = run(&["run", scn, "--out", single.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Two sequential worker shards into one shared directory.
    let shared = dir.join("shared");
    for i in 0..2 {
        let shard = format!("{i}/2");
        let out = run(&[
            "campaign-worker",
            scn,
            "--shard",
            &shard,
            "--out",
            shared.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "shard {shard}: {}", stderr(&out));
        assert!(
            shared
                .join(format!("campaign_manifest.worker-{i}.csv"))
                .exists(),
            "per-worker manifest written"
        );
    }
    let out = run(&["campaign-merge", shared.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains('±'), "merge prints the CI table");

    for file in ["campaign_results.csv", "campaign.json"] {
        let a = std::fs::read(single.join(file)).unwrap();
        let b = std::fs::read(shared.join(file)).unwrap();
        assert_eq!(a, b, "{file} byte-identical across the two paths");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_worker_flag_validation() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_wflags_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("c.scn");
    std::fs::write(
        &scn,
        "workload = synthetic\nprofile = ctc\njobs = 10\nseed = 1\nreplications = 2\n",
    )
    .unwrap();
    let scn = scn.to_str().unwrap();
    let out_dir = dir.join("out");
    let out_str = out_dir.to_str().unwrap();

    // Missing --shard / --out.
    let out = run(&["campaign-worker", scn, "--out", out_str]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--shard"), "{}", stderr(&out));
    let out = run(&["campaign-worker", scn, "--shard", "0/2"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--out"), "{}", stderr(&out));

    // Malformed and out-of-range shards.
    for bad in ["2", "2/2", "a/b"] {
        let out = run(&["campaign-worker", scn, "--shard", bad, "--out", out_str]);
        assert!(!out.status.success(), "shard {bad} must be rejected");
    }

    // --shard outside campaign-worker is an error.
    let out = run(&["run", scn, "--shard", "0/2", "--no-csv"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--shard only applies"),
        "{}",
        stderr(&out)
    );

    // Merging a directory that holds no campaign is an error.
    let out = run(&["campaign-merge", dir.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("campaign.scn"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budgeted_campaign_records_failed_rows_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_budget_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("b.scn");
    std::fs::write(
        &scn,
        "scenario = b\n\
         workload = synthetic\n\
         profile = blue\n\
         jobs = 200\n\
         seed = 7\n\
         scale_cpus = 64\n\
         replications = 2\n\
         cell_budget_s = 0\n",
    )
    .unwrap();
    let out_dir = dir.join("out");
    let out = run(&[
        "run",
        scn.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    // Failures are reported through the exit code...
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("exceeded cell_budget_s"),
        "{}",
        stderr(&out)
    );
    // ...but the sweep completed and the artifacts exist, failed rows
    // recorded in the manifest.
    let manifest = std::fs::read_to_string(out_dir.join("campaign_manifest.csv")).unwrap();
    assert_eq!(
        manifest.matches(",failed,").count(),
        2,
        "one failed row per unit: {manifest}"
    );
    assert!(out_dir.join("campaign_results.csv").exists());
    assert!(out_dir.join("campaign.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_flag_outside_run_is_an_error() {
    let out = run(&["table1", "--resume", "somewhere"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--resume only applies"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn out_flag_does_not_combine_with_resume() {
    // --out next to --resume would be silently shadowed by the resume
    // dir; the CLI rejects the combination instead.
    let dir = std::env::temp_dir().join(format!("bsld_cli_outres_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("c.scn");
    std::fs::write(
        &scn,
        "workload = synthetic\nprofile = ctc\njobs = 10\nseed = 1\nreplications = 2\n",
    )
    .unwrap();
    let out = run(&[
        "run",
        scn.to_str().unwrap(),
        "--out",
        dir.join("a").to_str().unwrap(),
        "--resume",
        dir.join("b").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--out does not combine with --resume"),
        "{}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_subcommand_rejects_bad_files() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_smoke_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn: PathBuf = dir.join("bad.scn");
    std::fs::write(&scn, "workload = synthetic\nprofile = ctc\nwat = 1\n").unwrap();
    let out = run(&["run", scn.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("parse error"), "{}", stderr(&out));
    let out = run(&["run", dir.join("missing.scn").to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_daemon_answers_query_byte_identical_to_run() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("serve.scn");
    std::fs::write(
        &scn,
        "scenario = served\n\
         workload = synthetic\n\
         profile = ctc\n\
         jobs = 120\n\
         seed = 9\n\
         policy = bsld:2/NO\n\
         sweep.bsld_th = 1.5 3\n",
    )
    .unwrap();
    let scn = scn.to_str().unwrap();
    let sock = dir.join("d.sock");
    let sock = sock.to_str().unwrap();

    // --socket is required, and query without a daemon fails helpfully.
    let out = run(&["serve"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--socket"), "{}", stderr(&out));
    let out = run(&["query", "--socket", sock, "status"]);
    assert!(!out.status.success());

    let mut daemon = bin()
        .args(["serve", "--socket", sock, "--workers", "2"])
        .spawn()
        .expect("daemon must spawn");
    // Wait for the socket to appear.
    for _ in 0..200 {
        if std::path::Path::new(sock).exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // The served reply's stdout is byte-identical to the one-shot run's.
    let direct = run(&["run", scn, "--no-csv"]);
    assert!(direct.status.success(), "{}", stderr(&direct));
    let served = run(&["query", "--socket", sock, "run", scn]);
    assert!(served.status.success(), "{}", stderr(&served));
    assert_eq!(stdout(&served), stdout(&direct), "served bytes must match");

    // An override changes the answer; status shows the warm cache at work.
    let what_if = run(&["query", "--socket", sock, "run", scn, "--set", "cap=0.8"]);
    assert!(what_if.status.success(), "{}", stderr(&what_if));
    assert!(
        stdout(&what_if).contains("served-cap0.8-th1.5"),
        "{}",
        stdout(&what_if)
    );
    let status = run(&["query", "--socket", sock, "status"]);
    assert!(status.status.success(), "{}", stderr(&status));
    assert!(
        stdout(&status).contains("\"workload_hits\":1"),
        "{}",
        stdout(&status)
    );

    // Graceful drain: shutdown op, daemon exits 0, socket unlinked.
    let out = run(&["query", "--socket", sock, "shutdown"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let code = daemon.wait().expect("daemon must exit");
    assert!(code.success(), "daemon exit: {code:?}");
    assert!(
        !std::path::Path::new(sock).exists(),
        "socket must be unlinked"
    );
    std::fs::remove_dir_all(&dir).ok();
}
