//! Synthetic workload generation.
//!
//! The paper evaluates on 5 000-job segments of five Parallel Workload
//! Archive traces (CTC SP2, SDSC SP2, SDSC Blue Horizon, LLNL Thunder,
//! LLNL Atlas). The archive traces are not redistributable with this
//! repository, so this crate generates **calibrated synthetic equivalents**:
//! statistical models of arrivals, job sizes, runtimes and user estimates
//! whose parameters are tuned per trace so that the *no-DVFS baseline*
//! reproduces Table 1's average BSLD and Table 3's average wait-time
//! regimes. Real SWF traces can be substituted at any time via
//! [`Workload::from_swf`].
//!
//! Structure:
//!
//! * [`dist`] — samplable distributions (exponential, log-normal, gamma,
//!   Weibull, log-uniform) built only on `rand`'s uniform source;
//! * [`arrivals`] — Poisson and day/night-modulated Poisson arrival
//!   processes;
//! * [`sizes`] — processor-count models (serial fraction, power-of-two
//!   bias, multiple-of constraints);
//! * [`runtimes`] — runtime mixtures (short-job spike + log-normal body);
//! * [`estimates`] — user requested-time models (exact users, round-value
//!   inflation, request-the-maximum users);
//! * [`profiles`] — the five calibrated [`profiles::TraceProfile`]s.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod arrivals;
pub mod dist;
pub mod estimates;
pub mod profiles;
pub mod runtimes;
pub mod sizes;

use bsld_model::Job;
use bsld_swf::{records_to_jobs, records_to_jobs_with_abort, SwfTrace, TraceAborted};
use std::sync::atomic::AtomicBool;

/// A named workload ready for simulation: a machine size and a list of
/// jobs sorted by arrival.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload/machine name (e.g. `"CTC"`).
    pub cluster_name: String,
    /// Number of processors of the original machine.
    pub cpus: u32,
    /// Jobs sorted by arrival time, ids dense in arrival order.
    pub jobs: Vec<Job>,
}

impl Workload {
    /// Builds a workload from a parsed SWF trace.
    ///
    /// Uses the header's `MaxProcs` as the machine size, falling back to
    /// the largest job.
    pub fn from_swf(name: impl Into<String>, trace: &SwfTrace) -> Workload {
        Self::assemble(name.into(), trace, records_to_jobs(&trace.records))
    }

    /// As [`Workload::from_swf`], polling `abort` every few thousand
    /// records during the job conversion walk. Million-line archive traces
    /// spend real time here; a raised budget flag must be able to stop the
    /// walk instead of waiting for the simulation to start.
    pub fn from_swf_with_abort(
        name: impl Into<String>,
        trace: &SwfTrace,
        abort: Option<&AtomicBool>,
    ) -> Result<Workload, TraceAborted> {
        let jobs = records_to_jobs_with_abort(&trace.records, abort)?;
        Ok(Self::assemble(name.into(), trace, jobs))
    }

    /// Shared tail of the SWF constructors: sorts by arrival, re-ids
    /// densely, and sizes the machine from the header (falling back to the
    /// largest job).
    fn assemble(name: String, trace: &SwfTrace, mut jobs: Vec<Job>) -> Workload {
        jobs.sort_by_key(|j| j.arrival);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = bsld_model::JobId(i as u32);
        }
        let cpus = trace
            .header
            .max_procs
            .unwrap_or_else(|| jobs.iter().map(|j| j.cpus).max().unwrap_or(1));
        Workload {
            cluster_name: name,
            cpus,
            jobs,
        }
    }

    /// Total work volume (processor-seconds at top frequency).
    pub fn total_area(&self) -> u64 {
        self.jobs.iter().map(|j| j.area()).sum()
    }

    /// Span between first and last arrival, seconds.
    pub fn arrival_span(&self) -> u64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(a), Some(b)) => b.arrival - a.arrival,
            _ => 0,
        }
    }

    /// Offered load: work volume over machine capacity for the arrival
    /// span. Values near (or above) 1 mean a saturated machine.
    pub fn offered_load(&self) -> f64 {
        let span = self.arrival_span();
        if span == 0 {
            return 0.0;
        }
        self.total_area() as f64 / (self.cpus as f64 * span as f64)
    }

    /// Exports the workload as an SWF trace (the inverse of
    /// [`Workload::from_swf`]), so synthetic workloads can be archived,
    /// shared, and replayed by other simulators.
    pub fn to_swf(&self) -> SwfTrace {
        let records = self
            .jobs
            .iter()
            .map(|j| {
                let mut r = bsld_swf::SwfRecord::simple(
                    j.id.0 as i64 + 1, // archive job numbers are 1-based
                    j.arrival.as_secs() as i64,
                    j.runtime as i64,
                    j.cpus as i64,
                    j.requested as i64,
                );
                r.status = 1;
                r
            })
            .collect();
        SwfTrace {
            header: bsld_swf::SwfHeader {
                max_procs: Some(self.cpus),
                max_runtime: self.jobs.iter().map(|j| j.requested).max(),
                max_jobs: Some(self.jobs.len() as u64),
                unix_start_time: Some(0),
                extra: vec![format!("Computer: synthetic {}", self.cluster_name)],
            },
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_swf::{SwfHeader, SwfRecord};

    #[test]
    fn from_swf_sorts_and_renumbers() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(16),
                ..Default::default()
            },
            records: vec![
                SwfRecord::simple(5, 100, 50, 2, 60),
                SwfRecord::simple(9, 0, 50, 4, 60),
            ],
        };
        let w = Workload::from_swf("test", &trace);
        assert_eq!(w.cpus, 16);
        assert_eq!(w.jobs.len(), 2);
        assert_eq!(w.jobs[0].id.0, 0);
        assert_eq!(w.jobs[0].arrival.as_secs(), 0);
        assert_eq!(w.jobs[0].cpus, 4);
        assert_eq!(w.jobs[1].arrival.as_secs(), 100);
    }

    #[test]
    fn offered_load_computation() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(10),
                ..Default::default()
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 5, 100),
                SwfRecord::simple(2, 100, 100, 5, 100),
            ],
        };
        let w = Workload::from_swf("test", &trace);
        assert_eq!(w.total_area(), 1000);
        assert_eq!(w.arrival_span(), 100);
        assert!((w.offered_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::from_swf("empty", &SwfTrace::default());
        assert_eq!(w.jobs.len(), 0);
        assert_eq!(w.offered_load(), 0.0);
        assert_eq!(w.cpus, 1);
    }

    #[test]
    fn swf_export_roundtrips() {
        let w = crate::profiles::TraceProfile::ctc().generate(5, 200);
        let trace = w.to_swf();
        assert_eq!(trace.header.max_procs, Some(w.cpus));
        assert_eq!(trace.records.len(), 200);
        let back = Workload::from_swf(&w.cluster_name, &trace);
        assert_eq!(back.cpus, w.cpus);
        assert_eq!(back.jobs.len(), w.jobs.len());
        for (a, b) in w.jobs.iter().zip(&back.jobs) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.cpus, b.cpus);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.requested, b.requested);
        }
        // And the text round-trip holds too.
        let text = bsld_swf::write_swf(&trace);
        let parsed = bsld_swf::parse_swf(&text).unwrap();
        assert_eq!(parsed, trace);
    }
}
