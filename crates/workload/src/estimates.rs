//! User runtime-estimate (requested time) models.
//!
//! Backfilling depends critically on how users over-estimate. Following the
//! archive literature (Mu'alem & Feitelson; Tsafrir's estimate studies):
//!
//! * a minority of users request exactly the runtime they use;
//! * a minority always request the site maximum;
//! * the rest inflate the runtime by a heavy-tailed factor and round the
//!   result *up* to a "human" value (multiples of 5 min / 15 min / 1 h).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dist::{LogNormal, Sample};

/// Parameters of the estimate model.
#[derive(Debug, Clone, Copy)]
pub struct EstimateModel {
    /// Probability the user's estimate is exact.
    pub p_exact: f64,
    /// Probability the user requests the site maximum.
    pub p_max: f64,
    /// Median of the multiplicative over-estimation factor (≥ 1).
    pub factor_median: f64,
    /// Log-space spread of the factor.
    pub factor_sigma: f64,
    /// Site runtime limit, seconds (upper clamp for every estimate).
    pub max: u64,
}

impl EstimateModel {
    /// Draws the requested time for a job of the given actual `runtime`.
    /// Always returns a value in `[runtime, max]` (or exactly `runtime`
    /// when `runtime > max`, which cleaning should have prevented).
    pub fn sample(&self, rng: &mut SmallRng, runtime: u64) -> u64 {
        if runtime >= self.max {
            return runtime;
        }
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < self.p_exact {
            return runtime;
        }
        if roll < self.p_exact + self.p_max {
            return self.max;
        }
        let factor = LogNormal::with_median(self.factor_median, self.factor_sigma)
            .sample(rng)
            .max(1.0);
        let raw = (runtime as f64 * factor).round() as u64;
        round_up_human(raw).clamp(runtime, self.max)
    }
}

/// Rounds a requested time up to a value a human would type: multiples of
/// 5 min below 1 h, of 15 min below 5 h, of 1 h above.
pub fn round_up_human(secs: u64) -> u64 {
    let unit = if secs <= 3_600 {
        300
    } else if secs <= 18_000 {
        900
    } else {
        3_600
    };
    secs.div_ceil(unit) * unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_simkernel::rng::stream_rng;

    fn model() -> EstimateModel {
        EstimateModel {
            p_exact: 0.15,
            p_max: 0.1,
            factor_median: 3.0,
            factor_sigma: 1.0,
            max: 64_800,
        }
    }

    #[test]
    fn round_up_human_steps() {
        assert_eq!(round_up_human(1), 300);
        assert_eq!(round_up_human(300), 300);
        assert_eq!(round_up_human(301), 600);
        assert_eq!(round_up_human(3_600), 3_600);
        assert_eq!(round_up_human(3_601), 4_500);
        assert_eq!(round_up_human(18_000), 18_000);
        assert_eq!(round_up_human(18_001), 21_600);
    }

    #[test]
    fn estimates_bound_runtime() {
        let m = model();
        let mut rng = stream_rng(1, 0);
        for runtime in [1u64, 59, 600, 3_600, 20_000, 64_799] {
            for _ in 0..2_000 {
                let req = m.sample(&mut rng, runtime);
                assert!(req >= runtime, "req {req} < runtime {runtime}");
                assert!(req <= 64_800);
            }
        }
    }

    #[test]
    fn exact_fraction() {
        let m = model();
        let mut rng = stream_rng(2, 0);
        let n = 50_000;
        // Use an off-grid runtime so rounding cannot produce an accidental
        // exact match.
        let exact = (0..n)
            .filter(|_| m.sample(&mut rng, 1_234) == 1_234)
            .count();
        let frac = exact as f64 / n as f64;
        assert!((frac - 0.15).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn max_requests_fraction() {
        let m = model();
        let mut rng = stream_rng(3, 0);
        let n = 50_000;
        let maxed = (0..n)
            .filter(|_| m.sample(&mut rng, 1_234) == 64_800)
            .count();
        let frac = maxed as f64 / n as f64;
        // p_max plus the lognormal tail that clamps to max.
        assert!(frac > 0.09 && frac < 0.25, "frac = {frac}");
    }

    #[test]
    fn runtime_at_limit_returns_runtime() {
        let m = model();
        let mut rng = stream_rng(4, 0);
        assert_eq!(m.sample(&mut rng, 64_800), 64_800);
        assert_eq!(m.sample(&mut rng, 70_000), 70_000);
    }

    #[test]
    fn typical_overestimation_is_heavy() {
        let m = model();
        let mut rng = stream_rng(5, 0);
        let n = 20_000;
        let mean_factor: f64 = (0..n)
            .map(|_| m.sample(&mut rng, 3_000) as f64 / 3_000.0)
            .sum::<f64>()
            / n as f64;
        // The archive's mean over-estimation is severalfold.
        assert!(mean_factor > 2.0, "mean factor = {mean_factor}");
    }
}
