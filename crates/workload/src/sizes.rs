//! Job size (processor count) models.
//!
//! Archive traces share three structural features the model captures:
//! a serial-job fraction, a strong bias toward powers of two, and
//! machine-specific constraints (SDSC Blue allocates in multiples of 8;
//! Thunder ran small-to-medium jobs; Atlas ran large ones).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dist::{LogUniform, Sample};

/// Parameters of the size model.
#[derive(Debug, Clone, Copy)]
pub struct SizeModel {
    /// Probability of a serial (1-processor) job.
    pub p_serial: f64,
    /// Probability that a parallel size snaps to the nearest power of two.
    pub p_pow2: f64,
    /// Smallest parallel size.
    pub min_parallel: u32,
    /// Largest size (usually the machine size or a queue limit).
    pub max: u32,
    /// Sizes are rounded up to a multiple of this (1 = no constraint;
    /// 8 for SDSC Blue).
    pub multiple_of: u32,
}

impl SizeModel {
    /// Draws one job size.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        debug_assert!(self.min_parallel >= 1 && self.max >= self.min_parallel);
        if self.p_serial > 0.0 && rng.gen_bool(self.p_serial.clamp(0.0, 1.0)) {
            return 1;
        }
        let raw = LogUniform {
            lo: self.min_parallel as f64,
            hi: self.max as f64,
        }
        .sample(rng);
        let mut size = raw.round().max(self.min_parallel as f64) as u32;
        if self.p_pow2 > 0.0 && rng.gen_bool(self.p_pow2.clamp(0.0, 1.0)) {
            size = nearest_pow2(size);
        }
        if self.multiple_of > 1 {
            size = size.div_ceil(self.multiple_of) * self.multiple_of;
        }
        size.clamp(self.min_parallel, self.max)
    }
}

/// The power of two nearest to `x` in log space (ties go down).
fn nearest_pow2(x: u32) -> u32 {
    if x <= 1 {
        return 1;
    }
    let lower = 1u32 << (31 - x.leading_zeros());
    let upper = lower.saturating_mul(2);
    // Geometric midpoint: lower·√2.
    if (x as f64) < lower as f64 * std::f64::consts::SQRT_2 {
        lower
    } else {
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_simkernel::rng::stream_rng;

    #[test]
    fn nearest_pow2_rounds_geometrically() {
        assert_eq!(nearest_pow2(1), 1);
        assert_eq!(nearest_pow2(3), 4); // 3 > 2·√2 ≈ 2.83
        assert_eq!(nearest_pow2(5), 4); // 5 < 4·√2 ≈ 5.66
        assert_eq!(nearest_pow2(6), 8);
        assert_eq!(nearest_pow2(48), 64); // 48 > 32·√2 ≈ 45.25
        assert_eq!(nearest_pow2(45), 32);
        assert_eq!(nearest_pow2(1024), 1024);
    }

    #[test]
    fn serial_fraction_respected() {
        let m = SizeModel {
            p_serial: 0.4,
            p_pow2: 0.6,
            min_parallel: 2,
            max: 128,
            multiple_of: 1,
        };
        let mut rng = stream_rng(1, 0);
        let n = 50_000;
        let serial = (0..n).filter(|_| m.sample(&mut rng) == 1).count();
        let frac = serial as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn sizes_within_bounds() {
        let m = SizeModel {
            p_serial: 0.1,
            p_pow2: 0.7,
            min_parallel: 2,
            max: 430,
            multiple_of: 1,
        };
        let mut rng = stream_rng(2, 0);
        for _ in 0..20_000 {
            let s = m.sample(&mut rng);
            assert!(s == 1 || (2..=430).contains(&s), "size {s}");
        }
    }

    #[test]
    fn multiple_of_constraint() {
        let m = SizeModel {
            p_serial: 0.0,
            p_pow2: 0.3,
            min_parallel: 8,
            max: 1152,
            multiple_of: 8,
        };
        let mut rng = stream_rng(3, 0);
        for _ in 0..20_000 {
            let s = m.sample(&mut rng);
            assert_eq!(s % 8, 0, "size {s} not a multiple of 8");
            assert!((8..=1152).contains(&s));
        }
    }

    #[test]
    fn pow2_bias_visible() {
        let m = SizeModel {
            p_serial: 0.0,
            p_pow2: 0.9,
            min_parallel: 2,
            max: 512,
            multiple_of: 1,
        };
        let mut rng = stream_rng(4, 0);
        let n = 50_000;
        let pow2 = (0..n)
            .filter(|_| {
                let s = m.sample(&mut rng);
                s.is_power_of_two()
            })
            .count();
        assert!(pow2 as f64 / n as f64 > 0.85);
    }

    #[test]
    fn deterministic() {
        let m = SizeModel {
            p_serial: 0.2,
            p_pow2: 0.5,
            min_parallel: 2,
            max: 64,
            multiple_of: 1,
        };
        let a: Vec<u32> = {
            let mut rng = stream_rng(5, 0);
            (0..32).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = stream_rng(5, 0);
            (0..32).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
