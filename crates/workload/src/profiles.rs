//! Calibrated trace profiles.
//!
//! One [`TraceProfile`] per workload of Table 1. Each combines a size,
//! runtime, estimate and arrival model; the free parameters were calibrated
//! against the *no-DVFS EASY baseline* so that the simulated average BSLD
//! and average wait land in the paper's reported regimes:
//!
//! | Workload     | CPUs  | Paper avg BSLD | Paper avg wait (s) |
//! |--------------|-------|----------------|--------------------|
//! | CTC          | 430   | 4.66           | 7 107              |
//! | SDSC         | 128   | 24.91          | 36 001             |
//! | SDSC-Blue    | 1 152 | 5.15           | 4 798              |
//! | LLNL-Thunder | 4 008 | 1.00           | 0                  |
//! | LLNL-Atlas   | 9 216 | 1.08           | 69                 |
//!
//! The qualitative features the paper calls out are modelled structurally:
//! SDSC is saturated; Thunder's jobs are mostly shorter than the 600 s BSLD
//! threshold; SDSC-Blue allocates multiples of 8 processors; Atlas runs
//! large parallel jobs.

use bsld_model::Job;
use bsld_simkernel::rng::{stream_rng, streams};
use bsld_simkernel::Time;
use rand::Rng;

use crate::arrivals::{ArrivalProcess, DailyCycle, Poisson};
use crate::estimates::EstimateModel;
use crate::runtimes::RuntimeModel;
use crate::sizes::SizeModel;
use crate::Workload;

/// Per-job β specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSpec {
    /// Every job uses the same β (the paper's setting, β = 0.5).
    Fixed(f64),
    /// β drawn uniformly from `mean ± spread`, clamped to `[0, 1]` — the
    /// paper's future-work scenario of heterogeneous job sensitivity.
    PerJob {
        /// Centre of the distribution.
        mean: f64,
        /// Half-width of the uniform spread.
        spread: f64,
    },
}

/// Day/night arrival modulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DailyPattern {
    /// Fraction of each day in the high-rate phase.
    pub day_fraction: f64,
    /// Day-to-night rate ratio (≥ 1).
    pub day_night_ratio: f64,
}

/// A complete generative model of one workload.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Workload name (matches the paper's tables).
    pub name: String,
    /// Machine size, processors.
    pub cpus: u32,
    /// Target offered load (work volume / capacity over the arrival span).
    pub target_load: f64,
    /// Size model.
    pub sizes: SizeModel,
    /// Runtime model.
    pub runtimes: RuntimeModel,
    /// Estimate model.
    pub estimates: EstimateModel,
    /// Arrival modulation (`None` = homogeneous Poisson).
    pub daily: Option<DailyPattern>,
    /// Per-job β.
    pub beta: BetaSpec,
}

impl TraceProfile {
    /// CTC SP2 (430 cpus): many large jobs, low degree of parallelism.
    pub fn ctc() -> TraceProfile {
        TraceProfile {
            name: "CTC".into(),
            cpus: 430,
            target_load: 0.71,
            sizes: SizeModel {
                p_serial: 0.35,
                p_pow2: 0.55,
                min_parallel: 2,
                max: 336,
                multiple_of: 1,
            },
            runtimes: RuntimeModel {
                p_short: 0.20,
                short_range: (10, 600),
                body_median: 6000,
                body_sigma: 1.5,
                min: 1,
                max: 64_800,
            },
            estimates: EstimateModel {
                p_exact: 0.10,
                p_max: 0.12,
                factor_median: 3.0,
                factor_sigma: 1.0,
                max: 64_800,
            },
            daily: Some(DailyPattern {
                day_fraction: 0.5,
                day_night_ratio: 1.5,
            }),
            beta: BetaSpec::Fixed(0.5),
        }
    }

    /// SDSC SP2 (128 cpus): the saturated machine — worst baseline BSLD.
    pub fn sdsc() -> TraceProfile {
        TraceProfile {
            name: "SDSC".into(),
            cpus: 128,
            target_load: 0.96,
            sizes: SizeModel {
                p_serial: 0.22,
                p_pow2: 0.60,
                min_parallel: 2,
                max: 64,
                multiple_of: 1,
            },
            runtimes: RuntimeModel {
                p_short: 0.30,
                short_range: (10, 600),
                body_median: 5200,
                body_sigma: 1.5,
                min: 1,
                max: 64_800,
            },
            estimates: EstimateModel {
                p_exact: 0.06,
                p_max: 0.18,
                factor_median: 4.0,
                factor_sigma: 1.1,
                max: 64_800,
            },
            daily: Some(DailyPattern {
                day_fraction: 0.5,
                day_night_ratio: 1.6,
            }),
            beta: BetaSpec::Fixed(0.5),
        }
    }

    /// SDSC Blue Horizon (1 152 cpus): no serial jobs, 8-cpu allocation
    /// quantum.
    pub fn sdsc_blue() -> TraceProfile {
        TraceProfile {
            name: "SDSCBlue".into(),
            cpus: 1_152,
            target_load: 0.54,
            sizes: SizeModel {
                p_serial: 0.0,
                p_pow2: 0.45,
                min_parallel: 8,
                max: 1_152,
                multiple_of: 8,
            },
            runtimes: RuntimeModel {
                p_short: 0.35,
                short_range: (10, 600),
                body_median: 3200,
                body_sigma: 1.4,
                min: 1,
                max: 64_800,
            },
            estimates: EstimateModel {
                p_exact: 0.08,
                p_max: 0.12,
                factor_median: 3.0,
                factor_sigma: 1.0,
                max: 64_800,
            },
            daily: Some(DailyPattern {
                day_fraction: 0.5,
                day_night_ratio: 1.6,
            }),
            beta: BetaSpec::Fixed(0.5),
        }
    }

    /// LLNL Thunder (4 008 cpus): large numbers of small-to-medium, mostly
    /// sub-10-minute jobs; essentially no queueing.
    pub fn llnl_thunder() -> TraceProfile {
        TraceProfile {
            name: "LLNLThunder".into(),
            cpus: 4_008,
            target_load: 0.66,
            sizes: SizeModel {
                p_serial: 0.12,
                p_pow2: 0.70,
                min_parallel: 2,
                max: 512,
                multiple_of: 1,
            },
            runtimes: RuntimeModel {
                p_short: 0.62,
                short_range: (5, 600),
                body_median: 1_500,
                body_sigma: 1.1,
                min: 1,
                max: 43_200,
            },
            estimates: EstimateModel {
                p_exact: 0.25,
                p_max: 0.10,
                factor_median: 2.0,
                factor_sigma: 0.8,
                max: 43_200,
            },
            daily: Some(DailyPattern {
                day_fraction: 0.5,
                day_night_ratio: 1.5,
            }),
            beta: BetaSpec::Fixed(0.5),
        }
    }

    /// LLNL Atlas (9 216 cpus): large parallel jobs, light queueing.
    pub fn llnl_atlas() -> TraceProfile {
        TraceProfile {
            name: "LLNLAtlas".into(),
            cpus: 9_216,
            target_load: 0.48,
            sizes: SizeModel {
                p_serial: 0.05,
                p_pow2: 0.80,
                min_parallel: 64,
                max: 4_096,
                multiple_of: 1,
            },
            runtimes: RuntimeModel {
                p_short: 0.30,
                short_range: (10, 600),
                body_median: 2_600,
                body_sigma: 1.2,
                min: 1,
                max: 86_400,
            },
            estimates: EstimateModel {
                p_exact: 0.20,
                p_max: 0.10,
                factor_median: 2.5,
                factor_sigma: 0.9,
                max: 86_400,
            },
            daily: Some(DailyPattern {
                day_fraction: 0.5,
                day_night_ratio: 1.5,
            }),
            beta: BetaSpec::Fixed(0.5),
        }
    }

    /// The paper's five workloads in table order.
    pub fn paper_five() -> Vec<TraceProfile> {
        vec![
            TraceProfile::ctc(),
            TraceProfile::sdsc(),
            TraceProfile::sdsc_blue(),
            TraceProfile::llnl_thunder(),
            TraceProfile::llnl_atlas(),
        ]
    }

    /// The profile rescaled to a machine of `cpus` processors: job sizes
    /// are scaled proportionally (respecting the allocation quantum) and
    /// the offered load target is preserved. Useful for fast tests and
    /// examples on small machines.
    pub fn scaled_cpus(mut self, cpus: u32) -> TraceProfile {
        assert!(cpus >= 1);
        let f = cpus as f64 / self.cpus as f64;
        self.cpus = cpus;
        let quantum = self.sizes.multiple_of.max(1);
        let scale = |v: u32| ((v as f64 * f).round() as u32).max(1);
        self.sizes.max = scale(self.sizes.max).clamp(1, cpus);
        self.sizes.min_parallel = scale(self.sizes.min_parallel).clamp(1, self.sizes.max);
        if quantum > 1 {
            self.sizes.min_parallel = self.sizes.min_parallel.max(quantum);
            self.sizes.max = self.sizes.max.max(self.sizes.min_parallel);
        }
        self
    }

    /// Overrides β (builder style).
    pub fn with_beta(mut self, beta: BetaSpec) -> TraceProfile {
        self.beta = beta;
        self
    }

    /// Generates `n` jobs deterministically from `seed`.
    ///
    /// Sizes, runtimes, estimates, arrivals and β draw from independent RNG
    /// streams, so altering one model leaves the other draws untouched.
    /// The arrival rate is derived from the sampled work volume so that the
    /// realised *offered load* matches `target_load` by construction.
    pub fn generate(&self, seed: u64, n: usize) -> Workload {
        let mut size_rng = stream_rng(seed, streams::SIZES);
        let mut run_rng = stream_rng(seed, streams::RUNTIMES);
        let mut est_rng = stream_rng(seed, streams::ESTIMATES);
        let mut arr_rng = stream_rng(seed, streams::ARRIVALS);
        let mut beta_rng = stream_rng(seed, streams::BETA);

        let sizes: Vec<u32> = (0..n).map(|_| self.sizes.sample(&mut size_rng)).collect();
        let runtimes: Vec<u64> = (0..n).map(|_| self.runtimes.sample(&mut run_rng)).collect();
        let requests: Vec<u64> = runtimes
            .iter()
            .map(|&r| self.estimates.sample(&mut est_rng, r))
            .collect();

        let area: f64 = sizes
            .iter()
            .zip(&runtimes)
            .map(|(&s, &r)| s as f64 * r as f64)
            .sum();
        let span = area / (self.cpus as f64 * self.target_load);
        let avg_rate = if span > 0.0 { n as f64 / span } else { 1.0 };
        let arrivals = match self.daily {
            Some(d) => DailyCycle {
                avg_rate,
                period: 86_400,
                day_fraction: d.day_fraction,
                day_night_ratio: d.day_night_ratio,
            }
            .generate(&mut arr_rng, n),
            None => Poisson { rate: avg_rate }.generate(&mut arr_rng, n),
        };

        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let beta = match self.beta {
                    BetaSpec::Fixed(b) => b,
                    BetaSpec::PerJob { mean, spread } => {
                        let lo = (mean - spread).max(0.0);
                        let hi = (mean + spread).min(1.0);
                        if hi > lo {
                            beta_rng.gen_range(lo..=hi)
                        } else {
                            lo
                        }
                    }
                };
                Job::new(
                    i as u32,
                    Time(arrivals[i]),
                    sizes[i],
                    runtimes[i],
                    requests[i],
                )
                .with_beta(beta)
            })
            .collect();

        Workload {
            cluster_name: self.name.clone(),
            cpus: self.cpus,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_match_table1_sizes() {
        let five = TraceProfile::paper_five();
        let names: Vec<&str> = five.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["CTC", "SDSC", "SDSCBlue", "LLNLThunder", "LLNLAtlas"]
        );
        let cpus: Vec<u32> = five.iter().map(|p| p.cpus).collect();
        assert_eq!(cpus, [430, 128, 1_152, 4_008, 9_216]);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = TraceProfile::ctc();
        let a = p.generate(42, 200);
        let b = p.generate(42, 200);
        assert_eq!(a.jobs, b.jobs);
        let c = p.generate(43, 200);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn generated_load_matches_target() {
        let p = TraceProfile::sdsc_blue();
        let w = p.generate(7, 2_000);
        let load = w.offered_load();
        assert!(
            (load / p.target_load - 1.0).abs() < 0.1,
            "load {load} vs target {}",
            p.target_load
        );
    }

    #[test]
    fn jobs_sorted_with_dense_ids() {
        let w = TraceProfile::sdsc().generate(1, 500);
        for (i, j) in w.jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i);
            if i > 0 {
                assert!(j.arrival >= w.jobs[i - 1].arrival);
            }
        }
    }

    #[test]
    fn sizes_respect_machine() {
        for p in TraceProfile::paper_five() {
            let w = p.generate(3, 1_000);
            for j in &w.jobs {
                assert!(
                    j.cpus <= p.cpus,
                    "{}: job size {} > {}",
                    p.name,
                    j.cpus,
                    p.cpus
                );
                assert!(j.requested >= j.runtime);
            }
        }
    }

    #[test]
    fn blue_uses_multiples_of_8() {
        let w = TraceProfile::sdsc_blue().generate(9, 500);
        for j in &w.jobs {
            assert_eq!(j.cpus % 8, 0, "Blue job of {} cpus", j.cpus);
        }
    }

    #[test]
    fn thunder_is_mostly_short() {
        let w = TraceProfile::llnl_thunder().generate(11, 2_000);
        let short = w.jobs.iter().filter(|j| j.runtime < 600).count();
        assert!(
            short as f64 / w.jobs.len() as f64 > 0.5,
            "Thunder must be majority sub-600 s"
        );
    }

    #[test]
    fn scaled_profile_shrinks_sizes() {
        let p = TraceProfile::sdsc_blue().scaled_cpus(64);
        assert_eq!(p.cpus, 64);
        let w = p.generate(5, 300);
        for j in &w.jobs {
            assert!(j.cpus <= 64);
            assert_eq!(j.cpus % 8, 0);
        }
        // Load target still holds approximately.
        let load = w.offered_load();
        assert!((load / p.target_load - 1.0).abs() < 0.25, "load = {load}");
    }

    #[test]
    fn per_job_beta_varies() {
        let p = TraceProfile::ctc().with_beta(BetaSpec::PerJob {
            mean: 0.5,
            spread: 0.3,
        });
        let w = p.generate(13, 300);
        let betas: Vec<f64> = w.jobs.iter().map(|j| j.beta).collect();
        assert!(betas.iter().any(|&b| b < 0.4));
        assert!(betas.iter().any(|&b| b > 0.6));
        assert!(betas.iter().all(|&b| (0.0..=1.0).contains(&b)));
    }
}
