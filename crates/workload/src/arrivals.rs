//! Job arrival processes.
//!
//! Supercomputer submission streams show a strong daily cycle; the
//! burstiness matters for the paper's results because queue depth drives
//! both the `WQ_threshold` gate and the wait-time feedback. The generator
//! supports a plain Poisson process and a day/night-modulated Poisson
//! process with a piecewise-constant rate.

use rand::rngs::SmallRng;

use crate::dist::{Exp, Sample};

/// An arrival process generating non-decreasing submission times.
pub trait ArrivalProcess {
    /// Generates `n` arrival times (seconds, non-decreasing, starting near
    /// 0).
    fn generate(&self, rng: &mut SmallRng, n: usize) -> Vec<u64>;
}

/// Homogeneous Poisson arrivals.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    /// Jobs per second.
    pub rate: f64,
}

impl ArrivalProcess for Poisson {
    fn generate(&self, rng: &mut SmallRng, n: usize) -> Vec<u64> {
        assert!(self.rate > 0.0, "arrival rate must be positive");
        let exp = Exp { rate: self.rate };
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t += exp.sample(rng);
            out.push(t as u64);
        }
        out
    }
}

/// Day/night-modulated Poisson arrivals.
///
/// The day consists of a "day" phase of `day_fraction · period` seconds at
/// rate `day_night_ratio ×` the night rate, normalised so the *average*
/// rate equals `avg_rate`. Sampling inverts the piecewise-linear integrated
/// rate exactly, so the process is a genuine non-homogeneous Poisson
/// process.
#[derive(Debug, Clone, Copy)]
pub struct DailyCycle {
    /// Average jobs per second over a full period.
    pub avg_rate: f64,
    /// Cycle length, seconds (86 400 for a day).
    pub period: u64,
    /// Fraction of the period in the high-rate phase, in (0, 1).
    pub day_fraction: f64,
    /// Ratio of day rate to night rate (≥ 1).
    pub day_night_ratio: f64,
}

impl DailyCycle {
    /// The (day, night) rates implied by the parameters.
    pub fn rates(&self) -> (f64, f64) {
        // avg = fd·rd + (1-fd)·rn with rd = ratio·rn
        let fd = self.day_fraction;
        let rn = self.avg_rate / (fd * self.day_night_ratio + (1.0 - fd));
        (self.day_night_ratio * rn, rn)
    }

    /// Instantaneous rate at absolute time `t` (seconds).
    pub fn rate_at(&self, t: f64) -> f64 {
        let (rd, rn) = self.rates();
        let phase = t.rem_euclid(self.period as f64);
        if phase < self.day_fraction * self.period as f64 {
            rd
        } else {
            rn
        }
    }

    /// Advances from absolute time `t` until `target` units of integrated
    /// rate have elapsed; returns the new absolute time.
    fn advance(&self, mut t: f64, mut target: f64) -> f64 {
        let (rd, rn) = self.rates();
        let p = self.period as f64;
        let day_end = self.day_fraction * p;
        loop {
            let phase = t.rem_euclid(p);
            let (rate, boundary) = if phase < day_end {
                (rd, day_end)
            } else {
                (rn, p)
            };
            let span = boundary - phase;
            let capacity = rate * span;
            if target <= capacity {
                return t + target / rate;
            }
            target -= capacity;
            t += span;
        }
    }
}

impl ArrivalProcess for DailyCycle {
    fn generate(&self, rng: &mut SmallRng, n: usize) -> Vec<u64> {
        assert!(self.avg_rate > 0.0, "arrival rate must be positive");
        assert!(
            self.day_fraction > 0.0 && self.day_fraction < 1.0,
            "day fraction must be in (0,1)"
        );
        assert!(
            self.day_night_ratio >= 1.0,
            "day rate must be >= night rate"
        );
        let unit = Exp { rate: 1.0 };
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let target = unit.sample(rng);
            t = self.advance(t, target);
            out.push(t as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_simkernel::rng::stream_rng;

    #[test]
    fn poisson_mean_rate() {
        let p = Poisson { rate: 0.01 }; // one job per 100 s
        let mut rng = stream_rng(1, 0);
        let n = 50_000;
        let times = p.generate(&mut rng, n);
        assert_eq!(times.len(), n);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span = *times.last().unwrap() as f64;
        let rate = n as f64 / span;
        assert!((rate / 0.01 - 1.0).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn daily_cycle_rates() {
        let d = DailyCycle {
            avg_rate: 0.01,
            period: 86_400,
            day_fraction: 0.5,
            day_night_ratio: 3.0,
        };
        let (rd, rn) = d.rates();
        assert!((rd / rn - 3.0).abs() < 1e-12);
        assert!(((0.5 * rd + 0.5 * rn) - 0.01).abs() < 1e-12);
        assert_eq!(d.rate_at(0.0), rd);
        assert_eq!(d.rate_at(43_200.5), rn);
        assert_eq!(d.rate_at(86_400.0 + 10.0), rd);
    }

    #[test]
    fn daily_cycle_average_rate_holds() {
        let d = DailyCycle {
            avg_rate: 0.02,
            period: 86_400,
            day_fraction: 0.4,
            day_night_ratio: 4.0,
        };
        let mut rng = stream_rng(2, 0);
        let n = 60_000;
        let times = d.generate(&mut rng, n);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let span = *times.last().unwrap() as f64;
        let rate = n as f64 / span;
        assert!((rate / 0.02 - 1.0).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn daily_cycle_is_actually_bursty() {
        // Count arrivals in day vs night phases; the ratio should approach
        // day_night_ratio.
        let d = DailyCycle {
            avg_rate: 0.05,
            period: 86_400,
            day_fraction: 0.5,
            day_night_ratio: 3.0,
        };
        let mut rng = stream_rng(3, 0);
        let times = d.generate(&mut rng, 100_000);
        let day = times.iter().filter(|&&t| t % 86_400 < 43_200).count();
        let night = times.len() - day;
        let ratio = day as f64 / night as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn advance_crosses_many_periods() {
        let d = DailyCycle {
            avg_rate: 1e-6, // one job per ~11.6 days
            period: 86_400,
            day_fraction: 0.5,
            day_night_ratio: 2.0,
        };
        let mut rng = stream_rng(4, 0);
        let times = d.generate(&mut rng, 10);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            *times.last().unwrap() > 86_400,
            "must span multiple periods"
        );
    }
}
