//! Job runtime models.
//!
//! Runtimes are modelled as a two-component mixture: a *short-job* spike
//! (log-uniform between a few seconds and ten minutes — setup jobs, crashed
//! runs, test submissions) and a log-normal *body* for production runs.
//! Both components are clamped to `[min, max]` where `max` is the site's
//! runtime limit.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dist::{LogNormal, LogUniform, Sample};

/// Parameters of the runtime mixture.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeModel {
    /// Probability of a short job.
    pub p_short: f64,
    /// Short component bounds, seconds (log-uniform).
    pub short_range: (u64, u64),
    /// Median of the log-normal body, seconds.
    pub body_median: u64,
    /// Sigma of the log-normal body (log-space spread).
    pub body_sigma: f64,
    /// Global bounds, seconds.
    pub min: u64,
    /// Site runtime limit, seconds.
    pub max: u64,
}

impl RuntimeModel {
    /// Draws one runtime in seconds.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        debug_assert!(self.min >= 1 && self.max >= self.min);
        let x = if self.p_short > 0.0 && rng.gen_bool(self.p_short.clamp(0.0, 1.0)) {
            LogUniform {
                lo: self.short_range.0 as f64,
                hi: self.short_range.1 as f64,
            }
            .sample(rng)
        } else {
            LogNormal::with_median(self.body_median as f64, self.body_sigma).sample(rng)
        };
        (x.round() as u64).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_simkernel::rng::stream_rng;

    fn model() -> RuntimeModel {
        RuntimeModel {
            p_short: 0.3,
            short_range: (10, 600),
            body_median: 8000,
            body_sigma: 1.2,
            min: 1,
            max: 64_800,
        }
    }

    #[test]
    fn runtimes_within_bounds() {
        let m = model();
        let mut rng = stream_rng(1, 0);
        for _ in 0..20_000 {
            let r = m.sample(&mut rng);
            assert!((1..=64_800).contains(&r));
        }
    }

    #[test]
    fn short_fraction_approximate() {
        let m = model();
        let mut rng = stream_rng(2, 0);
        let n = 50_000;
        let short = (0..n).filter(|_| m.sample(&mut rng) < 600).count();
        let frac = short as f64 / n as f64;
        // 30 % from the spike plus the body's own sub-600 s tail.
        assert!(frac > 0.28 && frac < 0.45, "frac = {frac}");
    }

    #[test]
    fn body_median_approximate() {
        let m = RuntimeModel {
            p_short: 0.0,
            ..model()
        };
        let mut rng = stream_rng(3, 0);
        let n = 50_001;
        let mut xs: Vec<u64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        xs.sort_unstable();
        let median = xs[n / 2] as f64;
        assert!((median / 8000.0 - 1.0).abs() < 0.1, "median = {median}");
    }

    #[test]
    fn clamping_to_site_limit() {
        let m = RuntimeModel {
            body_median: 60_000,
            body_sigma: 2.0,
            ..model()
        };
        let mut rng = stream_rng(4, 0);
        let capped = (0..10_000).filter(|_| m.sample(&mut rng) == 64_800).count();
        assert!(capped > 100, "heavy tail must hit the site limit");
    }
}
