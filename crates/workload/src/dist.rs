//! Samplable distributions built on `rand`'s uniform source.
//!
//! The offline dependency set does not include `rand_distr`, so the
//! classical sampling transforms are implemented here: inversion for the
//! exponential and Weibull, Box–Muller for the normal/log-normal, and
//! Marsaglia–Tsang squeeze for the gamma. Each sampler is deterministic
//! given the RNG stream.

use rand::rngs::SmallRng;
use rand::Rng;

/// A continuous distribution that can be sampled.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> f64;
}

/// Exponential distribution with the given rate (mean `1/rate`).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    /// Event rate λ (> 0).
    pub rate: f64,
}

impl Sample for Exp {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        debug_assert!(self.rate > 0.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// Standard normal via Box–Muller (one value per draw; the second is
/// discarded to keep the sampler stateless and the streams independent).
#[derive(Debug, Clone, Copy, Default)]
pub struct StdNormal;

impl Sample for StdNormal {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Log-normal: `exp(mu + sigma·N(0,1))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal (≥ 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Log-normal with the given *median* (`exp(mu)`) and sigma.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        (self.mu + self.sigma * StdNormal.sample(rng)).exp()
    }
}

/// Weibull with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    /// Shape k (> 0). k < 1 gives heavy tails, k = 1 is exponential.
    pub shape: f64,
    /// Scale λ (> 0).
    pub scale: f64,
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        debug_assert!(self.shape > 0.0 && self.scale > 0.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// Gamma with shape `k` and scale `theta` (Marsaglia–Tsang).
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    /// Shape k (> 0).
    pub shape: f64,
    /// Scale θ (> 0).
    pub scale: f64,
}

impl Sample for Gamma {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        debug_assert!(self.shape > 0.0 && self.scale > 0.0);
        // Marsaglia–Tsang requires k >= 1; boost smaller shapes.
        let k = self.shape;
        if k < 1.0 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let boosted = Gamma {
                shape: k + 1.0,
                scale: self.scale,
            }
            .sample(rng);
            return boosted * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StdNormal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }
}

/// Log-uniform over `[lo, hi]`: `exp(U(ln lo, ln hi))`. The classic
/// Feitelson model for job sizes and short runtimes.
#[derive(Debug, Clone, Copy)]
pub struct LogUniform {
    /// Lower bound (> 0).
    pub lo: f64,
    /// Upper bound (≥ lo).
    pub hi: f64,
}

impl Sample for LogUniform {
    // Exact equality guards the degenerate lo == hi range, where the two
    // bounds are the *same configured value*, not computed floats.
    #[allow(clippy::float_cmp)]
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        debug_assert!(self.lo > 0.0 && self.hi >= self.lo);
        if self.hi == self.lo {
            return self.lo;
        }
        rng.gen_range(self.lo.ln()..=self.hi.ln()).exp()
    }
}

/// A two-component mixture: `first` with probability `p`, else `second`.
#[derive(Debug, Clone, Copy)]
pub struct Mix<A, B> {
    /// Probability of drawing from `first`.
    pub p: f64,
    /// The first component.
    pub first: A,
    /// The second component.
    pub second: B,
}

impl<A: Sample, B: Sample> Sample for Mix<A, B> {
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        if rng.gen_bool(self.p.clamp(0.0, 1.0)) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_simkernel::rng::stream_rng;

    fn mean_of(d: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = stream_rng(seed, 0);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let m = mean_of(&Exp { rate: 0.5 }, 200_000, 1);
        assert!((m - 2.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = stream_rng(2, 0);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| StdNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(100.0, 1.0);
        let mut rng = stream_rng(3, 0);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.1, "median = {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn weibull_mean() {
        // k=1 reduces to exponential with mean = scale.
        let m = mean_of(
            &Weibull {
                shape: 1.0,
                scale: 3.0,
            },
            200_000,
            4,
        );
        assert!((m - 3.0).abs() < 0.1, "mean = {m}");
    }

    #[test]
    fn gamma_mean_and_positivity() {
        for (shape, scale) in [(0.5, 2.0), (1.0, 1.0), (4.0, 0.5), (9.0, 3.0)] {
            let d = Gamma { shape, scale };
            let mut rng = stream_rng(5, shape.to_bits());
            let n = 100_000;
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            assert!(xs.iter().all(|&x| x > 0.0));
            let mean = xs.iter().sum::<f64>() / n as f64;
            let expected = shape * scale;
            assert!(
                (mean / expected - 1.0).abs() < 0.05,
                "shape {shape}: mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn loguniform_bounds() {
        let d = LogUniform {
            lo: 4.0,
            hi: 4096.0,
        };
        let mut rng = stream_rng(6, 0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((4.0..=4096.0).contains(&x));
        }
        // Degenerate range.
        assert_eq!(LogUniform { lo: 7.0, hi: 7.0 }.sample(&mut rng), 7.0);
    }

    #[test]
    fn loguniform_is_log_spread() {
        // Median of LogUniform(1, 10000) is 100 (geometric midpoint).
        let d = LogUniform {
            lo: 1.0,
            hi: 10_000.0,
        };
        let mut rng = stream_rng(7, 0);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.15, "median = {median}");
    }

    #[test]
    fn mixture_proportion() {
        let d = Mix {
            p: 0.25,
            first: Exp { rate: 1000.0 },
            second: Exp { rate: 0.001 },
        };
        let mut rng = stream_rng(8, 0);
        let n = 100_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) < 1.0).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn determinism_per_seed() {
        let d = LogNormal::with_median(10.0, 0.5);
        let a: Vec<f64> = {
            let mut rng = stream_rng(9, 1);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = stream_rng(9, 1);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
