//! Order-preserving parallel map over a scoped thread pool.
//!
//! The reproduction's experiment grids (workload × `BSLD_threshold` ×
//! `WQ_threshold` × system size) are embarrassingly parallel: every cell is
//! an independent, deterministic simulation. [`par_map`] fans the cells out
//! over a fixed pool of scoped worker threads pulling from a shared work
//! queue and returns results **in input order**, so parallel sweeps are
//! bit-for-bit identical to sequential ones.
//!
//! Built entirely on `std` (`std::thread::scope` + mutex-guarded queue and
//! result slots): the offline build environment has no third-party thread
//! pool, and the sweep granularity — whole simulations, milliseconds each —
//! makes lock contention on the queue irrelevant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Number of worker threads [`par_map`] uses by default: the available
/// parallelism, capped at 16 (the grids rarely have more useful width).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Applies `f` to every item on a pool of `threads` workers, returning the
/// results in input order.
///
/// Items are distributed dynamically (a shared queue), so heterogeneous
/// cell costs — e.g. the SDSC grid cell simulating a saturated machine —
/// do not serialise the sweep.
///
/// Panics in workers propagate: if any invocation of `f` panics, `par_map`
/// panics after the pool drains. A shared abort flag makes that drain
/// prompt: the panicking worker raises it before unwinding, and every
/// sibling checks it before popping the next item, so a doomed sweep stops
/// burning cores on work whose results can never be returned. (The queue
/// lock itself never poisons — it is only held to pop, never while `f`
/// runs — so the flag is the *only* cross-worker panic signal.)
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return items.into_iter().map(f).collect();
    }

    /// Raises the abort flag if dropped mid-panic (i.e. while `f` is
    /// unwinding); disarmed on the success path.
    struct PanicSignal<'a>(&'a AtomicBool);
    impl Drop for PanicSignal<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }

    let abort = AtomicBool::new(false);
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if abort.load(Ordering::SeqCst) {
                    break;
                }
                // Take the lock only to pop; run `f` outside it.
                let next = queue.lock().map(|mut q| q.next());
                match next {
                    Ok(Some((idx, item))) => {
                        let signal = PanicSignal(&abort);
                        let out = f(item);
                        std::mem::forget(signal);
                        if let Ok(mut slot) = slots[idx].lock() {
                            *slot = Some(out);
                        }
                    }
                    // Queue drained (the lock can't actually poison — it is
                    // never held across `f` — but be conservative).
                    Ok(None) | Err(_) => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked (scope would have propagated it)")
                .expect("worker filled every slot")
        })
        .collect()
}

/// A thread-safe progress counter for long sweeps.
///
/// Workers call [`Progress::tick`]; an observer (usually the CLI) reads
/// [`Progress::done`] to render status lines.
#[derive(Debug, Default)]
pub struct Progress {
    done: std::sync::atomic::AtomicUsize,
    total: usize,
}

impl Progress {
    /// A counter expecting `total` ticks.
    pub fn new(total: usize) -> Self {
        Progress {
            done: std::sync::atomic::AtomicUsize::new(0),
            total,
        }
    }

    /// Records one completed unit and returns the new count.
    pub fn tick(&self) -> usize {
        self.done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Completed units so far.
    pub fn done(&self) -> usize {
        self.done.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The expected total.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), 8, |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u32> = (0..97).collect();
        let seq = par_map(items.clone(), 1, |x| x.wrapping_mul(2654435761) >> 7);
        for threads in [2, 3, 4, 8, 32] {
            let par = par_map(items.clone(), threads, |x| x.wrapping_mul(2654435761) >> 7);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(vec![41], 4, |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Simulate heterogeneous cell costs with spin work proportional to
        // an arbitrary pattern.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items, 8, |x| {
            let spins = (x % 7) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = par_map(vec![1, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn panic_aborts_siblings_promptly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Item 0 panics immediately; the other worker would otherwise
        // drain 400 further items (2 ms each ≈ 0.8 s). With the abort
        // flag it stops within a handful of pops.
        let processed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map((0..401).collect::<Vec<u64>>(), 2, |x| {
                if x == 0 {
                    panic!("doomed campaign");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                processed.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        assert!(result.is_err(), "panic must still propagate");
        let done = processed.load(Ordering::SeqCst);
        assert!(
            done < 100,
            "siblings kept draining the queue after a panic: {done} items"
        );
    }

    #[test]
    fn progress_counts() {
        let p = Progress::new(10);
        assert_eq!(p.total(), 10);
        assert_eq!(p.done(), 0);
        assert_eq!(p.tick(), 1);
        assert_eq!(p.tick(), 2);
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn default_threads_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}
