//! Order-preserving parallel map over a scoped thread pool.
//!
//! The reproduction's experiment grids (workload × `BSLD_threshold` ×
//! `WQ_threshold` × system size) are embarrassingly parallel: every cell is
//! an independent, deterministic simulation. [`par_map`] fans the cells out
//! over a fixed pool of scoped worker threads pulling from a shared work
//! queue and returns results **in input order**, so parallel sweeps are
//! bit-for-bit identical to sequential ones.
//!
//! Built entirely on `std` (`std::thread::scope` + mutex-guarded queue and
//! result slots): the offline build environment has no third-party thread
//! pool, and the sweep granularity — whole simulations, milliseconds each —
//! makes lock contention on the queue irrelevant.
//!
//! Beyond the batch map, the crate carries the other shared concurrency
//! primitives: [`Progress`] + [`StatusLine`] (stderr-only status
//! rendering), [`AbortFlag`] / [`run_budgeted`] (cooperative wall-clock
//! budgets) and [`Pool`] (a long-lived submission pool for the
//! `bsld-repro serve` daemon).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Number of worker threads [`par_map`] uses by default: the available
/// parallelism, capped at 16 (the grids rarely have more useful width).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Applies `f` to every item on a pool of `threads` workers, returning the
/// results in input order.
///
/// Items are distributed dynamically (a shared queue), so heterogeneous
/// cell costs — e.g. the SDSC grid cell simulating a saturated machine —
/// do not serialise the sweep.
///
/// Panics in workers propagate: if any invocation of `f` panics, `par_map`
/// panics after the pool drains. A shared abort flag makes that drain
/// prompt: the panicking worker raises it before unwinding, and every
/// sibling checks it before popping the next item, so a doomed sweep stops
/// burning cores on work whose results can never be returned. (The queue
/// lock itself never poisons — it is only held to pop, never while `f`
/// runs — so the flag is the *only* cross-worker panic signal.)
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return items.into_iter().map(f).collect();
    }

    /// Raises the abort flag if dropped mid-panic (i.e. while `f` is
    /// unwinding); disarmed on the success path.
    struct PanicSignal<'a>(&'a AtomicBool);
    impl Drop for PanicSignal<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }

    let abort = AtomicBool::new(false);
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if abort.load(Ordering::SeqCst) {
                    break;
                }
                // Take the lock only to pop; run `f` outside it.
                let next = queue.lock().map(|mut q| q.next());
                match next {
                    Ok(Some((idx, item))) => {
                        let signal = PanicSignal(&abort);
                        let out = f(item);
                        std::mem::forget(signal);
                        if let Ok(mut slot) = slots[idx].lock() {
                            *slot = Some(out);
                        }
                    }
                    // Queue drained (the lock can't actually poison — it is
                    // never held across `f` — but be conservative).
                    Ok(None) | Err(_) => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // audit:allow(R1): a worker panic propagates out of the scope before this read
                .expect("no worker panicked (scope would have propagated it)")
                // audit:allow(R1): the queue drains fully unless a panic aborted the pool
                .expect("worker filled every slot")
        })
        .collect()
}

/// A thread-safe progress counter for long sweeps.
///
/// Workers call [`Progress::tick`]; an observer (usually the CLI) reads
/// [`Progress::done`] to render status lines.
#[derive(Debug, Default)]
pub struct Progress {
    done: std::sync::atomic::AtomicUsize,
    total: usize,
}

impl Progress {
    /// A counter expecting `total` ticks.
    pub fn new(total: usize) -> Self {
        Progress {
            done: std::sync::atomic::AtomicUsize::new(0),
            total,
        }
    }

    /// Records one completed unit and returns the new count.
    pub fn tick(&self) -> usize {
        self.done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Completed units so far.
    pub fn done(&self) -> usize {
        self.done.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The expected total.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// The one way progress is shown to a terminal: a `\r`-rewritten counter
/// on **stderr**, so piped or captured stdout (CSV tables, JSON replies)
/// stays clean. Every campaign/worker/daemon status line routes through
/// this type rather than printing ad hoc.
#[derive(Debug, Clone)]
pub struct StatusLine {
    label: String,
}

impl StatusLine {
    /// A status line labelled `label` (e.g. `campaign`, `worker 2`).
    pub fn new(label: impl Into<String>) -> StatusLine {
        StatusLine {
            label: label.into(),
        }
    }

    /// Rewrites the line in place: `# label: done/total runs`.
    pub fn update(&self, done: usize, total: usize) {
        eprint!("\r# {}: {done}/{total} runs", self.label);
    }

    /// Terminates the rewritten line so subsequent output starts fresh.
    pub fn finish(&self) {
        eprintln!();
    }
}

/// A fixed pool of named worker threads consuming queued jobs.
///
/// Unlike [`par_map`] — which is scoped to one batch and joins before
/// returning — a `Pool` lives as long as its owner and accepts work
/// incrementally, which is what a connection-serving daemon needs. Jobs
/// run in submission order (a single shared FIFO), one per free worker.
/// A panicking job is contained to that job: the worker catches the
/// unwind and moves on, so one poisoned request cannot take the service
/// down with it.
#[derive(Debug)]
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug, Default)]
struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    panics: std::sync::atomic::AtomicUsize,
}

#[derive(Default)]
struct PoolQueue {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl std::fmt::Debug for PoolQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolQueue")
            .field("jobs", &self.jobs.len())
            .field("closed", &self.closed)
            .finish()
    }
}

impl Pool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Pool {
        let shared = Arc::new(PoolShared::default());
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsld-pool-{i}"))
                    .spawn(move || pool_worker(&shared))
                    // audit:allow(R1): thread spawn fails only on resource exhaustion at startup
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Queues one job; returns `false` (dropping the job) after
    /// [`Pool::close`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let Ok(mut q) = self.shared.queue.lock() else {
            return false;
        };
        if q.closed {
            return false;
        }
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.available.notify_one();
        true
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that ended in a contained panic so far.
    pub fn panicked_jobs(&self) -> usize {
        self.shared
            .panics
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Closes the queue — future [`Pool::submit`] calls are refused —
    /// without waiting for in-flight jobs.
    pub fn close(&self) {
        if let Ok(mut q) = self.shared.queue.lock() {
            q.closed = true;
        }
        self.shared.available.notify_all();
    }

    /// Closes the queue, drains every queued job and joins the workers.
    pub fn join(mut self) {
        self.close();
        for w in self.workers.drain(..) {
            // audit:allow(R1): pool workers contain job panics; a join failure is itself a bug worth propagating
            w.join().expect("pool worker never panics");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn pool_worker(shared: &PoolShared) {
    loop {
        let job = {
            let Ok(mut q) = shared.queue.lock() else {
                return;
            };
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                match shared.available.wait(q) {
                    Ok(guard) => q = guard,
                    Err(_) => return,
                }
            }
        };
        // Contain per-job panics: the daemon must outlive a poisoned
        // request. AssertUnwindSafe is sound here because the job is
        // consumed either way — no caller observes its captured state
        // after an unwind.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared
                .panics
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// A shared cooperative-cancellation flag.
///
/// Long-running work (a whole simulation) polls the flag at a safe
/// granularity — the scheduling engine checks it once per event — and
/// unwinds cleanly when it is raised. Cloning shares the flag; the
/// underlying [`AtomicBool`] is exposed via [`AbortFlag::handle`] so crates
/// that must not depend on `bsld-par` (e.g. the scheduling engine's
/// `EngineConfig`) can carry it as a plain `Arc<AtomicBool>`.
#[derive(Debug, Clone, Default)]
pub struct AbortFlag(Arc<AtomicBool>);

impl AbortFlag {
    /// A fresh, unraised flag.
    pub fn new() -> AbortFlag {
        AbortFlag::default()
    }

    /// Raises the flag; every holder observes it on the next poll.
    pub fn raise(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_raised(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// The shared atomic behind the flag, for APIs that take a plain
    /// `Arc<AtomicBool>`.
    pub fn handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }

    /// A borrowed view of the shared atomic, for APIs that poll a
    /// `&AtomicBool` without taking ownership (e.g. the SWF parse/clean
    /// phase).
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.0
    }
}

/// Runs `f` under a wall-clock budget of `budget_s` seconds, returning
/// `(result, budget_exhausted)`.
///
/// `f` executes on the **calling** thread and receives an [`AbortFlag`] it
/// is expected to poll; a watchdog thread raises the flag once the budget
/// elapses, so a cooperative `f` cuts itself off instead of stalling the
/// caller. This is *cooperative* cancellation: nothing is killed, no work
/// thread is leaked — when `f` returns (normally or by observing the
/// flag), the watchdog is woken and joined before `run_budgeted` returns.
///
/// A budget of zero (or anything non-positive / non-finite) starts with
/// the flag already raised: `f` still runs, but a polling `f` aborts at
/// its first check — the deterministic degenerate case the campaign tests
/// rely on.
///
/// The second element of the return value reports whether the flag was
/// raised by the deadline. A race is possible — `f` can complete
/// successfully in the same instant the watchdog fires — so callers should
/// trust a successful result over the flag.
pub fn run_budgeted<R>(budget_s: f64, f: impl FnOnce(&AbortFlag) -> R) -> (R, bool) {
    let flag = AbortFlag::new();
    if !(budget_s > 0.0 && budget_s.is_finite()) {
        flag.raise();
        let out = f(&flag);
        return (out, true);
    }
    // A budget beyond what Duration / the platform clock can represent
    // (`from_secs_f64` panics above ~1.8e19 s, and `Instant + Duration`
    // can overflow) is effectively unlimited: skip the watchdog instead
    // of letting a spec typo panic a worker thread mid-campaign.
    let deadline = Duration::try_from_secs_f64(budget_s)
        .ok()
        .and_then(|d| std::time::Instant::now().checked_add(d));
    let Some(deadline) = deadline else {
        let out = f(&flag);
        return (out, false);
    };
    // done: (finished, condvar) — the worker sets `finished` and notifies;
    // the watchdog waits with a timeout and raises the flag if the wait
    // expires first.
    let done = Arc::new((Mutex::new(false), Condvar::new()));
    let watchdog = {
        let done = Arc::clone(&done);
        let flag = flag.clone();
        std::thread::spawn(move || {
            let (lock, cv) = &*done;
            let Ok(mut finished) = lock.lock() else {
                return;
            };
            while !*finished {
                let now = std::time::Instant::now();
                if now >= deadline {
                    flag.raise();
                    return;
                }
                match cv.wait_timeout(finished, deadline - now) {
                    Ok((guard, _)) => finished = guard,
                    Err(_) => return,
                }
            }
        })
    };
    let out = f(&flag);
    {
        let (lock, cv) = &*done;
        if let Ok(mut finished) = lock.lock() {
            *finished = true;
        }
        cv.notify_all();
    }
    let _ = watchdog.join();
    (out, flag.is_raised())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items.clone(), 8, |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u32> = (0..97).collect();
        let seq = par_map(items.clone(), 1, |x| x.wrapping_mul(2654435761) >> 7);
        for threads in [2, 3, 4, 8, 32] {
            let par = par_map(items.clone(), threads, |x| x.wrapping_mul(2654435761) >> 7);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(vec![41], 4, |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Simulate heterogeneous cell costs with spin work proportional to
        // an arbitrary pattern.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items, 8, |x| {
            let spins = (x % 7) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = par_map(vec![1, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn panic_aborts_siblings_promptly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Item 0 panics immediately; the other worker would otherwise
        // drain 400 further items (2 ms each ≈ 0.8 s). With the abort
        // flag it stops within a handful of pops.
        let processed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map((0..401).collect::<Vec<u64>>(), 2, |x| {
                if x == 0 {
                    panic!("doomed campaign");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                processed.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        assert!(result.is_err(), "panic must still propagate");
        let done = processed.load(Ordering::SeqCst);
        assert!(
            done < 100,
            "siblings kept draining the queue after a panic: {done} items"
        );
    }

    #[test]
    fn progress_counts() {
        let p = Progress::new(10);
        assert_eq!(p.total(), 10);
        assert_eq!(p.done(), 0);
        assert_eq!(p.tick(), 1);
        assert_eq!(p.tick(), 2);
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn default_threads_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn zero_budget_starts_exhausted() {
        for budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let (seen, exhausted) = run_budgeted(budget, |flag| flag.is_raised());
            assert!(seen, "budget {budget}: f must observe the raised flag");
            assert!(exhausted, "budget {budget}");
        }
    }

    #[test]
    fn generous_budget_never_interrupts() {
        let ((), exhausted) = run_budgeted(3600.0, |flag| {
            assert!(!flag.is_raised());
        });
        assert!(!exhausted);
    }

    #[test]
    fn astronomically_large_budget_does_not_panic() {
        // Above Duration's ~1.8e19 s ceiling `from_secs_f64` would panic;
        // such budgets must degrade to "unlimited", not crash a worker.
        for budget in [2e19, 1e300, f64::MAX] {
            let (seen, exhausted) = run_budgeted(budget, |flag| flag.is_raised());
            assert!(!seen, "budget {budget}: flag must stay down");
            assert!(!exhausted, "budget {budget}");
        }
    }

    #[test]
    fn expired_budget_raises_the_flag_mid_run() {
        // A cooperative worker spinning until cancelled: the watchdog must
        // cut it off close to the 20 ms budget, not let it run the full
        // 10 s failsafe.
        let t0 = std::time::Instant::now();
        let (aborted, exhausted) = run_budgeted(0.02, |flag| {
            while !flag.is_raised() {
                if t0.elapsed() > Duration::from_secs(10) {
                    return false;
                }
                std::thread::yield_now();
            }
            true
        });
        assert!(aborted, "worker must observe the deadline");
        assert!(exhausted);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "watchdog fired far too late: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn abort_flag_is_shared_across_clones_and_handles() {
        let a = AbortFlag::new();
        let b = a.clone();
        let h = a.handle();
        assert!(!b.is_raised());
        a.raise();
        assert!(b.is_raised());
        assert!(h.load(Ordering::SeqCst));
    }

    #[test]
    fn pool_runs_every_submitted_job() {
        let pool = Pool::new(4);
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pool_survives_panicking_jobs_and_refuses_after_close() {
        let pool = Pool::new(2);
        assert_eq!(pool.threads(), 2);
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for i in 0..8 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                if i % 2 == 0 {
                    panic!("poisoned request");
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Wait for the queue to drain without joining, proving the
        // workers outlive the panics.
        let t0 = std::time::Instant::now();
        while counter.load(Ordering::SeqCst) < 4 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::yield_now();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        pool.close();
        assert!(!pool.submit(|| {}), "closed pool must refuse work");
        assert_eq!(pool.panicked_jobs(), 4);
        pool.join();
    }

    #[test]
    fn pool_zero_threads_still_works() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
