//! End-to-end smoke tests of the `bsld-repro` binary: every experiment
//! name runs green at reduced scale, help exits 0, unknown names list the
//! valid ones, and the `run` subcommand executes a scenario file.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bsld-repro"))
}

fn run(args: &[&str]) -> Output {
    bin()
        .args(args)
        .output()
        .expect("bsld-repro binary must spawn")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn every_experiment_runs_at_reduced_scale() {
    for exp in [
        "table1",
        "table3",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "ablations",
        "powercap",
        "calibrate",
    ] {
        let out = run(&[exp, "--jobs", "50", "--no-csv"]);
        assert!(
            out.status.success(),
            "{exp} failed:\n{}\n{}",
            stdout(&out),
            stderr(&out)
        );
        assert!(!stdout(&out).is_empty(), "{exp} printed nothing to stdout");
    }
}

#[test]
fn help_exits_zero_and_shows_usage() {
    for flags in [&["--help"][..], &["-h"][..], &["table1", "--help"][..]] {
        let out = run(flags);
        assert!(out.status.success(), "{flags:?}: {}", stderr(&out));
        assert!(stdout(&out).contains("usage: bsld-repro"), "{flags:?}");
    }
}

#[test]
fn unknown_experiment_lists_valid_names() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown experiment: frobnicate"), "{err}");
    for name in ["table1", "fig6", "ablations", "powercap", "run"] {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
}

#[test]
fn stray_positional_argument_is_an_error_outside_run() {
    // `table3 100` (forgot --jobs) must error, not silently run defaults.
    let out = run(&["table3", "100"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown argument: 100"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_workload_lists_valid_names() {
    let out = run(&["simulate", "--workload", "marsrover", "--jobs", "10"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown workload: marsrover"), "{err}");
    for name in ["ctc", "sdsc", "blue", "thunder", "atlas"] {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
}

#[test]
fn simulate_runs_and_reports() {
    let out = run(&[
        "simulate",
        "--workload",
        "blue",
        "--jobs",
        "60",
        "--bsld-th",
        "2",
        "--wq",
        "no",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("SDSCBlue"), "{text}");
    assert!(text.contains("avg BSLD"), "{text}");
}

#[test]
fn run_subcommand_executes_scenario_file() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn = dir.join("sweep.scn");
    std::fs::write(
        &scn,
        "scenario = smoke\n\
         workload = synthetic\n\
         profile = blue\n\
         jobs = 500\n\
         seed = 7\n\
         scale_cpus = 64\n\
         policy = bsld:2/NO\n\
         sweep.bsld_th = 1.5 3\n",
    )
    .unwrap();
    let out = run(&[
        "run",
        scn.to_str().unwrap(),
        "--jobs",
        "80",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("smoke-th1.5"), "{text}");
    assert!(text.contains("smoke-th3"), "{text}");
    // The --jobs override applies to every expanded cell.
    assert!(text.contains("80"), "{text}");
    let csv = dir.join("scenario_results.csv");
    let body = std::fs::read_to_string(&csv).expect("results CSV written");
    assert_eq!(body.lines().count(), 3, "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_subcommand_rejects_bad_files() {
    let dir = std::env::temp_dir().join(format!("bsld_cli_smoke_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scn: PathBuf = dir.join("bad.scn");
    std::fs::write(&scn, "workload = synthetic\nprofile = ctc\nwat = 1\n").unwrap();
    let out = run(&["run", scn.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("parse error"), "{}", stderr(&out));
    let out = run(&["run", dir.join("missing.scn").to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
