//! Regression tests for budget-driven cancellation of the SWF load phase.
//!
//! A `cell_budget_s` used to be observed only by the simulation event loop:
//! a unit stuck *parsing* a multi-million-line archive trace would burn
//! arbitrary wall-clock before its first budget check. These tests pin the
//! fix — the parse/clean phase polls the same abort flag, and an expired
//! budget is attributed exactly like an in-simulation abort.

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, Ordering};

use bsld_core::scenario::{ProfileName, ScenarioError, ScenarioSet, WorkloadSpec};
use bsld_core::{run_campaign, CampaignOptions, Scenario};

/// A synthetic SWF trace of `jobs` well-formed lines — large enough that a
/// real parse takes visible work, small enough to generate instantly.
fn synthetic_swf(jobs: usize) -> String {
    let mut text = String::with_capacity(jobs * 64);
    text.push_str("; MaxProcs: 64\n; UnixStartTime: 0\n");
    for i in 0..jobs {
        // job_id submit wait run cpus ... (18 fields)
        // Spread submits and users so the default clean pass (flurry
        // filter) keeps the trace mostly intact.
        let line = format!(
            "{} {} 10 {} 4 -1 -1 4 {} -1 1 {} 1 -1 1 -1 -1 -1\n",
            i + 1,
            i * 7,
            100 + (i % 900),
            1200,
            1 + (i % 97)
        );
        text.push_str(&line);
    }
    text
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bsld_budget_abort_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn raised_flag_aborts_workload_build() {
    let dir = temp_dir("build");
    let swf = dir.join("trace.swf");
    std::fs::write(&swf, synthetic_swf(10_000)).unwrap();

    let spec = WorkloadSpec::Swf {
        path: swf,
        clean: true,
    };
    // Unraised flag: the build succeeds and yields every job.
    let calm = AtomicBool::new(false);
    let w = spec.build_with_abort(Some(&calm)).unwrap();
    assert!(
        !w.jobs.is_empty() && w.jobs.len() <= 10_000,
        "clean pass kept {} jobs",
        w.jobs.len()
    );

    // Raised flag: the build aborts instead of materialising the trace.
    let raised = AtomicBool::new(true);
    let err = spec.build_with_abort(Some(&raised)).unwrap_err();
    assert!(
        matches!(err, ScenarioError::Sim(bsld_sched::SimError::Aborted)),
        "expected Aborted, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flag_raised_mid_parse_stops_at_next_poll() {
    // Drive the parse-phase poll directly: raise the flag between poll
    // windows and check the parse cuts off at the next multiple of the
    // poll interval instead of finishing the trace.
    let text = synthetic_swf(50_000);
    let flag = AtomicBool::new(false);
    flag.store(true, Ordering::SeqCst);
    let err = bsld_swf::parse_swf_with_abort(&text, Some(&flag)).unwrap_err();
    assert_eq!(err.kind, bsld_swf::ParseErrorKind::Aborted);
    assert_eq!(err.line, 1, "a pre-raised flag must stop at the first poll");
}

#[test]
fn zero_budget_campaign_fails_swf_unit_during_load_phase() {
    let dir = temp_dir("campaign");
    let swf = dir.join("trace.swf");
    std::fs::write(&swf, synthetic_swf(20_000)).unwrap();

    let mut base = Scenario::synthetic("swf_budget", ProfileName::Ctc, 1, 1);
    base.workload = WorkloadSpec::Swf {
        path: swf,
        clean: true,
    };
    let set = ScenarioSet {
        base,
        axes: Vec::new(),
        replications: 1,
        cell_budget_s: Some(0.0),
    };

    let outcome = run_campaign(&set, &CampaignOptions::in_memory(1), None).unwrap();
    assert_eq!(outcome.rows.len(), 1);
    let row = &outcome.rows[0];
    let reason = match &row.outcome {
        bsld_core::campaign::RepOutcome::Failed { reason } => reason.clone(),
        other => panic!("unit must fail under a zero budget, got {other:?}"),
    };
    assert!(
        reason.contains("exceeded cell_budget_s = 0"),
        "budget expiry must be attributed to the budget, got: {reason}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
