//! Distributed campaign execution: sharded workers appending to
//! per-worker manifests in one shared directory, merged into aggregates
//! byte-identical to a single-process run.
//!
//! The campaign layer ([`crate::campaign`]) already gives every
//! `(cell, replication)` unit a stable content-keyed identity and flushes
//! each finished unit to an append-only manifest. This module scales that
//! design past one process and one machine:
//!
//! * **Sharding** — [`shard_of`] deterministically partitions the unit
//!   space by hashing `(CellId, rep)`. Because a [`CellId`] is a content
//!   hash of the cell's spec (name and output excluded), shard assignment
//!   is stable under resume, cell re-ordering and sweep-axis permutation:
//!   the same unit always lands on the same shard of an `N`-way split, no
//!   matter how the scenario file was written or which worker asks.
//! * **Workers** — [`run_worker`] runs exactly one shard, appending to its
//!   own manifest `campaign_manifest.worker-I.csv` with the same
//!   torn-tail-tolerant flush discipline as the single-process path. A
//!   worker is idempotent: killed and re-run, it skips its own completed
//!   rows and finishes the remainder. The first worker pins the shared
//!   directory to the campaign by writing the canonical spec
//!   ([`SPEC_FILE`]); any worker arriving with a different spec is
//!   rejected instead of silently mixing two campaigns' rows.
//! * **Merge** — [`merge_campaign`] re-plans the campaign from the pinned
//!   spec, unions every worker manifest (tolerating *identical* duplicate
//!   rows from re-run shards, rejecting conflicting rows for the same
//!   unit), validates that the shards cover the whole plan, and aggregates
//!   through the exact code path the single-process run uses — so
//!   `campaign_results.csv` and `campaign.json` are **byte-identical** to
//!   `bsld-repro run` of the same file.
//!
//! Workers only touch their own manifest and only append, so the "shared
//! directory" can be an NFS mount used by several hosts: run
//! `bsld-repro campaign-worker FILE.scn --shard I/N --out DIR` once per
//! host, then `bsld-repro campaign-merge DIR` anywhere.
//!
//! ```
//! use bsld_core::campaign::{run_campaign, CampaignOptions};
//! use bsld_core::distrib::{merge_campaign, run_worker, Shard};
//! use bsld_core::scenario::{ProfileName, Scenario, ScenarioSet, SweepAxis, WorkloadSpec};
//!
//! let base = Scenario::synthetic("demo", ProfileName::SdscBlue, 40, 7).map_workload(|w| {
//!     if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
//!         *scale_cpus = Some(64);
//!     }
//! });
//! let set = ScenarioSet {
//!     base,
//!     axes: vec![SweepAxis::BsldThreshold(vec![1.5, 3.0])],
//!     replications: 2,
//!     cell_budget_s: None,
//! };
//!
//! // Run the campaign's 4 units as two worker shards of a shared dir...
//! let dir = std::env::temp_dir().join(format!("bsld_distrib_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! for i in 0..2 {
//!     run_worker(&set, Shard::new(i, 2).unwrap(), 1, &dir, None).unwrap();
//! }
//!
//! // ...and merge: the aggregate equals a single-process campaign's.
//! let merged = merge_campaign(&dir).unwrap();
//! let single = run_campaign(&set, &CampaignOptions::in_memory(1), None).unwrap();
//! assert_eq!(merged.outcome.results_csv(), single.results_csv());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bsld_par::Progress;

use crate::campaign::{
    aggregate_rows, campaign_hash, canonical_set_text, classify_rows, collect_rows,
    execute_pending, fnv1a_64, open_manifest, read_manifest_at, write_artifacts, Campaign,
    CampaignOutcome, CampaignUnit, CellId, RepRow,
};
use crate::scenario::{ScenarioError, ScenarioSet};

/// File name of the pinned canonical campaign spec inside the shared
/// directory: the first worker writes it, later workers must match it, and
/// [`merge_campaign`] re-plans from it.
pub const SPEC_FILE: &str = "campaign.scn";

/// The manifest file name of worker `shard`.
pub fn worker_manifest_file(shard: u32) -> String {
    format!("campaign_manifest.worker-{shard}.csv")
}

/// One worker's slot in an `N`-way split: `index ∈ [0, count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This worker's shard index (0-based).
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Shard {
    /// A validated shard slot.
    pub fn new(index: u32, count: u32) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range (must be < {count})"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `I/N` (e.g. `0/3`).
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard {s:?}: expected I/N (e.g. 0/3)"))?;
        let index: u32 = i
            .parse()
            .map_err(|_| format!("bad shard index {i:?} in {s:?}"))?;
        let count: u32 = n
            .parse()
            .map_err(|_| format!("bad shard count {n:?} in {s:?}"))?;
        Shard::new(index, count)
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The shard a `(cell, rep)` unit belongs to in an `n`-way split.
///
/// The assignment hashes the cell's content identity together with the
/// replication index (FNV-1a over both, little-endian), so:
///
/// * it is a pure function of the unit's *content* — stable across
///   processes, hosts, resumes, cell re-ordering and axis permutation;
/// * the replications of one cell spread across shards instead of
///   serialising on one worker;
/// * for any `n`, the shards partition the unit space (every unit maps to
///   exactly one shard — disjointness and coverage by construction,
///   property-tested in `tests/campaign_distrib.rs`).
pub fn shard_of(cell: CellId, rep: u32, n: u32) -> u32 {
    let n = n.max(1);
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&cell.0.to_le_bytes());
    bytes[8..].copy_from_slice(&rep.to_le_bytes());
    // audit:allow(N2): remainder is < n <= u32::MAX, lossless by construction
    (fnv1a_64(&bytes) % u64::from(n)) as u32
}

/// The result of [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    /// The slot this worker ran.
    pub shard: Shard,
    /// Units of the whole campaign.
    pub total_units: usize,
    /// Units assigned to this shard.
    pub shard_units: usize,
    /// Shard units skipped because this worker's manifest already held
    /// their row (the worker was killed and re-run).
    pub resumed: usize,
    /// Failed units of this shard (`name[rep]: reason`, shard-unit order),
    /// manifest I/O errors appended.
    pub failures: Vec<String>,
}

/// Runs one shard of a campaign, appending finished rows to this worker's
/// manifest in `dir`.
///
/// The worker plans the full campaign, keeps only the units
/// [`shard_of`] assigns to `shard`, and executes them with the same
/// semantics as [`crate::campaign::run_campaign`]: per-unit budget
/// enforcement ([`ScenarioSet::cell_budget_s`]), immediate flushes, failed
/// units recorded as `failed` rows. Re-running a killed worker resumes —
/// rows already in its manifest (torn tail tolerated) are skipped.
///
/// The shared directory is pinned to one campaign: the first worker writes
/// the canonical spec to [`SPEC_FILE`]; a worker whose spec disagrees
/// errors out instead of mixing campaigns.
///
/// `on_progress` observes `(done, shard_units)` like the single-process
/// progress callback.
pub fn run_worker(
    set: &ScenarioSet,
    shard: Shard,
    threads: usize,
    dir: &Path,
    on_progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<WorkerOutcome, ScenarioError> {
    let campaign = Campaign::plan(set)?;
    std::fs::create_dir_all(dir)
        .map_err(|e| ScenarioError::Io(format!("cannot create {}: {e}", dir.display())))?;
    pin_spec(dir, set)?;

    // Resume from this worker's own manifest (if any).
    let manifest_path = dir.join(worker_manifest_file(shard.index));
    let classified = classify_rows(&campaign, read_manifest_at(&manifest_path)?);
    let cached = classified.cached;

    let shard_units: Vec<CampaignUnit> = campaign
        .units
        .iter()
        .filter(|u| shard_of(campaign.cells[u.cell].id, u.rep, shard.count) == shard.index)
        .cloned()
        .collect();
    let total_shard = shard_units.len();
    let pending: Vec<CampaignUnit> = shard_units
        .iter()
        .filter(|u| !cached.contains_key(&(campaign.cells[u.cell].id, u.rep)))
        .cloned()
        .collect();
    let resumed = total_shard - pending.len();

    let manifest = Mutex::new(open_manifest(&manifest_path, true)?);
    let progress = Progress::new(total_shard);
    for _ in 0..resumed {
        progress.tick();
    }
    if let Some(cb) = on_progress {
        cb(progress.done(), progress.total());
    }

    // The exact execute/flush discipline of the single-process path —
    // shared code, so the manifests stay merge-compatible by construction.
    let fresh = execute_pending(
        &campaign,
        pending,
        threads,
        Some(&manifest),
        &progress,
        on_progress,
    );

    // Failure report in shard-unit order: failed rows (cached + fresh),
    // then manifest I/O errors.
    let (by_unit, io_failures) = collect_rows(&campaign, cached, fresh);
    let mut failures: Vec<String> = shard_units
        .iter()
        .filter_map(|u| {
            let row = by_unit.get(&(u.cell, u.rep))?;
            match &row.outcome {
                crate::campaign::RepOutcome::Ok(_) => None,
                crate::campaign::RepOutcome::Failed { reason } => {
                    Some(format!("{}[rep {}]: {reason}", row.name, row.rep))
                }
            }
        })
        .collect();
    failures.extend(io_failures);

    Ok(WorkerOutcome {
        shard,
        total_units: campaign.units.len(),
        shard_units: total_shard,
        resumed,
        failures,
    })
}

/// Writes the canonical spec into `dir`, or verifies it if a previous
/// worker already pinned one.
///
/// Workers on several hosts may race into an empty shared directory, so
/// the pin must be atomic: the spec is written to a unique temp file and
/// *linked* into place — `hard_link` fails with `AlreadyExists` if any
/// other worker won, and the pinned file is only ever visible with its
/// full content (a plain check-then-write could let two different
/// campaigns each believe they own the directory, or expose a torn spec).
fn pin_spec(dir: &Path, set: &ScenarioSet) -> Result<(), ScenarioError> {
    let path = dir.join(SPEC_FILE);
    let canonical = canonical_set_text(set);
    let reject = |existing: &str| {
        ScenarioError::Io(format!(
            "{} already belongs to a different campaign (spec hash {:016x}, \
             this worker's is {:016x}); use a fresh directory per campaign",
            dir.display(),
            fnv1a_64(existing.as_bytes()),
            campaign_hash(set),
        ))
    };
    // Fast path: already pinned (by an earlier run or a concurrent
    // winner) — just compare.
    match std::fs::read_to_string(&path) {
        Ok(existing) => {
            return if existing == canonical {
                Ok(())
            } else {
                Err(reject(&existing))
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(ScenarioError::Io(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    }
    // audit:allow(D2): nonce only de-collides tmp-file names across hosts; never reaches results
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let tmp = dir.join(format!(".{}.tmp-{}-{nonce}", SPEC_FILE, std::process::id()));
    std::fs::write(&tmp, &canonical)
        .map_err(|e| ScenarioError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    let linked = std::fs::hard_link(&tmp, &path);
    std::fs::remove_file(&tmp).ok();
    match linked {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            // Lost the race: the winner's spec is fully in place — verify
            // we are the same campaign.
            let existing = std::fs::read_to_string(&path)
                .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", path.display())))?;
            if existing == canonical {
                Ok(())
            } else {
                Err(reject(&existing))
            }
        }
        Err(e) => Err(ScenarioError::Io(format!(
            "cannot pin {}: {e}",
            path.display()
        ))),
    }
}

/// The result of [`merge_campaign`].
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The aggregated campaign — same shape, same bytes, as a
    /// single-process run.
    pub outcome: CampaignOutcome,
    /// The campaign spec the directory was pinned to.
    pub set: ScenarioSet,
    /// Worker shard indices whose manifests were found, ascending.
    pub workers: Vec<u32>,
    /// Identical duplicate rows dropped (a shard was re-run with a
    /// different split, or a manifest was copied); conflicting duplicates
    /// are an error instead.
    pub duplicate_rows: usize,
}

/// Merges the per-worker manifests of a shared campaign directory and
/// writes the aggregated artifacts (`campaign_results.csv`,
/// `campaign.json`) into it.
///
/// Validation before any aggregation:
///
/// * the directory must be pinned ([`SPEC_FILE`]) and hold at least one
///   worker manifest;
/// * two rows for the same `(cell, rep)` must be identical — re-run
///   overlap is deduplicated, *conflicting* results are an error naming
///   the unit and both workers;
/// * every planned unit must have a row (completed or failed) — missing
///   units mean a shard has not run (or was killed before finishing) and
///   are listed so the operator can run exactly that worker.
///
/// Aggregation then goes through the same deterministic path as the
/// single-process run, so the artifacts are byte-identical to
/// `bsld-repro run` of the same scenario file.
pub fn merge_campaign(dir: &Path) -> Result<MergeOutcome, ScenarioError> {
    let spec_path = dir.join(SPEC_FILE);
    let text = std::fs::read_to_string(&spec_path).map_err(|e| {
        ScenarioError::Io(format!(
            "cannot read {}: {e} (run campaign-worker into this directory first)",
            spec_path.display()
        ))
    })?;
    let set = ScenarioSet::parse(&text)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", spec_path.display())))?;
    let campaign = Campaign::plan(&set)?;

    let workers = discover_workers(dir)?;
    if workers.is_empty() {
        return Err(ScenarioError::Io(format!(
            "{}: no worker manifests (campaign_manifest.worker-*.csv) found",
            dir.display()
        )));
    }

    // Union the worker manifests under the content key. (Unlike the
    // resume path's `classify_rows`, rows are checked one by one so a
    // conflict can name both workers.)
    let planned: BTreeSet<CellId> = campaign.cells.iter().map(|c| c.id).collect();
    let mut by_key: BTreeMap<(CellId, u32), (RepRow, u32)> = BTreeMap::new();
    let mut stale_rows = 0usize;
    let mut excess_rows = 0usize;
    let mut duplicate_rows = 0usize;
    for (w, manifest_path) in &workers {
        let w = *w;
        // Read the path the directory scan actually found — reconstructing
        // the canonical name from the index would silently skip manifests
        // whose spelling doesn't round-trip (e.g. `worker-07.csv`).
        let rows = read_manifest_at(manifest_path)?;
        for row in rows {
            if !planned.contains(&row.cell) {
                stale_rows += 1;
                continue;
            }
            if row.rep >= campaign.replications {
                excess_rows += 1;
                continue;
            }
            match by_key.entry((row.cell, row.rep)) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert((row, w));
                }
                std::collections::btree_map::Entry::Occupied(slot) => {
                    let (existing, from) = slot.get();
                    if *existing == row {
                        duplicate_rows += 1;
                    } else {
                        // The pinned spec rules out "different campaigns";
                        // the realistic cause is a wall-clock-dependent
                        // outcome (a borderline cell_budget_s unit that
                        // completed in one re-run and timed out in the
                        // other), so prescribe the minimal repair, not a
                        // full re-run.
                        return Err(ScenarioError::Io(format!(
                            "conflicting rows for {}[rep {}] (cell {}): worker {} and \
                             worker {w} disagree — likely a wall-clock-dependent outcome \
                             (e.g. a borderline cell_budget_s) across overlapping re-runs; \
                             delete one of the two rows (or one worker's manifest) and \
                             merge again",
                            row.name, row.rep, row.cell, from
                        )));
                    }
                }
            }
        }
    }

    // Coverage: every planned unit needs a row.
    let missing: Vec<&CampaignUnit> = campaign
        .units
        .iter()
        .filter(|u| !by_key.contains_key(&(campaign.cells[u.cell].id, u.rep)))
        .collect();
    if !missing.is_empty() {
        let preview: Vec<String> = missing
            .iter()
            .take(5)
            .map(|u| format!("{}[rep {}]", campaign.cells[u.cell].scenario.name, u.rep))
            .collect();
        return Err(ScenarioError::Io(format!(
            "{} of {} unit(s) have no row in any worker manifest (e.g. {}); \
             a shard has not finished — run its campaign-worker again, then merge",
            missing.len(),
            campaign.units.len(),
            preview.join(", ")
        )));
    }

    let index_of: BTreeMap<CellId, usize> = campaign
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id, i))
        .collect();
    let by_unit: BTreeMap<(usize, u32), RepRow> = by_key
        .into_iter()
        .map(|((id, rep), (row, _))| ((index_of[&id], rep), row))
        .collect();
    let total_units = campaign.units.len();
    let (rows, summaries, failures) = aggregate_rows(&campaign, &by_unit);
    let outcome = CampaignOutcome {
        rows,
        summaries,
        total_units,
        resumed: total_units,
        stale_rows,
        excess_rows,
        failures,
    };
    write_artifacts(dir, &set, &campaign, &outcome)?;
    let mut worker_indices: Vec<u32> = workers.iter().map(|(w, _)| *w).collect();
    worker_indices.dedup();
    Ok(MergeOutcome {
        outcome,
        set,
        workers: worker_indices,
        duplicate_rows,
    })
}

/// The worker manifests found in `dir` as `(shard index, actual path)`
/// pairs, sorted by index. Every matching file is kept — including
/// non-canonical spellings of the same index (`worker-07.csv` next to
/// `worker-7.csv`); the merge unions their rows and content-key dedup
/// handles the overlap.
fn discover_workers(dir: &Path) -> Result<Vec<(u32, PathBuf)>, ScenarioError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", dir.display())))?;
    let mut workers = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("campaign_manifest.worker-") {
            if let Some(index) = rest.strip_suffix(".csv") {
                if let Ok(index) = index.parse::<u32>() {
                    workers.push((index, entry.path()));
                }
            }
        }
    }
    workers.sort();
    Ok(workers)
}

/// Convenience: the worker manifest paths present in `dir` (for tooling
/// and tests).
pub fn worker_manifests(dir: &Path) -> Result<Vec<PathBuf>, ScenarioError> {
    Ok(discover_workers(dir)?
        .into_iter()
        .map(|(_, path)| path)
        .collect())
}
