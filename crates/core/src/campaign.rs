//! The campaign layer: replicated sweeps with confidence intervals,
//! resume, and per-cell result caching.
//!
//! A [`ScenarioSet`] describes a sweep grid; a **campaign** turns that grid
//! into a statistically meaningful, restartable experiment:
//!
//! * **Replication** — `replications = N` in the scenario file fans every
//!   sweep cell out across `N` derived seeds ([`replication_seed`]) and
//!   aggregates the per-cell metrics into mean ± 95 % CI using the
//!   *sample* variance (`OnlineStats::stderr`, Student-t critical values);
//!   the paper's tables are single-trace point estimates, this layer puts
//!   honest error bars on them.
//! * **Caching & resume** — every sweep cell gets a stable content-hash
//!   identity ([`CellId`], FNV-1a over the rendered scenario text). Each
//!   completed replication is flushed to a manifest CSV **as soon as it
//!   finishes**, so a crash mid-campaign loses at most the in-flight
//!   cells. Re-running with [`CampaignOptions::resume`] skips every
//!   `(cell, replication)` whose row already exists and merges old and new
//!   rows into a final result that is byte-identical to an uninterrupted
//!   run (floats are persisted via `{}` — the shortest representation that
//!   parses back to the identical bits).
//! * **Progress** — workers tick a [`bsld_par::Progress`] counter; the
//!   caller's callback observes `(done, total)` to render a status line.
//!
//! ```
//! use bsld_core::campaign::{run_campaign, CampaignOptions};
//! use bsld_core::scenario::{ProfileName, Scenario, ScenarioSet, SweepAxis, WorkloadSpec};
//!
//! let base = Scenario::synthetic("demo", ProfileName::SdscBlue, 80, 7).map_workload(|w| {
//!     if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
//!         *scale_cpus = Some(64);
//!     }
//! });
//! let set = ScenarioSet {
//!     base,
//!     axes: vec![SweepAxis::BsldThreshold(vec![1.5, 3.0])],
//!     replications: 3,
//!     cell_budget_s: None,
//! };
//! let out = run_campaign(&set, &CampaignOptions::in_memory(2), None).unwrap();
//! assert_eq!(out.summaries.len(), 2); // one row per sweep cell
//! for cell in &out.summaries {
//!     assert_eq!(cell.bsld.n, 3); // three replications behind each mean
//! }
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bsld_metrics::{csv_escape, parse_csv_line, MeanCi, TextTable};
use bsld_par::Progress;
use bsld_simkernel::rng::derive_seed;
use bsld_simkernel::stats::OnlineStats;

use crate::scenario::{Scenario, ScenarioError, ScenarioResult, ScenarioSet, WorkloadSpec};

/// File name of the per-replication manifest inside the campaign
/// directory.
pub const MANIFEST_FILE: &str = "campaign_manifest.csv";

/// File name of the aggregated per-cell results inside the campaign
/// directory.
pub const RESULTS_FILE: &str = "campaign_results.csv";

/// The seed-derivation stream reserved for campaign replications; disjoint
/// from the workload-internal streams in `bsld_simkernel::rng::streams` by
/// construction (those are small integers, this is a large tag mixed per
/// replication).
const REPLICATION_STREAM_BASE: u64 = 0x5EED_0000_0000_0000;

/// FNV-1a 64-bit hash — tiny, dependency-free, and stable across
/// platforms and releases, which is what a resume manifest written by one
/// build and read by the next needs.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content-hash identity of one sweep cell: FNV-1a over the cell's
/// rendered scenario text, so the ID survives process restarts, reorders
/// of unrelated cells, and additions to the sweep — any cell whose spec is
/// unchanged keeps its ID and its cached rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u64);

impl CellId {
    /// The ID of the cell described by `scenario`.
    ///
    /// The hash covers the *run-semantic* spec only: the output spec and
    /// the scenario name are blanked before rendering. `out_dir` is
    /// presentation advice to the driver — re-running the same campaign
    /// with a different `--out` (or `--no-csv`) must still hit the cached
    /// rows — and the name is a label whose axis-suffix order depends on
    /// how the sweep was written; excluding it keeps IDs (and therefore
    /// shard assignment, see [`crate::distrib`]) stable under renames and
    /// axis permutation.
    pub fn of(scenario: &Scenario) -> CellId {
        let mut canonical = scenario.clone();
        canonical.name = String::new();
        canonical.output = crate::scenario::OutputSpec::default();
        CellId(fnv1a_64(canonical.render().as_bytes()))
    }

    /// Parses the 16-hex-digit text form.
    pub fn parse(s: &str) -> Result<CellId, String> {
        u64::from_str_radix(s, 16)
            .map(CellId)
            .map_err(|_| format!("bad cell id {s:?}"))
    }
}

impl fmt::Display for CellId {
    /// Fixed-width hex so manifests align and IDs are greppable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Derives the workload seed of replication `rep` from the cell's base
/// seed. Replication 0 keeps the base seed, so `replications = 1` runs the
/// exact scenario the file describes; higher replications get independent,
/// well-mixed seeds via the SplitMix64 derivation shared with the workload
/// sub-streams.
pub fn replication_seed(base: u64, rep: u32) -> u64 {
    if rep == 0 {
        base
    } else {
        derive_seed(base, REPLICATION_STREAM_BASE.wrapping_add(u64::from(rep)))
    }
}

/// One expanded sweep cell with its stable identity.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Content-hash ID (over the rendered cell spec).
    pub id: CellId,
    /// The cell's scenario (base seed, before replication derivation).
    pub scenario: Scenario,
}

/// One unit of work: a cell × replication pair.
#[derive(Debug, Clone)]
pub struct CampaignUnit {
    /// Index into [`Campaign::cells`].
    pub cell: usize,
    /// Replication index (0-based).
    pub rep: u32,
    /// The concrete scenario to run (seed already derived).
    pub scenario: Scenario,
}

/// A fully planned campaign: expanded cells and the unit work list.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Expanded sweep cells, expansion order.
    pub cells: Vec<CampaignCell>,
    /// Replications per cell (≥ 1).
    pub replications: u32,
    /// The work list: every `(cell, rep)` pair, cell-major order.
    pub units: Vec<CampaignUnit>,
    /// Per-unit wall-time budget in seconds (from
    /// [`ScenarioSet::cell_budget_s`]); a unit exceeding it aborts
    /// cooperatively and is recorded as a failed row.
    pub cell_budget_s: Option<f64>,
}

impl Campaign {
    /// Expands `set` into cells and replication units, validating that the
    /// campaign is well-formed: replications need a synthetic workload
    /// (SWF replays are deterministic) and every cell must have a distinct
    /// content hash (duplicate sweep values would make cached rows
    /// ambiguous on resume).
    pub fn plan(set: &ScenarioSet) -> Result<Campaign, ScenarioError> {
        let replications = set.replications.max(1);
        let cells: Vec<CampaignCell> = set
            .expand()?
            .into_iter()
            .map(|scenario| CampaignCell {
                id: CellId::of(&scenario),
                scenario,
            })
            .collect();
        // BTreeMap by construction: nothing here iterates, but the campaign
        // result path must never depend on hash order (see `bsld-audit` D1).
        let mut seen: BTreeMap<CellId, &str> = BTreeMap::new();
        for cell in &cells {
            if replications > 1 {
                if let WorkloadSpec::Swf { .. } = cell.scenario.workload {
                    return Err(ScenarioError::Workload(format!(
                        "cell {}: replications > 1 requires a synthetic workload",
                        cell.scenario.name
                    )));
                }
            }
            if let Some(first) = seen.insert(cell.id, &cell.scenario.name) {
                return Err(ScenarioError::Parse {
                    line: 0,
                    msg: format!(
                        "cells {first:?} and {:?} have identical specs (cell id {}); \
                         deduplicate the sweep values so cached results stay unambiguous",
                        cell.scenario.name, cell.id
                    ),
                });
            }
        }
        let units = cells
            .iter()
            .enumerate()
            .flat_map(|(i, cell)| {
                (0..replications).map(move |rep| {
                    let mut scenario = cell.scenario.clone();
                    if let WorkloadSpec::Synthetic { seed, .. } = &mut scenario.workload {
                        *seed = replication_seed(*seed, rep);
                    }
                    CampaignUnit {
                        cell: i,
                        rep,
                        scenario,
                    }
                })
            })
            .collect();
        Ok(Campaign {
            cells,
            replications,
            units,
            cell_budget_s: set.cell_budget_s,
        })
    }

    /// Runs one unit of this campaign to a manifest row. Simulation
    /// failures — and budget expiry, when [`Campaign::cell_budget_s`] is
    /// set — become deterministic `failed` rows rather than errors, so a
    /// single infeasible cell cannot sink a sweep.
    pub fn execute_unit(&self, unit: &CampaignUnit) -> RepRow {
        let cell = &self.cells[unit.cell];
        // audit:allow(D2): per-unit elapsed_s is fleet-scheduling provenance only; it never feeds results, aggregates or cell identity, and is excluded from RepRow equality
        let started = std::time::Instant::now();
        let mut row = self.execute_unit_untimed(cell, unit);
        row.elapsed_s = Some(started.elapsed().as_secs_f64());
        row
    }

    fn execute_unit_untimed(&self, cell: &CampaignCell, unit: &CampaignUnit) -> RepRow {
        let (res, phases) = match self.cell_budget_s {
            None => unit.scenario.run_phased_with_abort(None),
            Some(budget) => {
                let ((res, phases), exhausted) = bsld_par::run_budgeted(budget, |flag| {
                    unit.scenario.run_phased_with_abort(Some(flag))
                });
                match res {
                    // Trust a completed result over a raced deadline; only
                    // an *aborted* run is attributed to the budget.
                    Err(ScenarioError::Sim(bsld_sched::SimError::Aborted)) if exhausted => {
                        let mut row = RepRow::from_failure(
                            cell,
                            unit,
                            format!("exceeded cell_budget_s = {budget}"),
                        );
                        row.set_phases(phases);
                        return row;
                    }
                    other => (other, phases),
                }
            }
        };
        let mut row = match res {
            Ok(res) => RepRow::from_result(cell, unit, &res),
            Err(e) => RepRow::from_failure(cell, unit, e.to_string()),
        };
        row.set_phases(phases);
        row
    }
}

/// The per-replication metrics of a successful unit.
#[derive(Debug, Clone, PartialEq)]
pub struct RepMetrics {
    /// Jobs completed.
    pub jobs: u64,
    /// Average BSLD.
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait_s: f64,
    /// Jobs run at a reduced gear.
    pub reduced_jobs: u64,
    /// Computational energy (normalised units).
    pub energy_comp: f64,
    /// Energy including idle draw (normalised units).
    pub energy_idle: f64,
    /// Ledger energy integral (power-instrumented runs only).
    pub energy_ledger: Option<f64>,
    /// `peak / budget` (capped runs only).
    pub peak_over_budget: Option<f64>,
    /// CPU-rail ledger energy (multi-rail runs only — a scenario with an
    /// explicit `model =`; single-rail runs report `-`).
    pub energy_cpu: Option<f64>,
    /// Memory-rail ledger energy (multi-rail runs only).
    pub energy_mem: Option<f64>,
    /// Interconnect-rail ledger energy (multi-rail runs only).
    pub energy_net: Option<f64>,
}

/// How one `(cell, replication)` unit ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RepOutcome {
    /// The unit completed; its metrics feed the per-cell aggregate.
    Ok(RepMetrics),
    /// The unit failed — an infeasible cap, or its wall-time budget
    /// expired. Failed units are persisted like completed ones, so a
    /// resumed or sharded campaign does not re-burn wall-clock on a unit
    /// already known to fail; delete the row (or the manifest) to retry.
    Failed {
        /// Deterministic human-readable cause (a [`ScenarioError`]
        /// rendering, or the budget message).
        reason: String,
    },
}

/// One finished unit: the manifest row. Floats are persisted with `{}`
/// (shortest round-trip), so a row written, parsed back and re-aggregated
/// produces bit-identical statistics — the property the resume- and
/// merge-equivalence guarantees rest on.
#[derive(Debug, Clone)]
pub struct RepRow {
    /// Which cell this replication belongs to.
    pub cell: CellId,
    /// The cell's scenario name (labels tables; the ID is authoritative).
    pub name: String,
    /// Replication index (0-based).
    pub rep: u32,
    /// The derived workload seed actually simulated (0 for SWF replays).
    pub seed: u64,
    /// Completion or failure.
    pub outcome: RepOutcome,
    /// Wall-clock seconds this unit took to execute, recorded for fleet
    /// scheduling (straggler detection, work-stealing reassignment).
    /// Provenance only: it never feeds results, aggregates or cell
    /// identity, and — being wall-clock — it is excluded from [`RepRow`]
    /// equality together with the phase columns below. `None` on rows
    /// parsed from manifests that predate the column.
    pub elapsed_s: Option<f64>,
    /// Wall-clock seconds spent materialising the workload (SWF parse +
    /// clean, or synthetic build). Provenance only, like `elapsed_s`;
    /// `None` on rows from manifests that predate the phase columns.
    pub parse_s: Option<f64>,
    /// Wall-clock seconds spent constructing the simulator (cluster,
    /// rails, engine). Provenance only; `None` on pre-phase manifests.
    pub build_s: Option<f64>,
    /// Wall-clock seconds spent in the simulation event loop plus metric
    /// aggregation. Provenance only; `None` on pre-phase manifests.
    pub sim_s: Option<f64>,
}

/// Equality is over the *simulated* outcome — every field except the
/// wall-clock `elapsed_s`/`parse_s`/`build_s`/`sim_s`, whose run-to-run
/// jitter would otherwise break resume/merge deduplication and the
/// byte-identity guarantees.
impl PartialEq for RepRow {
    fn eq(&self, other: &Self) -> bool {
        self.cell == other.cell
            && self.name == other.name
            && self.rep == other.rep
            && self.seed == other.seed
            && self.outcome == other.outcome
    }
}

impl RepRow {
    /// Manifest column names, field order. Failed rows carry `-` in every
    /// metric column. The trailing `elapsed_s`, `parse_s`, `build_s` and
    /// `sim_s` columns are wall-clock provenance; manifests written before
    /// the phase columns existed (18 columns) or before `elapsed_s`
    /// (17 columns) still parse, with the missing fields left `None`.
    pub const HEADERS: [&'static str; 21] = [
        "cell",
        "scenario",
        "rep",
        "seed",
        "status",
        "reason",
        "jobs",
        "avg_bsld",
        "avg_wait_s",
        "reduced_jobs",
        "energy_comp",
        "energy_idle",
        "energy_ledger",
        "peak_over_budget",
        "energy_cpu",
        "energy_mem",
        "energy_net",
        "elapsed_s",
        "parse_s",
        "build_s",
        "sim_s",
    ];

    /// The metrics of a completed row (`None` for failed rows).
    pub fn metrics(&self) -> Option<&RepMetrics> {
        match &self.outcome {
            RepOutcome::Ok(m) => Some(m),
            RepOutcome::Failed { .. } => None,
        }
    }

    /// Builds the row for one successfully finished unit.
    pub fn from_result(cell: &CampaignCell, unit: &CampaignUnit, res: &ScenarioResult) -> RepRow {
        let m = &res.run.metrics;
        // Per-rail energy only exists on the multi-rail layout (an
        // explicit `model =`); the single-rail default reports `-`, so
        // rows of pre-existing campaigns keep their exact field values.
        let rail = |kind: bsld_power::RailKind| -> Option<f64> {
            res.power
                .as_ref()
                .filter(|p| p.rails.len() > 1)
                .and_then(|p| p.rails.iter().find(|r| r.kind == kind))
                .map(|r| r.energy)
        };
        RepRow {
            cell: cell.id,
            name: cell.scenario.name.clone(),
            rep: unit.rep,
            seed: unit_seed(unit),
            outcome: RepOutcome::Ok(RepMetrics {
                // audit:allow(N2): usize -> u64 is a widening on every supported target
                jobs: m.jobs as u64,
                avg_bsld: m.avg_bsld,
                avg_wait_s: m.avg_wait_secs,
                // audit:allow(N2): usize -> u64 is a widening on every supported target
                reduced_jobs: m.reduced_jobs as u64,
                energy_comp: m.energy.computational,
                energy_idle: m.energy.with_idle,
                energy_ledger: res.power.as_ref().map(|p| p.energy),
                peak_over_budget: res
                    .power
                    .as_ref()
                    .and_then(|p| p.budget.filter(|b| *b > 0.0).map(|b| p.peak / b)),
                energy_cpu: rail(bsld_power::RailKind::Cpu),
                energy_mem: rail(bsld_power::RailKind::Memory),
                energy_net: rail(bsld_power::RailKind::Interconnect),
            }),
            elapsed_s: None,
            parse_s: None,
            build_s: None,
            sim_s: None,
        }
    }

    /// Builds the failure row for a unit that could not complete.
    pub fn from_failure(cell: &CampaignCell, unit: &CampaignUnit, reason: String) -> RepRow {
        RepRow {
            cell: cell.id,
            name: cell.scenario.name.clone(),
            rep: unit.rep,
            seed: unit_seed(unit),
            outcome: RepOutcome::Failed { reason },
            elapsed_s: None,
            parse_s: None,
            build_s: None,
            sim_s: None,
        }
    }

    /// Stamps the profiling plane's phase breakdown onto the row.
    fn set_phases(&mut self, p: bsld_obs::PhaseSecs) {
        self.parse_s = Some(p.parse_s);
        self.build_s = Some(p.build_s);
        self.sim_s = Some(p.sim_s);
    }

    fn fields(&self) -> Vec<String> {
        let opt = |v: &Option<f64>| match v {
            Some(x) => x.to_string(),
            None => "-".to_string(),
        };
        let mut out = vec![
            self.cell.to_string(),
            self.name.clone(),
            self.rep.to_string(),
            self.seed.to_string(),
        ];
        match &self.outcome {
            RepOutcome::Ok(m) => out.extend([
                "ok".to_string(),
                "-".to_string(),
                m.jobs.to_string(),
                m.avg_bsld.to_string(),
                m.avg_wait_s.to_string(),
                m.reduced_jobs.to_string(),
                m.energy_comp.to_string(),
                m.energy_idle.to_string(),
                opt(&m.energy_ledger),
                opt(&m.peak_over_budget),
                opt(&m.energy_cpu),
                opt(&m.energy_mem),
                opt(&m.energy_net),
            ]),
            RepOutcome::Failed { reason } => {
                out.extend(["failed".to_string(), reason.clone()]);
                out.extend(std::iter::repeat_n("-".to_string(), 11));
            }
        }
        out.push(opt(&self.elapsed_s));
        out.push(opt(&self.parse_s));
        out.push(opt(&self.build_s));
        out.push(opt(&self.sim_s));
        out
    }

    /// One manifest line (CSV-escaped, no trailing newline).
    pub fn to_csv_line(&self) -> String {
        self.fields()
            .iter()
            .map(|f| csv_escape(f))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a manifest line; `None` for rows that do not parse (torn
    /// tail of a crashed write — the unit simply reruns).
    pub fn parse_line(line: &str) -> Option<RepRow> {
        let f = parse_csv_line(line);
        // 21 columns today; 18 from manifests written before the phase
        // columns; 17 from manifests written before `elapsed_s`.
        let legacy_ok = f.len() == 18 || f.len() == 17;
        if f.len() != Self::HEADERS.len() && !legacy_ok {
            return None;
        }
        let opt = |s: &str| -> Option<Option<f64>> {
            if s == "-" {
                Some(None)
            } else {
                s.parse::<f64>().ok().map(Some)
            }
        };
        let outcome = match f[4].as_str() {
            "ok" => RepOutcome::Ok(RepMetrics {
                jobs: f[6].parse().ok()?,
                avg_bsld: f[7].parse().ok()?,
                avg_wait_s: f[8].parse().ok()?,
                reduced_jobs: f[9].parse().ok()?,
                energy_comp: f[10].parse().ok()?,
                energy_idle: f[11].parse().ok()?,
                energy_ledger: opt(&f[12])?,
                peak_over_budget: opt(&f[13])?,
                energy_cpu: opt(&f[14])?,
                energy_mem: opt(&f[15])?,
                energy_net: opt(&f[16])?,
            }),
            "failed" => RepOutcome::Failed {
                reason: f[5].clone(),
            },
            _ => return None,
        };
        // Trailing wall-clock columns, absent on legacy manifests.
        let wall = |i: usize| -> Option<Option<f64>> {
            match f.get(i).map(String::as_str) {
                None | Some("-") => Some(None),
                Some(s) => s.parse::<f64>().ok().map(Some),
            }
        };
        Some(RepRow {
            cell: CellId::parse(&f[0]).ok()?,
            name: f[1].clone(),
            rep: f[2].parse().ok()?,
            seed: f[3].parse().ok()?,
            outcome,
            elapsed_s: wall(17)?,
            parse_s: wall(18)?,
            build_s: wall(19)?,
            sim_s: wall(20)?,
        })
    }
}

/// The derived workload seed a unit actually simulates (0 for SWF
/// replays, which have none).
fn unit_seed(unit: &CampaignUnit) -> u64 {
    match &unit.scenario.workload {
        WorkloadSpec::Synthetic { seed, .. } => *seed,
        WorkloadSpec::Swf { .. } => 0,
    }
}

/// Per-cell aggregate across its replications: mean ± 95 % CI for every
/// headline metric (Student-t over the sample standard error).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// The cell's content-hash identity.
    pub id: CellId,
    /// The cell's scenario name.
    pub name: String,
    /// Jobs per replication (constant for a given cell spec).
    pub jobs: u64,
    /// Average BSLD, mean ± CI.
    pub bsld: MeanCi,
    /// Average wait (seconds), mean ± CI.
    pub wait: MeanCi,
    /// Reduced-job count, mean ± CI.
    pub reduced: MeanCi,
    /// Computational energy, mean ± CI.
    pub energy_comp: MeanCi,
    /// Idle-inclusive energy, mean ± CI.
    pub energy_idle: MeanCi,
    /// Ledger energy, mean ± CI (`None` unless every replication was
    /// power-instrumented).
    pub energy_ledger: Option<MeanCi>,
    /// `peak / budget`, mean ± CI (`None` unless every replication ran
    /// capped).
    pub peak_over_budget: Option<MeanCi>,
    /// CPU-rail energy, mean ± CI (`None` unless every replication ran
    /// on the multi-rail layout — a scenario with an explicit `model =`).
    pub energy_cpu: Option<MeanCi>,
    /// Memory-rail energy, mean ± CI (multi-rail runs only).
    pub energy_mem: Option<MeanCi>,
    /// Interconnect-rail energy, mean ± CI (multi-rail runs only).
    pub energy_net: Option<MeanCi>,
}

fn mean_ci(values: impl Iterator<Item = f64>) -> MeanCi {
    let mut s = OnlineStats::new();
    for v in values {
        s.push(v);
    }
    MeanCi::new(s.mean(), s.ci95_half(), s.count())
}

fn summarize_cell(cell: &CampaignCell, rows: &[&RepMetrics]) -> CellSummary {
    let all = |f: fn(&RepMetrics) -> Option<f64>| -> Option<MeanCi> {
        let vals: Option<Vec<f64>> = rows.iter().map(|r| f(r)).collect();
        vals.map(|v| mean_ci(v.into_iter()))
    };
    CellSummary {
        id: cell.id,
        name: cell.scenario.name.clone(),
        jobs: rows.first().map(|r| r.jobs).unwrap_or(0),
        bsld: mean_ci(rows.iter().map(|r| r.avg_bsld)),
        wait: mean_ci(rows.iter().map(|r| r.avg_wait_s)),
        reduced: mean_ci(rows.iter().map(|r| r.reduced_jobs as f64)),
        energy_comp: mean_ci(rows.iter().map(|r| r.energy_comp)),
        energy_idle: mean_ci(rows.iter().map(|r| r.energy_idle)),
        energy_ledger: all(|r| r.energy_ledger),
        peak_over_budget: all(|r| r.peak_over_budget),
        energy_cpu: all(|r| r.energy_cpu),
        energy_mem: all(|r| r.energy_mem),
        energy_net: all(|r| r.energy_net),
    }
}

/// How to run a campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads for the unit sweep.
    pub threads: usize,
    /// Directory holding the manifest (and the aggregated results CSV).
    /// `None`: run fully in memory — no caching, no resume.
    pub dir: Option<PathBuf>,
    /// Read an existing manifest in [`CampaignOptions::dir`] and skip
    /// every unit whose row is already present. Without this flag a fresh
    /// manifest is started (the old one is overwritten).
    pub resume: bool,
}

impl CampaignOptions {
    /// No disk artifacts: run everything, aggregate in memory.
    pub fn in_memory(threads: usize) -> CampaignOptions {
        CampaignOptions {
            threads,
            dir: None,
            resume: false,
        }
    }

    /// A fresh campaign flushing its manifest into `dir`.
    pub fn fresh(threads: usize, dir: impl Into<PathBuf>) -> CampaignOptions {
        CampaignOptions {
            threads,
            dir: Some(dir.into()),
            resume: false,
        }
    }

    /// Resume (or start) a campaign in `dir`, skipping cached units.
    pub fn resume(threads: usize, dir: impl Into<PathBuf>) -> CampaignOptions {
        CampaignOptions {
            threads,
            dir: Some(dir.into()),
            resume: true,
        }
    }
}

/// The result of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Every finished unit row (cached + freshly run, failed rows
    /// included), unit order.
    pub rows: Vec<RepRow>,
    /// Per-cell aggregates over the *successful* replications, expansion
    /// order (cells with no completed replication are absent; their
    /// failures are listed instead).
    pub summaries: Vec<CellSummary>,
    /// Total units the plan contains.
    pub total_units: usize,
    /// Units skipped because their manifest row already existed.
    pub resumed: usize,
    /// Manifest rows whose cell hash matches no cell of this campaign
    /// (the sweep changed); they are ignored but left in the manifest
    /// file.
    pub stale_rows: usize,
    /// Manifest rows of a planned cell whose replication index is beyond
    /// the current `replications` (the count shrank); ignored likewise.
    pub excess_rows: usize,
    /// Per-unit failures (`name[rep]: reason`), unit order. Failed units
    /// are persisted as `failed` manifest rows, so a resume does not
    /// re-burn wall-clock on them — delete the rows (or the manifest) to
    /// retry. Manifest I/O errors are appended after the unit failures;
    /// those wrote no row and *do* rerun on resume.
    pub failures: Vec<String>,
}

impl CampaignOutcome {
    /// The aggregated per-cell results as a CSV document: one row per
    /// cell, `mean` and `ci95` columns per metric, floats at full
    /// round-trip precision. Deterministic for a given set of rows —
    /// independent of thread scheduling and of how many runs it took to
    /// complete the campaign.
    pub fn results_csv(&self) -> String {
        let mut headers = vec![
            "cell",
            "scenario",
            "reps",
            "jobs",
            "avg_bsld_mean",
            "avg_bsld_ci95",
            "avg_wait_s_mean",
            "avg_wait_s_ci95",
            "reduced_jobs_mean",
            "reduced_jobs_ci95",
            "energy_comp_mean",
            "energy_comp_ci95",
            "energy_idle_mean",
            "energy_idle_ci95",
            "energy_ledger_mean",
            "energy_ledger_ci95",
            "peak_over_budget_mean",
            "peak_over_budget_ci95",
        ];
        // Per-rail columns appear only when some cell actually ran on the
        // multi-rail layout; campaigns that never select a model keep the
        // exact pre-subsystem column set (and bytes).
        let with_rails = self.summaries.iter().any(|c| c.energy_cpu.is_some());
        if with_rails {
            headers.extend([
                "energy_cpu_mean",
                "energy_cpu_ci95",
                "energy_mem_mean",
                "energy_mem_ci95",
                "energy_net_mean",
                "energy_net_ci95",
            ]);
        }
        let rows: Vec<Vec<String>> = self
            .summaries
            .iter()
            .map(|c| {
                let mut row = vec![
                    c.id.to_string(),
                    c.name.clone(),
                    c.bsld.n.to_string(),
                    c.jobs.to_string(),
                ];
                for ci in [&c.bsld, &c.wait, &c.reduced, &c.energy_comp, &c.energy_idle] {
                    let (m, h) = ci.csv_fields();
                    row.push(m);
                    row.push(h);
                }
                let mut opts = vec![&c.energy_ledger, &c.peak_over_budget];
                if with_rails {
                    opts.extend([&c.energy_cpu, &c.energy_mem, &c.energy_net]);
                }
                for opt in opts {
                    match opt {
                        Some(ci) => {
                            let (m, h) = ci.csv_fields();
                            row.push(m);
                            row.push(h);
                        }
                        None => {
                            row.push("-".into());
                            row.push("-".into());
                        }
                    }
                }
                row
            })
            .collect();
        bsld_metrics::csv_string(&headers, &rows)
    }

    /// Renders the per-cell summary table (`mean ± ci` cells).
    pub fn render_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "scenario",
            "reps",
            "jobs",
            "avgBSLD",
            "avgWait(s)",
            "reduced",
            "E(comp)",
            "E(ledger)",
        ]);
        for c in &self.summaries {
            t.row(vec![
                c.name.clone(),
                c.bsld.n.to_string(),
                c.jobs.to_string(),
                c.bsld.table_cell(2),
                c.wait.table_cell(0),
                c.reduced.table_cell(1),
                c.energy_comp.table_cell_sci(3),
                c.energy_ledger
                    .as_ref()
                    .map(|ci| ci.table_cell_sci(3))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        t.render()
    }
}

/// Reads the manifest rows from `dir` (empty if the file does not exist).
/// The header line is validated; unparseable data lines — the torn tail
/// of a crashed append — are skipped, so the corresponding units rerun.
pub fn read_manifest(dir: &Path) -> Result<Vec<RepRow>, ScenarioError> {
    read_manifest_at(&dir.join(MANIFEST_FILE))
}

/// As [`read_manifest`] for an explicit manifest path (the distributed
/// layer keeps one manifest per worker shard).
pub fn read_manifest_at(path: &Path) -> Result<Vec<RepRow>, ScenarioError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(ScenarioError::Io(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let mut lines = text.lines();
    match lines.next() {
        None => return Ok(Vec::new()),
        Some(header) => {
            let expect = RepRow::HEADERS.join(",");
            // Manifests written before the phase columns (18 columns) or
            // before `elapsed_s` (17) resume fine: their rows parse with
            // the missing wall-clock fields left `None`.
            let legacy_elapsed = RepRow::HEADERS[..18].join(",");
            let legacy = RepRow::HEADERS[..17].join(",");
            if header != expect && header != legacy_elapsed && header != legacy {
                return Err(ScenarioError::Io(format!(
                    "{} is not a campaign manifest (header {header:?})",
                    path.display()
                )));
            }
        }
    }
    Ok(lines.filter_map(RepRow::parse_line).collect())
}

/// Opens a manifest for incremental appends: `resume` appends to an
/// existing file — terminating a torn final line first, so fresh rows
/// never weld onto a crashed partial write — while a fresh run truncates
/// and writes the header.
pub(crate) fn open_manifest(path: &Path, resume: bool) -> Result<std::fs::File, ScenarioError> {
    if resume && path.exists() {
        std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .and_then(|mut f| {
                let text = std::fs::read(path)?;
                if !text.is_empty() && text.last() != Some(&b'\n') {
                    writeln!(f)?;
                }
                Ok(f)
            })
            .map_err(|e| ScenarioError::Io(format!("cannot open {}: {e}", path.display())))
    } else {
        std::fs::File::create(path)
            .and_then(|mut f| {
                writeln!(f, "{}", RepRow::HEADERS.join(","))?;
                Ok(f)
            })
            .map_err(|e| ScenarioError::Io(format!("cannot create {}: {e}", path.display())))
    }
}

/// Splits manifest rows against a plan: rows of planned `(cell, rep)`
/// units are cached (later rows win, matching append order), rows of
/// unknown cells are stale, rows of known cells beyond the replication
/// count are excess.
pub(crate) struct ClassifiedRows {
    /// Reusable rows by `(cell id, rep)`.
    pub cached: BTreeMap<(CellId, u32), RepRow>,
    /// Rows matching no planned cell.
    pub stale: usize,
    /// Rows of planned cells with `rep >= replications`.
    pub excess: usize,
}

pub(crate) fn classify_rows(
    campaign: &Campaign,
    rows: impl IntoIterator<Item = RepRow>,
) -> ClassifiedRows {
    let planned: BTreeSet<CellId> = campaign.cells.iter().map(|c| c.id).collect();
    let mut out = ClassifiedRows {
        cached: BTreeMap::new(),
        stale: 0,
        excess: 0,
    };
    for row in rows {
        if !planned.contains(&row.cell) {
            out.stale += 1;
        } else if row.rep >= campaign.replications {
            // The cell is still in the plan — only the replication count
            // shrank. Keep this distinct from "unknown cell" so the
            // caller doesn't report a spec change that never happened.
            out.excess += 1;
        } else {
            out.cached.insert((row.cell, row.rep), row);
        }
    }
    out
}

/// Executes `pending` units in parallel, flushing each finished row —
/// completed or failed — to `manifest` (when given) the moment it exists,
/// and ticking the progress counter per unit. Returns one
/// `(cell, rep, row-or-io-error)` triple per unit; a row that did not
/// reach disk is an error, so the caller surfaces it and a resume reruns
/// the unit.
///
/// This is the one flush discipline: the single-process path
/// ([`run_campaign`]) and the distributed workers
/// ([`crate::distrib::run_worker`]) both go through it, which is what
/// keeps their manifests merge-compatible.
pub(crate) fn execute_pending(
    campaign: &Campaign,
    pending: Vec<CampaignUnit>,
    threads: usize,
    manifest: Option<&Mutex<std::fs::File>>,
    progress: &Progress,
    on_progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Vec<(usize, u32, Result<RepRow, String>)> {
    bsld_par::par_map(pending, threads.max(1), |unit| {
        let row = campaign.execute_unit(&unit);
        let outcome = match manifest {
            None => Ok(row),
            Some(file) => {
                let io = file
                    .lock()
                    .map_err(|_| "manifest lock poisoned".to_string())
                    .and_then(|mut f| {
                        writeln!(f, "{}", row.to_csv_line())
                            .and_then(|()| f.flush())
                            .map_err(|e| format!("manifest write failed: {e}"))
                    });
                io.map(|()| row)
            }
        };
        let done = progress.tick();
        if let Some(cb) = on_progress {
            cb(done, progress.total());
        }
        (unit.cell, unit.rep, outcome)
    })
}

/// Folds cached rows and the output of [`execute_pending`] into a
/// unit-index keyed map plus the manifest-I/O failure list (`name[rep]:
/// error`, execution order).
pub(crate) fn collect_rows(
    campaign: &Campaign,
    cached: BTreeMap<(CellId, u32), RepRow>,
    fresh: Vec<(usize, u32, Result<RepRow, String>)>,
) -> (BTreeMap<(usize, u32), RepRow>, Vec<String>) {
    let index_of: BTreeMap<CellId, usize> = campaign
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id, i))
        .collect();
    let mut by_unit: BTreeMap<(usize, u32), RepRow> = BTreeMap::new();
    for ((id, rep), row) in cached {
        by_unit.insert((index_of[&id], rep), row);
    }
    let mut io_failures = Vec::new();
    for (cell, rep, res) in fresh {
        match res {
            Ok(row) => {
                by_unit.insert((cell, rep), row);
            }
            Err(e) => io_failures.push(format!(
                "{}[rep {rep}]: {e}",
                campaign.cells[cell].scenario.name
            )),
        }
    }
    (by_unit, io_failures)
}

/// Deterministically orders and aggregates a complete (or partial) row
/// map: rows in unit order, per-cell summaries over the successful
/// replications, and the unit-order failure list. Both the single-process
/// path ([`run_campaign`]) and the distributed merge
/// ([`crate::distrib::merge_campaign`]) go through this function — the
/// byte-identity guarantee between them is its determinism.
pub(crate) fn aggregate_rows(
    campaign: &Campaign,
    by_unit: &BTreeMap<(usize, u32), RepRow>,
) -> (Vec<RepRow>, Vec<CellSummary>, Vec<String>) {
    let rows: Vec<RepRow> = campaign
        .units
        .iter()
        .filter_map(|u| by_unit.get(&(u.cell, u.rep)).cloned())
        .collect();
    let mut failures = Vec::new();
    for row in &rows {
        if let RepOutcome::Failed { reason } = &row.outcome {
            failures.push(format!("{}[rep {}]: {reason}", row.name, row.rep));
        }
    }
    let summaries: Vec<CellSummary> = campaign
        .cells
        .iter()
        .enumerate()
        .filter_map(|(i, cell)| {
            let metrics: Vec<&RepMetrics> = (0..campaign.replications)
                .filter_map(|rep| by_unit.get(&(i, rep)).and_then(RepRow::metrics))
                .collect();
            (!metrics.is_empty()).then(|| summarize_cell(cell, &metrics))
        })
        .collect();
    (rows, summaries, failures)
}

/// File name of the JSON campaign report inside the campaign directory.
pub const JSON_FILE: &str = "campaign.json";

/// The seed-derivation rule recorded in [`campaign_json`] provenance —
/// how [`replication_seed`] turns a cell's base seed into per-replication
/// workload seeds.
pub const SEED_DERIVATION_RULE: &str =
    "rep 0 keeps the cell's seed; rep k > 0 uses splitmix64(seed, 0x5eed000000000000 + k)";

/// The campaign's canonical content hash: FNV-1a over the set's rendered
/// text with the output spec blanked (`--out` is driver advice, not
/// campaign identity). Recorded in the JSON report and used by the
/// distributed layer to pin a shared directory to one campaign.
pub fn campaign_hash(set: &ScenarioSet) -> u64 {
    fnv1a_64(canonical_set_text(set).as_bytes())
}

/// The canonical spec text behind [`campaign_hash`]: the rendered set
/// with presentation-only state (the output directory) removed.
pub(crate) fn canonical_set_text(set: &ScenarioSet) -> String {
    let mut canonical = set.clone();
    canonical.base.output = crate::scenario::OutputSpec::default();
    canonical.render()
}

/// Renders the machine-readable campaign report: per-cell mean ± 95 % CI
/// for every metric, failed units with reasons, and provenance (the
/// campaign's content hash, per-cell [`CellId`]s and base seeds, the
/// seed-derivation rule, replication count and wall-time budget).
///
/// Deterministic for a given plan and row set — independent of thread
/// scheduling, resume history, and of whether the rows were produced by
/// one process or merged from worker shards.
pub fn campaign_json(set: &ScenarioSet, campaign: &Campaign, outcome: &CampaignOutcome) -> String {
    use bsld_metrics::Json;
    let ci = |m: &MeanCi| {
        Json::obj(vec![
            ("mean", Json::from(m.mean)),
            ("ci95", Json::from(m.half)),
        ])
    };
    let opt_ci = |m: &Option<MeanCi>| m.as_ref().map(&ci).unwrap_or(Json::Null);
    let summary_of: BTreeMap<CellId, &CellSummary> =
        outcome.summaries.iter().map(|s| (s.id, s)).collect();
    let cells = Json::Arr(
        campaign
            .cells
            .iter()
            .map(|cell| {
                let mut pairs = vec![
                    ("id", Json::str(cell.id.to_string())),
                    ("scenario", Json::str(&cell.scenario.name)),
                ];
                match &cell.scenario.workload {
                    // Seeds are u64: render as strings so CellId-sized
                    // values survive JSON consumers that read f64.
                    WorkloadSpec::Synthetic { seed, .. } => {
                        pairs.push(("seed", Json::str(seed.to_string())));
                    }
                    WorkloadSpec::Swf { path, .. } => {
                        pairs.push(("swf", Json::str(path.display().to_string())));
                    }
                }
                // Model provenance only when the cell selects one: reports
                // of model-free campaigns stay byte-identical.
                if let Some(m) = &cell.scenario.power.model {
                    pairs.push(("model", Json::str(m.render())));
                }
                match summary_of.get(&cell.id) {
                    None => {
                        pairs.push(("reps", Json::from(0u64)));
                        pairs.push(("metrics", Json::Null));
                    }
                    Some(s) => {
                        pairs.push(("reps", Json::from(s.bsld.n)));
                        pairs.push(("jobs", Json::from(s.jobs)));
                        let mut metrics = vec![
                            ("avg_bsld", ci(&s.bsld)),
                            ("avg_wait_s", ci(&s.wait)),
                            ("reduced_jobs", ci(&s.reduced)),
                            ("energy_comp", ci(&s.energy_comp)),
                            ("energy_idle", ci(&s.energy_idle)),
                            ("energy_ledger", opt_ci(&s.energy_ledger)),
                            ("peak_over_budget", opt_ci(&s.peak_over_budget)),
                        ];
                        if s.energy_cpu.is_some() {
                            metrics.extend([
                                ("energy_cpu", opt_ci(&s.energy_cpu)),
                                ("energy_mem", opt_ci(&s.energy_mem)),
                                ("energy_net", opt_ci(&s.energy_net)),
                            ]);
                        }
                        pairs.push(("metrics", Json::obj(metrics)));
                    }
                }
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            })
            .collect(),
    );
    let failed = Json::Arr(
        outcome
            .rows
            .iter()
            .filter_map(|row| match &row.outcome {
                RepOutcome::Ok(_) => None,
                RepOutcome::Failed { reason } => Some(Json::obj(vec![
                    ("cell", Json::str(row.cell.to_string())),
                    ("scenario", Json::str(&row.name)),
                    ("rep", Json::from(u64::from(row.rep))),
                    ("reason", Json::str(reason)),
                ])),
            })
            .collect(),
    );
    Json::obj(vec![
        ("format", Json::str("bsld-campaign/1")),
        ("scenario", Json::str(&set.base.name)),
        (
            "scenario_hash",
            Json::str(format!("{:016x}", campaign_hash(set))),
        ),
        ("replications", Json::from(u64::from(campaign.replications))),
        (
            "cell_budget_s",
            campaign.cell_budget_s.map(Json::from).unwrap_or(Json::Null),
        ),
        ("seed_derivation", Json::str(SEED_DERIVATION_RULE)),
        ("total_units", Json::from(outcome.total_units)),
        ("cells", cells),
        ("failed_units", failed),
    ])
    .render()
}

/// Writes the aggregated artifacts (`campaign_results.csv` and
/// `campaign.json`) into `dir`.
pub(crate) fn write_artifacts(
    dir: &Path,
    set: &ScenarioSet,
    campaign: &Campaign,
    outcome: &CampaignOutcome,
) -> Result<(), ScenarioError> {
    let path = dir.join(RESULTS_FILE);
    std::fs::write(&path, outcome.results_csv())
        .map_err(|e| ScenarioError::Io(format!("cannot write {}: {e}", path.display())))?;
    let path = dir.join(JSON_FILE);
    std::fs::write(&path, campaign_json(set, campaign, outcome))
        .map_err(|e| ScenarioError::Io(format!("cannot write {}: {e}", path.display())))?;
    Ok(())
}

/// Runs a campaign: plan, resume from the manifest (if asked), execute the
/// missing units in parallel with per-unit manifest flushes, aggregate
/// per-cell statistics, and write the aggregated artifacts
/// (`campaign_results.csv` + `campaign.json`).
///
/// `on_progress` (if given) observes `(done, total)` after every completed
/// unit — cached units are reported up front — and may render a status
/// line; it is invoked from worker threads.
pub fn run_campaign(
    set: &ScenarioSet,
    opts: &CampaignOptions,
    on_progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<CampaignOutcome, ScenarioError> {
    let campaign = Campaign::plan(set)?;
    let total_units = campaign.units.len();

    // Which units are already on disk?
    let classified = match (opts.resume, &opts.dir) {
        (true, Some(dir)) => classify_rows(&campaign, read_manifest(dir)?),
        _ => classify_rows(&campaign, std::iter::empty()),
    };
    let cached = classified.cached;

    // Open the manifest for incremental flushing.
    let manifest: Option<Mutex<std::fs::File>> = match &opts.dir {
        None => None,
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| ScenarioError::Io(format!("cannot create {}: {e}", dir.display())))?;
            Some(Mutex::new(open_manifest(
                &dir.join(MANIFEST_FILE),
                opts.resume,
            )?))
        }
    };

    // Partition the work list.
    let pending: Vec<CampaignUnit> = campaign
        .units
        .iter()
        .filter(|u| !cached.contains_key(&(campaign.cells[u.cell].id, u.rep)))
        .cloned()
        .collect();
    let resumed = total_units - pending.len();
    let progress = Progress::new(total_units);
    for _ in 0..resumed {
        progress.tick();
    }
    if let Some(cb) = on_progress {
        cb(progress.done(), progress.total());
    }

    // Run what's missing; flush each row — completed or failed — the
    // moment it exists. Then merge cached + fresh rows into unit order.
    let fresh = execute_pending(
        &campaign,
        pending,
        opts.threads,
        manifest.as_ref(),
        &progress,
        on_progress,
    );
    let (by_unit, io_failures) = collect_rows(&campaign, cached, fresh);
    let (rows, summaries, mut failures) = aggregate_rows(&campaign, &by_unit);
    failures.extend(io_failures);

    let outcome = CampaignOutcome {
        rows,
        summaries,
        total_units,
        resumed,
        stale_rows: classified.stale,
        excess_rows: classified.excess,
        failures,
    };

    // Persist the aggregates next to the manifest.
    if let Some(dir) = &opts.dir {
        write_artifacts(dir, set, &campaign, &outcome)?;
    }
    Ok(outcome)
}
