//! The simulator facade.
//!
//! Bundles a cluster, the paper's power and time models and the scheduling
//! engine behind three calls: [`Simulator::run_baseline`] (EASY, no DVFS),
//! [`Simulator::run_power_aware`] (EASY + the BSLD-threshold policy) and
//! [`Simulator::run_power_capped`] (either policy under a cluster power
//! budget with idle sleep states, via `bsld-powercap`).

use bsld_cluster::{Cluster, GearSet};
use bsld_metrics::RunMetrics;
use bsld_model::{Job, JobOutcome};
use bsld_power::{BetaModel, PaperDvfs, RailSet};
use bsld_powercap::{PowerCap, PowerCapPolicy, PowerReport, SleepConfig};
use bsld_sched::{
    simulate, simulate_with_hook, BoostConfig, EngineConfig, FrequencyPolicy, PassStats, SimError,
    TraceEvent,
};

use crate::policy::PowerAwareConfig;
use crate::scenario::{self, PolicySpec, PowerSpec};

/// A simulation result: the paper's metrics plus the raw outcomes.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Summary metrics (BSLD, waits, energy, reduced jobs, ...).
    pub metrics: RunMetrics,
    /// Raw per-job outcomes (completion order).
    pub outcomes: Vec<JobOutcome>,
    /// Scheduling trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Engine pass/rebuild/skip counters (incremental-engine diagnostics).
    pub pass_stats: PassStats,
}

/// Configuration of a power-capped run ([`Simulator::run_power_capped`]).
#[derive(Debug, Clone)]
pub struct PowerCapConfig {
    /// Cluster power budget as a fraction of the machine's peak draw
    /// (every processor busy at the top gear). `None` = no budget: the
    /// run only *observes* power (ledger + sleep states).
    pub cap_fraction: Option<f64>,
    /// `Some(n)`: soft cap — once more than `n` other jobs wait, an
    /// over-budget start is admitted (at the most frugal gear) and
    /// recorded as a violation. `None`: hard cap.
    pub soft_wq_escape: Option<usize>,
    /// The idle sleep-state ladder ([`SleepConfig::none`] to disable).
    pub sleep: SleepConfig,
    /// `Some`: run the paper's BSLD-threshold frequency policy under the
    /// cap. `None`: fixed top gear (the no-DVFS baseline, capped).
    pub policy: Option<PowerAwareConfig>,
}

impl PowerCapConfig {
    /// No budget, no sleeping, no DVFS: baseline scheduling with the
    /// power ledger recording.
    pub fn observe_only() -> Self {
        PowerCapConfig {
            cap_fraction: None,
            soft_wq_escape: None,
            sleep: SleepConfig::none(),
            policy: None,
        }
    }

    /// A hard cap at `fraction` of peak draw (no sleeping, no DVFS).
    pub fn hard(fraction: f64) -> Self {
        PowerCapConfig {
            cap_fraction: Some(fraction),
            ..Self::observe_only()
        }
    }

    /// Adds a sleep ladder (builder style).
    pub fn with_sleep(mut self, sleep: SleepConfig) -> Self {
        self.sleep = sleep;
        self
    }

    /// Runs the BSLD-threshold policy under the cap (builder style).
    pub fn with_policy(mut self, policy: PowerAwareConfig) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Turns the cap soft with the given queue-depth escape (builder
    /// style).
    pub fn with_soft_escape(mut self, wq_escape: usize) -> Self {
        self.soft_wq_escape = Some(wq_escape);
        self
    }
}

/// A power-capped simulation result: the usual metrics plus the power
/// report (series, energy integral, enforcement and sleep counters).
#[derive(Debug, Clone)]
pub struct PowerCappedResult {
    /// Metrics, outcomes and trace, as from any other run.
    pub run: RunResult,
    /// The power side: step series, integral, peak, counters.
    pub power: PowerReport,
}

/// A configured machine + models, ready to run workloads.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The machine description.
    pub cluster: Cluster,
    /// The machine's power model: one or more subsystem rails (the
    /// default is a single CPU rail carrying the paper's model).
    pub power: RailSet,
    /// The β execution-time model (dilation).
    pub time_model: BetaModel,
    /// Engine options (backfilling on, tracing off by default).
    pub engine: EngineConfig,
}

impl Simulator {
    /// The paper's setup for a machine of `cpus` processors: Table 2 gear
    /// set, 25 % static share, 2.5 activity ratio, β = 0.5 dilation, EASY
    /// backfilling.
    pub fn paper_default(name: &str, cpus: u32) -> Simulator {
        let gears = GearSet::paper();
        Simulator {
            cluster: Cluster::new(name, cpus, gears.clone()),
            power: RailSet::cpu(Box::new(PaperDvfs::paper(gears.clone()))),
            time_model: BetaModel::new(gears),
            engine: EngineConfig::default(),
        }
    }

    /// A simulator over an explicit cluster (custom gear sets).
    pub fn with_cluster(cluster: Cluster) -> Simulator {
        let gears = cluster.gears.clone();
        Simulator {
            cluster,
            power: RailSet::cpu(Box::new(PaperDvfs::paper(gears.clone()))),
            time_model: BetaModel::new(gears),
            engine: EngineConfig::default(),
        }
    }

    /// The same simulator on a machine enlarged by `percent` % (Section
    /// 5.2's study).
    pub fn enlarged(&self, percent: u32) -> Simulator {
        Simulator {
            cluster: self.cluster.enlarged(percent),
            power: self.power.clone(),
            time_model: self.time_model.clone(),
            engine: self.engine.clone(),
        }
    }

    /// Enables schedule tracing (builder style).
    pub fn with_trace(mut self) -> Simulator {
        self.engine.collect_trace = true;
        self
    }

    /// Disables backfilling (FCFS ablation, builder style).
    pub fn without_backfill(mut self) -> Simulator {
        self.engine.backfill = false;
        self
    }

    /// Switches to conservative backfilling (builder style): every queued
    /// job holds a reservation instead of only the head.
    pub fn with_conservative(mut self) -> Simulator {
        self.engine.mode = bsld_sched::SchedMode::Conservative;
        self
    }

    /// Overrides the resource selection policy (builder style). The paper
    /// uses First Fit; contiguous selection models partition-constrained
    /// machines.
    pub fn with_selection(mut self, selection: bsld_cluster::SelectionPolicy) -> Simulator {
        self.engine.selection = selection;
        self
    }

    /// Enables the dynamic-boost extension (builder style).
    pub fn with_boost(mut self, wq_limit: usize) -> Simulator {
        self.engine.boost = Some(BoostConfig { wq_limit });
        self
    }

    /// Disables the incremental scheduling hot path (builder style),
    /// forcing a full profile rebuild on every pass. Outcomes are
    /// bit-identical either way; this is the A/B oracle for verification
    /// and benchmarking.
    pub fn with_full_rescan(mut self) -> Simulator {
        self.engine.incremental = false;
        self
    }

    /// Runs `jobs` under an arbitrary frequency policy.
    pub fn run_with_policy<P: FrequencyPolicy + ?Sized>(
        &self,
        jobs: &[Job],
        policy: &P,
    ) -> Result<RunResult, SimError> {
        let res = simulate(&self.cluster, jobs, policy, &self.time_model, &self.engine)?;
        let metrics = RunMetrics::compute(
            &res.outcomes,
            &self.power,
            self.cluster.cpus,
            self.time_model.gears().len(),
        );
        Ok(RunResult {
            metrics,
            outcomes: res.outcomes,
            trace: res.trace,
            pass_stats: res.stats,
        })
    }

    /// EASY backfilling with every job at the top gear — the paper's
    /// no-DVFS baseline. Thin shim over the scenario execution path
    /// ([`crate::scenario::PolicySpec::Baseline`]).
    pub fn run_baseline(&self, jobs: &[Job]) -> Result<RunResult, SimError> {
        scenario::execute(self, jobs, &PolicySpec::Baseline, &PowerSpec::off()).map(|r| r.run)
    }

    /// EASY backfilling with the paper's BSLD-threshold frequency
    /// assignment. Thin shim over the scenario execution path.
    pub fn run_power_aware(
        &self,
        jobs: &[Job],
        cfg: &PowerAwareConfig,
    ) -> Result<RunResult, SimError> {
        scenario::execute(self, jobs, &PolicySpec::from(*cfg), &PowerSpec::off()).map(|r| r.run)
    }

    /// Runs `jobs` with cluster power as a first-class signal: a
    /// [`bsld_powercap::PowerLedger`] tracks instantaneous draw, an idle
    /// manager applies `cfg.sleep`, and `cfg.cap_fraction` (if any) is
    /// enforced on every start and boost decision. Thin shim over the
    /// scenario execution path.
    ///
    /// Fails with [`SimError::Stalled`] when a hard budget is infeasible
    /// for the workload (some job cannot run even alone, down-geared, on
    /// an otherwise sleeping machine).
    pub fn run_power_capped(
        &self,
        jobs: &[Job],
        cfg: &PowerCapConfig,
    ) -> Result<PowerCappedResult, SimError> {
        let policy = match &cfg.policy {
            None => PolicySpec::Baseline,
            Some(pa) => PolicySpec::from(*pa),
        };
        let power = PowerSpec {
            cap_fraction: cfg.cap_fraction,
            soft_wq_escape: cfg.soft_wq_escape,
            sleep: scenario::SleepSpec::Custom(cfg.sleep.clone()),
            boost: None,
            observe: true,
            model: None,
        };
        scenario::execute(self, jobs, &policy, &power).map(|r| PowerCappedResult {
            run: r.run,
            // audit:allow(R1): observe=true forces power instrumentation on this path
            power: r.power.expect("instrumented run always reports power"),
        })
    }

    /// The power-instrumented execution kernel: runs `jobs` under an
    /// arbitrary frequency policy with a [`bsld_powercap::PowerLedger`],
    /// the `sleep` ladder and an optional budget (`cap_fraction` of peak
    /// draw; `soft_wq_escape` turns it soft). This is the single path all
    /// capped/observed runs go through.
    pub fn run_power_capped_with<P: FrequencyPolicy + ?Sized>(
        &self,
        jobs: &[Job],
        policy: &P,
        cap_fraction: Option<f64>,
        soft_wq_escape: Option<usize>,
        sleep: &SleepConfig,
    ) -> Result<PowerCappedResult, SimError> {
        let cap = match (cap_fraction, soft_wq_escape) {
            (None, _) => PowerCap::Uncapped,
            (Some(f), None) => PowerCap::Hard {
                budget: f * PowerCapPolicy::peak_draw(&self.power, self.cluster.cpus),
            },
            (Some(f), Some(wq_escape)) => PowerCap::Soft {
                budget: f * PowerCapPolicy::peak_draw(&self.power, self.cluster.cpus),
                wq_escape,
            },
        };
        let mut hook =
            PowerCapPolicy::with_rails(&self.power, self.cluster.cpus, cap, sleep.clone());
        if let Some(sink) = &self.engine.sink {
            // The engine and its power hook share one sink, so sleep
            // transitions interleave with scheduler events in sim-time
            // order.
            hook = hook.with_sink(sink.clone());
        }
        let res = simulate_with_hook(
            &self.cluster,
            jobs,
            policy,
            &self.time_model,
            &self.engine,
            &mut hook,
        )?;
        let metrics = RunMetrics::compute(
            &res.outcomes,
            &self.power,
            self.cluster.cpus,
            self.time_model.gears().len(),
        );
        let power = hook.into_report(res.makespan.as_secs());
        Ok(PowerCappedResult {
            run: RunResult {
                metrics,
                outcomes: res.outcomes,
                trace: res.trace,
                pass_stats: res.stats,
            },
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WqThreshold;
    use bsld_sched::validate_schedule;
    use bsld_workload::profiles::TraceProfile;

    fn small_workload() -> bsld_workload::Workload {
        TraceProfile::sdsc_blue().scaled_cpus(64).generate(42, 300)
    }

    #[test]
    fn baseline_runs_and_validates() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let res = sim.run_baseline(&w.jobs).unwrap();
        assert_eq!(res.outcomes.len(), w.jobs.len());
        validate_schedule(&res.outcomes, w.cpus).unwrap();
        assert_eq!(res.metrics.reduced_jobs, 0, "baseline never reduces");
        assert!(res.metrics.avg_bsld >= 1.0);
    }

    #[test]
    fn power_aware_saves_energy_on_light_load() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let base = sim.run_baseline(&w.jobs).unwrap();
        let cfg = PowerAwareConfig {
            bsld_threshold: 3.0,
            wq_threshold: WqThreshold::NoLimit,
        };
        let dvfs = sim.run_power_aware(&w.jobs, &cfg).unwrap();
        validate_schedule(&dvfs.outcomes, w.cpus).unwrap();
        assert!(dvfs.metrics.reduced_jobs > 0, "some jobs must be reduced");
        assert!(
            dvfs.metrics.energy.computational < base.metrics.energy.computational,
            "DVFS must cut computational energy: {} vs {}",
            dvfs.metrics.energy.computational,
            base.metrics.energy.computational
        );
        assert!(
            dvfs.metrics.avg_bsld >= base.metrics.avg_bsld,
            "frequency scaling cannot improve BSLD"
        );
    }

    #[test]
    fn wq_zero_is_more_conservative_than_no_limit() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let strict = sim
            .run_power_aware(
                &w.jobs,
                &PowerAwareConfig {
                    bsld_threshold: 2.0,
                    wq_threshold: WqThreshold::Limit(0),
                },
            )
            .unwrap();
        let loose = sim
            .run_power_aware(
                &w.jobs,
                &PowerAwareConfig {
                    bsld_threshold: 2.0,
                    wq_threshold: WqThreshold::NoLimit,
                },
            )
            .unwrap();
        assert!(strict.metrics.reduced_jobs <= loose.metrics.reduced_jobs);
    }

    #[test]
    fn enlarged_machine_reduces_waits() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let orig = sim.run_baseline(&w.jobs).unwrap();
        let big = sim.enlarged(50).run_baseline(&w.jobs).unwrap();
        assert!(big.metrics.avg_wait_secs <= orig.metrics.avg_wait_secs);
        assert!(big.metrics.avg_bsld <= orig.metrics.avg_bsld);
    }

    #[test]
    fn trace_collection_toggle() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        assert!(sim.run_baseline(&w.jobs).unwrap().trace.is_empty());
        let traced = sim.clone().with_trace().run_baseline(&w.jobs).unwrap();
        assert!(!traced.trace.is_empty());
    }

    #[test]
    fn fcfs_ablation_waits_longer() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let easy = sim.run_baseline(&w.jobs).unwrap();
        let fcfs = sim
            .clone()
            .without_backfill()
            .run_baseline(&w.jobs)
            .unwrap();
        assert!(
            fcfs.metrics.avg_wait_secs >= easy.metrics.avg_wait_secs,
            "backfilling must not hurt average wait: {} vs {}",
            fcfs.metrics.avg_wait_secs,
            easy.metrics.avg_wait_secs
        );
    }

    #[test]
    fn power_capped_observe_only_matches_baseline_schedule() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let base = sim.run_baseline(&w.jobs).unwrap();
        let capped = sim
            .run_power_capped(&w.jobs, &PowerCapConfig::observe_only())
            .unwrap();
        // No budget, no sleeping, no DVFS: the schedule must be identical,
        // and the ledger's integral must equal the post-hoc idle-aware
        // energy report.
        assert_eq!(capped.run.outcomes, base.outcomes);
        let rel = capped.power.energy / base.metrics.energy.with_idle;
        assert!((rel - 1.0).abs() < 1e-9, "ledger vs post-hoc energy: {rel}");
        assert!(capped.power.peak > 0.0);
        assert_eq!(capped.power.budget, None);
        assert_eq!(capped.power.cap.deferrals, 0);
    }

    #[test]
    fn hard_cap_is_respected_at_every_step() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let cfg = PowerCapConfig::hard(0.6).with_policy(PowerAwareConfig {
            bsld_threshold: 2.0,
            wq_threshold: WqThreshold::NoLimit,
        });
        let capped = sim.run_power_capped(&w.jobs, &cfg).unwrap();
        validate_schedule(&capped.run.outcomes, w.cpus).unwrap();
        let budget = capped.power.budget.unwrap();
        for &(t, p) in &capped.power.series {
            assert!(p <= budget + 1e-6, "draw {p} over budget {budget} at t={t}");
        }
        assert!(capped.power.peak <= budget + 1e-6);
    }

    #[test]
    fn sleep_states_cut_idle_energy() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let plain = sim
            .run_power_capped(&w.jobs, &PowerCapConfig::observe_only())
            .unwrap();
        let sleeping = sim
            .run_power_capped(
                &w.jobs,
                &PowerCapConfig::observe_only()
                    .with_sleep(bsld_powercap::SleepConfig::paper_default()),
            )
            .unwrap();
        // Same schedule (sleeping never defers anything)...
        assert_eq!(sleeping.run.outcomes, plain.run.outcomes);
        // ...but idle stretches now draw less despite wake penalties.
        assert!(
            sleeping.power.energy < plain.power.energy,
            "sleep must save energy: {} vs {}",
            sleeping.power.energy,
            plain.power.energy
        );
        assert!(sleeping.power.sleep.sleeps > 0);
        // Every wake corresponds to an earlier sleep transition.
        assert!(sleeping.power.sleep.wakes <= sleeping.power.sleep.sleeps);
    }

    #[test]
    fn infeasible_hard_cap_stalls() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        // A budget below the idle floor can never admit anything.
        let err = sim
            .run_power_capped(&w.jobs, &PowerCapConfig::hard(0.05))
            .unwrap_err();
        assert!(
            matches!(err, bsld_sched::SimError::Stalled { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn boost_limits_bsld_damage() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let cfg = PowerAwareConfig {
            bsld_threshold: 3.0,
            wq_threshold: WqThreshold::NoLimit,
        };
        let plain = sim.run_power_aware(&w.jobs, &cfg).unwrap();
        let boosted = sim
            .clone()
            .with_boost(4)
            .run_power_aware(&w.jobs, &cfg)
            .unwrap();
        validate_schedule(&boosted.outcomes, w.cpus).unwrap();
        // Boosting can only shorten runtimes of reduced jobs, so energy
        // goes up and performance improves (or stays).
        assert!(boosted.metrics.energy.computational >= plain.metrics.energy.computational);
    }
}
