//! The simulator facade.
//!
//! Bundles a cluster, the paper's power and time models and the scheduling
//! engine behind two calls: [`Simulator::run_baseline`] (EASY, no DVFS) and
//! [`Simulator::run_power_aware`] (EASY + the BSLD-threshold policy).

use bsld_cluster::{Cluster, GearSet};
use bsld_metrics::RunMetrics;
use bsld_model::{Job, JobOutcome};
use bsld_power::{BetaModel, PowerModel};
use bsld_sched::{
    simulate, BoostConfig, EngineConfig, FixedGearPolicy, FrequencyPolicy, SimError, TraceEvent,
};

use crate::policy::{BsldThresholdPolicy, PowerAwareConfig};

/// A simulation result: the paper's metrics plus the raw outcomes.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Summary metrics (BSLD, waits, energy, reduced jobs, ...).
    pub metrics: RunMetrics,
    /// Raw per-job outcomes (completion order).
    pub outcomes: Vec<JobOutcome>,
    /// Scheduling trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

/// A configured machine + models, ready to run workloads.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The machine description.
    pub cluster: Cluster,
    /// The CPU power model (energy accounting).
    pub power: PowerModel,
    /// The β execution-time model (dilation).
    pub time_model: BetaModel,
    /// Engine options (backfilling on, tracing off by default).
    pub engine: EngineConfig,
}

impl Simulator {
    /// The paper's setup for a machine of `cpus` processors: Table 2 gear
    /// set, 25 % static share, 2.5 activity ratio, β = 0.5 dilation, EASY
    /// backfilling.
    pub fn paper_default(name: &str, cpus: u32) -> Simulator {
        let gears = GearSet::paper();
        Simulator {
            cluster: Cluster::new(name, cpus, gears.clone()),
            power: PowerModel::paper(gears.clone()),
            time_model: BetaModel::new(gears),
            engine: EngineConfig::default(),
        }
    }

    /// A simulator over an explicit cluster (custom gear sets).
    pub fn with_cluster(cluster: Cluster) -> Simulator {
        let gears = cluster.gears.clone();
        Simulator {
            cluster,
            power: PowerModel::paper(gears.clone()),
            time_model: BetaModel::new(gears),
            engine: EngineConfig::default(),
        }
    }

    /// The same simulator on a machine enlarged by `percent` % (Section
    /// 5.2's study).
    pub fn enlarged(&self, percent: u32) -> Simulator {
        Simulator {
            cluster: self.cluster.enlarged(percent),
            power: self.power.clone(),
            time_model: self.time_model.clone(),
            engine: self.engine.clone(),
        }
    }

    /// Enables schedule tracing (builder style).
    pub fn with_trace(mut self) -> Simulator {
        self.engine.collect_trace = true;
        self
    }

    /// Disables backfilling (FCFS ablation, builder style).
    pub fn without_backfill(mut self) -> Simulator {
        self.engine.backfill = false;
        self
    }

    /// Switches to conservative backfilling (builder style): every queued
    /// job holds a reservation instead of only the head.
    pub fn with_conservative(mut self) -> Simulator {
        self.engine.mode = bsld_sched::SchedMode::Conservative;
        self
    }

    /// Overrides the resource selection policy (builder style). The paper
    /// uses First Fit; contiguous selection models partition-constrained
    /// machines.
    pub fn with_selection(mut self, selection: bsld_cluster::SelectionPolicy) -> Simulator {
        self.engine.selection = selection;
        self
    }

    /// Enables the dynamic-boost extension (builder style).
    pub fn with_boost(mut self, wq_limit: usize) -> Simulator {
        self.engine.boost = Some(BoostConfig { wq_limit });
        self
    }

    /// Runs `jobs` under an arbitrary frequency policy.
    pub fn run_with_policy<P: FrequencyPolicy + ?Sized>(
        &self,
        jobs: &[Job],
        policy: &P,
    ) -> Result<RunResult, SimError> {
        let res = simulate(&self.cluster, jobs, policy, &self.time_model, &self.engine)?;
        let metrics = RunMetrics::compute(
            &res.outcomes,
            &self.power,
            self.cluster.cpus,
            self.time_model.gears().len(),
        );
        Ok(RunResult { metrics, outcomes: res.outcomes, trace: res.trace })
    }

    /// EASY backfilling with every job at the top gear — the paper's
    /// no-DVFS baseline.
    pub fn run_baseline(&self, jobs: &[Job]) -> Result<RunResult, SimError> {
        let policy = FixedGearPolicy::new(self.time_model.gears().top());
        self.run_with_policy(jobs, &policy)
    }

    /// EASY backfilling with the paper's BSLD-threshold frequency
    /// assignment.
    pub fn run_power_aware(
        &self,
        jobs: &[Job],
        cfg: &PowerAwareConfig,
    ) -> Result<RunResult, SimError> {
        let policy = BsldThresholdPolicy::new(*cfg);
        self.run_with_policy(jobs, &policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WqThreshold;
    use bsld_sched::validate_schedule;
    use bsld_workload::profiles::TraceProfile;

    fn small_workload() -> bsld_workload::Workload {
        TraceProfile::sdsc_blue().scaled_cpus(64).generate(42, 300)
    }

    #[test]
    fn baseline_runs_and_validates() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let res = sim.run_baseline(&w.jobs).unwrap();
        assert_eq!(res.outcomes.len(), w.jobs.len());
        validate_schedule(&res.outcomes, w.cpus).unwrap();
        assert_eq!(res.metrics.reduced_jobs, 0, "baseline never reduces");
        assert!(res.metrics.avg_bsld >= 1.0);
    }

    #[test]
    fn power_aware_saves_energy_on_light_load() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let base = sim.run_baseline(&w.jobs).unwrap();
        let cfg = PowerAwareConfig { bsld_threshold: 3.0, wq_threshold: WqThreshold::NoLimit };
        let dvfs = sim.run_power_aware(&w.jobs, &cfg).unwrap();
        validate_schedule(&dvfs.outcomes, w.cpus).unwrap();
        assert!(dvfs.metrics.reduced_jobs > 0, "some jobs must be reduced");
        assert!(
            dvfs.metrics.energy.computational < base.metrics.energy.computational,
            "DVFS must cut computational energy: {} vs {}",
            dvfs.metrics.energy.computational,
            base.metrics.energy.computational
        );
        assert!(
            dvfs.metrics.avg_bsld >= base.metrics.avg_bsld,
            "frequency scaling cannot improve BSLD"
        );
    }

    #[test]
    fn wq_zero_is_more_conservative_than_no_limit() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let strict = sim
            .run_power_aware(
                &w.jobs,
                &PowerAwareConfig { bsld_threshold: 2.0, wq_threshold: WqThreshold::Limit(0) },
            )
            .unwrap();
        let loose = sim
            .run_power_aware(
                &w.jobs,
                &PowerAwareConfig { bsld_threshold: 2.0, wq_threshold: WqThreshold::NoLimit },
            )
            .unwrap();
        assert!(strict.metrics.reduced_jobs <= loose.metrics.reduced_jobs);
    }

    #[test]
    fn enlarged_machine_reduces_waits() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let orig = sim.run_baseline(&w.jobs).unwrap();
        let big = sim.enlarged(50).run_baseline(&w.jobs).unwrap();
        assert!(big.metrics.avg_wait_secs <= orig.metrics.avg_wait_secs);
        assert!(big.metrics.avg_bsld <= orig.metrics.avg_bsld);
    }

    #[test]
    fn trace_collection_toggle() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        assert!(sim.run_baseline(&w.jobs).unwrap().trace.is_empty());
        let traced = sim.clone().with_trace().run_baseline(&w.jobs).unwrap();
        assert!(!traced.trace.is_empty());
    }

    #[test]
    fn fcfs_ablation_waits_longer() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let easy = sim.run_baseline(&w.jobs).unwrap();
        let fcfs = sim.clone().without_backfill().run_baseline(&w.jobs).unwrap();
        assert!(
            fcfs.metrics.avg_wait_secs >= easy.metrics.avg_wait_secs,
            "backfilling must not hurt average wait: {} vs {}",
            fcfs.metrics.avg_wait_secs,
            easy.metrics.avg_wait_secs
        );
    }

    #[test]
    fn boost_limits_bsld_damage() {
        let w = small_workload();
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let cfg = PowerAwareConfig { bsld_threshold: 3.0, wq_threshold: WqThreshold::NoLimit };
        let plain = sim.run_power_aware(&w.jobs, &cfg).unwrap();
        let boosted = sim.clone().with_boost(4).run_power_aware(&w.jobs, &cfg).unwrap();
        validate_schedule(&boosted.outcomes, w.cpus).unwrap();
        // Boosting can only shorten runtimes of reduced jobs, so energy
        // goes up and performance improves (or stays).
        assert!(boosted.metrics.energy.computational >= plain.metrics.energy.computational);
    }
}
