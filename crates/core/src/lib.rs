//! The paper's contribution: BSLD-threshold driven power management.
//!
//! This crate contains:
//!
//! * [`BsldThresholdPolicy`] — the CPU frequency-assignment algorithm of
//!   Figures 1–2 of Etinski et al. 2010, implemented against the
//!   `bsld-sched` policy hook: a job is scheduled at the lowest gear whose
//!   *predicted BSLD* stays under `BSLD_threshold`, and only while no more
//!   than `WQ_threshold` jobs are waiting;
//! * [`Simulator`] — a one-stop facade wiring cluster, power model, β time
//!   model and scheduling engine; used by every example, test and
//!   experiment;
//! * [`scenario`] — the declarative layer on top: a serializable
//!   [`Scenario`] spec with one `run()`, plus [`ScenarioSet`] sweeps; the
//!   experiment harness and the CLI construct every run through it;
//! * [`campaign`] — replicated sweeps with per-cell mean ± 95 % CI,
//!   content-hash cell IDs, an incremental result manifest, per-unit
//!   wall-time budgets and resume;
//! * [`distrib`] — distributed campaigns: content-hash sharded workers
//!   appending per-worker manifests to a shared directory, merged into
//!   aggregates byte-identical to a single-process run;
//! * [`experiments`] — the harness that regenerates every table and figure
//!   of the paper's evaluation section (see `DESIGN.md` for the index);
//! * [`report`] — the one renderer of sweep results tables/CSV, shared by
//!   the CLI and the `bsld-serve` daemon so their replies are
//!   byte-identical.
//!
//! The `bsld-repro` binary exposing all of this on the command line lives
//! in `crates/cli` (so it can also depend on `bsld-serve`, which depends
//! on this crate).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod campaign;
pub mod distrib;
pub mod experiments;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod sim;

pub use campaign::{run_campaign, Campaign, CampaignOptions, CampaignOutcome, CellId};
pub use distrib::{merge_campaign, run_worker, MergeOutcome, Shard, WorkerOutcome};
pub use policy::{BsldThresholdPolicy, PowerAwareConfig, WqThreshold};
pub use report::{sweep_report, CellOutcome, SweepReport};
pub use scenario::{set_swf_in_memory, swf_in_memory, Scenario, ScenarioResult, ScenarioSet};
pub use sim::{PowerCapConfig, PowerCappedResult, RunResult, Simulator};
