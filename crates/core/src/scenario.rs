//! The declarative scenario API: one spec, one [`Scenario::run`],
//! serializable experiment files.
//!
//! The paper's evaluation is a matrix of scenarios — workload × policy ×
//! power regime × machine size — and every experiment used to re-wire the
//! [`Simulator`] by hand. A [`Scenario`] instead *describes* a run as plain
//! data, composed of typed sub-specs:
//!
//! * [`WorkloadSpec`] — a calibrated synthetic [`ProfileName`] (jobs, seed,
//!   optional rescaling and per-job β), or an SWF trace path with cleaning;
//! * [`ClusterSpec`] — machine enlargement and the DVFS [`GearSpec`];
//! * [`PolicySpec`] — baseline, a pinned gear, or the paper's
//!   BSLD-threshold policy;
//! * [`PowerSpec`] — power cap, sleep ladder, dynamic boost, power model
//!   selection ([`PowerModelSpec`]), ledger observation;
//! * [`EngineSpec`] — backfilling substrate, resource selection,
//!   incremental vs full-rescan engine, tracing;
//! * [`OutputSpec`] — artifact directory.
//!
//! [`Scenario::run`] executes the spec end to end and returns a unified
//! [`ScenarioResult`] (metrics + outcomes, plus the power report when the
//! run was power-instrumented). Scenarios serialize to a line-oriented
//! `key = value` text format ([`Scenario::render`] / [`Scenario::parse`]),
//! so experiment files are first-class artifacts, and a [`ScenarioSet`]
//! adds sweep axes that expand into a scenario grid run in parallel
//! through `bsld-par`.
//!
//! # Example: a synthetic sweep
//!
//! ```
//! use bsld_core::scenario::{Scenario, ScenarioSet, SweepAxis, WorkloadSpec, ProfileName};
//!
//! // Base spec: 120 SDSC-Blue-like jobs on a 64-cpu machine, seed 7.
//! let base = Scenario::synthetic("sweep", ProfileName::SdscBlue, 120, 7)
//!     .map_workload(|w| match w {
//!         WorkloadSpec::Synthetic { scale_cpus, .. } => *scale_cpus = Some(64),
//!         _ => {}
//!     });
//!
//! // Sweep the paper's BSLD thresholds; expansion yields one scenario each.
//! let set = ScenarioSet {
//!     base,
//!     axes: vec![SweepAxis::BsldThreshold(vec![1.5, 2.0, 3.0])],
//!     replications: 1,
//!     cell_budget_s: None,
//! };
//! let results = set.run(2).unwrap();
//! assert_eq!(results.len(), 3);
//! for (sc, res) in &results {
//!     // The spec round-trips through its text form...
//!     assert_eq!(Scenario::parse(&sc.render()).unwrap(), *sc);
//!     // ...and every run produced the full workload.
//!     assert_eq!(res.run.outcomes.len(), 120);
//! }
//! ```
//!
//! # Example: SWF replay under a power cap
//!
//! ```
//! use bsld_core::scenario::{PolicySpec, Scenario, SleepSpec, WorkloadSpec};
//! use bsld_core::WqThreshold;
//! use bsld_workload::profiles::TraceProfile;
//!
//! // Export a tiny calibrated trace as a real SWF file.
//! let swf = std::env::temp_dir().join(format!("bsld_scenario_doc_{}.swf", std::process::id()));
//! let w = TraceProfile::sdsc_blue().scaled_cpus(32).generate(11, 60);
//! std::fs::write(&swf, bsld_swf::write_swf(&w.to_swf())).unwrap();
//!
//! // Replay it under a 70 % power budget with the default sleep ladder.
//! let mut sc = Scenario::synthetic("replay", bsld_core::scenario::ProfileName::Ctc, 0, 0);
//! sc.workload = WorkloadSpec::Swf { path: swf.clone(), clean: true };
//! sc.policy = PolicySpec::BsldThreshold { th: 2.0, wq: WqThreshold::NoLimit };
//! sc.power.cap_fraction = Some(0.7);
//! sc.power.sleep = SleepSpec::Paper;
//!
//! let res = sc.run().unwrap();
//! let power = res.power.expect("capped runs carry a power report");
//! assert!(power.peak <= power.budget.unwrap() + 1e-9);
//! std::fs::remove_file(&swf).ok();
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use bsld_cluster::{Cluster, Gear, GearSet, SelectionPolicy};
use bsld_model::{GearId, Job};
use bsld_power::{
    Constant, Cubic, Empirical, Linear, PaperDvfs, PowerModel, Rail, RailKind, RailSet,
};
use bsld_powercap::{PowerReport, SleepConfig, SleepState};
use bsld_sched::{BoostConfig, FixedGearPolicy, SchedMode, SimError};
use bsld_workload::profiles::{BetaSpec, TraceProfile};
use bsld_workload::Workload;

use crate::policy::{BsldThresholdPolicy, PowerAwareConfig, WqThreshold};
use crate::sim::{RunResult, Simulator};

/// The five calibrated workloads of the paper, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileName {
    /// CTC SP2 (430 cpus).
    Ctc,
    /// SDSC SP2 (128 cpus, saturated).
    Sdsc,
    /// SDSC Blue Horizon (1 152 cpus).
    SdscBlue,
    /// LLNL Thunder (4 008 cpus).
    LlnlThunder,
    /// LLNL Atlas (9 216 cpus).
    LlnlAtlas,
}

impl ProfileName {
    /// All profiles, paper table order.
    pub const ALL: [ProfileName; 5] = [
        ProfileName::Ctc,
        ProfileName::Sdsc,
        ProfileName::SdscBlue,
        ProfileName::LlnlThunder,
        ProfileName::LlnlAtlas,
    ];

    /// The canonical short key used in scenario files and on the CLI.
    pub fn key(&self) -> &'static str {
        match self {
            ProfileName::Ctc => "ctc",
            ProfileName::Sdsc => "sdsc",
            ProfileName::SdscBlue => "blue",
            ProfileName::LlnlThunder => "thunder",
            ProfileName::LlnlAtlas => "atlas",
        }
    }

    /// The display name used in the paper's tables ("CTC", "SDSCBlue", ...).
    pub fn display_name(&self) -> &'static str {
        match self {
            ProfileName::Ctc => "CTC",
            ProfileName::Sdsc => "SDSC",
            ProfileName::SdscBlue => "SDSCBlue",
            ProfileName::LlnlThunder => "LLNLThunder",
            ProfileName::LlnlAtlas => "LLNLAtlas",
        }
    }

    /// Parses a workload name (canonical key or common aliases). The error
    /// message lists every valid name.
    pub fn parse(s: &str) -> Result<ProfileName, String> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "ctc" => ProfileName::Ctc,
            "sdsc" => ProfileName::Sdsc,
            "blue" | "sdscblue" => ProfileName::SdscBlue,
            "thunder" | "llnlthunder" => ProfileName::LlnlThunder,
            "atlas" | "llnlatlas" => ProfileName::LlnlAtlas,
            other => {
                return Err(format!(
                    "unknown workload: {other} (valid: ctc, sdsc, blue, thunder, atlas)"
                ))
            }
        })
    }

    /// Instantiates the calibrated generative model.
    pub fn profile(&self) -> TraceProfile {
        match self {
            ProfileName::Ctc => TraceProfile::ctc(),
            ProfileName::Sdsc => TraceProfile::sdsc(),
            ProfileName::SdscBlue => TraceProfile::sdsc_blue(),
            ProfileName::LlnlThunder => TraceProfile::llnl_thunder(),
            ProfileName::LlnlAtlas => TraceProfile::llnl_atlas(),
        }
    }
}

/// Where the jobs come from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A calibrated synthetic workload generated from a [`ProfileName`].
    Synthetic {
        /// Which calibrated profile.
        profile: ProfileName,
        /// Number of jobs to generate.
        jobs: usize,
        /// Master RNG seed.
        seed: u64,
        /// Rescale the profile to a machine of this many processors
        /// (`TraceProfile::scaled_cpus`) before generating.
        scale_cpus: Option<u32>,
        /// Override the profile's per-job β model.
        beta: Option<BetaSpec>,
    },
    /// A Standard Workload Format trace replayed from disk.
    Swf {
        /// Path to the `.swf` file.
        path: PathBuf,
        /// Apply the default cleaning pipeline (`bsld_swf::clean_trace`).
        clean: bool,
    },
}

/// A/B oracle hook: when raised, [`WorkloadSpec::build_with_abort`] loads
/// SWF traces through the original in-memory path (`read_to_string` →
/// parse → clean) instead of the streaming path. The two are bit-identical
/// — `tests/streaming_ab.rs` and the CI large-trace byte-diff prove it —
/// and this toggle exists precisely so that proof can keep running
/// end-to-end through the CLI. Not a [`WorkloadSpec`] field: the spec's
/// `Debug` form keys the serve daemon's workload cache, and a mere replay
/// mechanism must never produce a distinct cache identity.
static SWF_IN_MEMORY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces (or restores) the in-memory SWF load path for every subsequent
/// [`WorkloadSpec::build_with_abort`] in this process. See
/// [`swf_in_memory`].
pub fn set_swf_in_memory(enabled: bool) {
    SWF_IN_MEMORY.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

/// Whether the in-memory SWF load path is currently forced (A/B oracle
/// hook; the streaming path is the default).
pub fn swf_in_memory() -> bool {
    SWF_IN_MEMORY.load(std::sync::atomic::Ordering::SeqCst)
}

impl WorkloadSpec {
    /// Materialises the jobs (generation or trace replay).
    pub fn build(&self) -> Result<Workload, ScenarioError> {
        self.build_with_abort(None)
    }

    /// As [`WorkloadSpec::build`], polling `abort` during the SWF
    /// parse/clean phase.
    ///
    /// Archive traces run to millions of lines; a unit whose
    /// `cell_budget_s` expires while still *loading* its trace must stop
    /// here, not after the event loop finally starts. A raised flag maps to
    /// [`bsld_sched::SimError::Aborted`] so budget attribution upstream is
    /// identical to an in-simulation abort.
    pub fn build_with_abort(
        &self,
        abort: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<Workload, ScenarioError> {
        match self {
            WorkloadSpec::Synthetic {
                profile,
                jobs,
                seed,
                scale_cpus,
                beta,
            } => {
                let mut p = profile.profile();
                if let Some(cpus) = scale_cpus {
                    p = p.scaled_cpus(*cpus);
                }
                if let Some(b) = beta {
                    p = p.with_beta(*b);
                }
                Ok(p.generate(*seed, *jobs))
            }
            WorkloadSpec::Swf { path, clean } => {
                if abort.is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst)) {
                    return Err(ScenarioError::Sim(bsld_sched::SimError::Aborted));
                }
                let trace = if swf_in_memory() {
                    Self::load_swf_in_memory(path, *clean, abort)?
                } else {
                    Self::load_swf_streaming(path, *clean, abort)?
                };
                let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                Workload::from_swf_with_abort(name, &trace, abort)
                    .map_err(|_| ScenarioError::Sim(bsld_sched::SimError::Aborted))
            }
        }
    }

    /// Streaming SWF load: records flow straight from a [`std::io::BufRead`]
    /// through parse (+ clean when requested) without ever materialising
    /// the file's text, so peak memory is bounded by *surviving* records
    /// rather than the file size.
    fn load_swf_streaming(
        path: &std::path::Path,
        clean: bool,
        abort: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<bsld_swf::SwfTrace, ScenarioError> {
        use bsld_swf::{SwfStream, SwfStreamError};
        let file = std::fs::File::open(path)
            .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", path.display())))?;
        let reader = std::io::BufReader::new(file);
        let stream = SwfStream::with_abort(reader, abort);
        let map_parse = |e: bsld_swf::ParseError| match e.kind {
            bsld_swf::ParseErrorKind::Aborted => ScenarioError::Sim(bsld_sched::SimError::Aborted),
            bsld_swf::ParseErrorKind::Io { .. } => {
                ScenarioError::Io(format!("cannot read {}: {e}", path.display()))
            }
            _ => ScenarioError::Workload(e.to_string()),
        };
        if clean {
            let (trace, _summary) = bsld_swf::clean_swf_stream(
                stream,
                &bsld_swf::CleanConfig::default(),
            )
            .map_err(|e| match e {
                SwfStreamError::Parse(p) => map_parse(p),
                SwfStreamError::Clean(_) => ScenarioError::Sim(bsld_sched::SimError::Aborted),
            })?;
            Ok(trace)
        } else {
            stream.collect_trace().map_err(map_parse)
        }
    }

    /// The original `read_to_string` → parse → clean load path, kept as
    /// the A/B oracle for the streaming one (see [`set_swf_in_memory`]).
    /// Every error maps exactly as the streaming path maps it, so the two
    /// are indistinguishable from the outside.
    fn load_swf_in_memory(
        path: &std::path::Path,
        clean: bool,
        abort: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<bsld_swf::SwfTrace, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", path.display())))?;
        let mut trace = bsld_swf::parse_swf_with_abort(&text, abort).map_err(|e| {
            if e.kind == bsld_swf::ParseErrorKind::Aborted {
                ScenarioError::Sim(bsld_sched::SimError::Aborted)
            } else {
                ScenarioError::Workload(e.to_string())
            }
        })?;
        if clean {
            bsld_swf::clean_trace_with_abort(&mut trace, &bsld_swf::CleanConfig::default(), abort)
                .map_err(|_| ScenarioError::Sim(bsld_sched::SimError::Aborted))?;
        }
        Ok(trace)
    }
}

/// The machine's DVFS gear set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GearSpec {
    /// The paper's Table 2 gear set (6 gears, 0.8–2.3 GHz).
    Paper,
    /// `n` gears linearly interpolating the paper's frequency/voltage
    /// range (the gear-granularity ablation). Values below 2 behave as 2
    /// everywhere: [`GearSpec::build`] clamps, and the text format
    /// renders/parses the clamped value.
    Interpolated(u8),
}

impl GearSpec {
    /// Builds the gear set.
    pub fn build(&self) -> GearSet {
        match self {
            GearSpec::Paper => GearSet::paper(),
            GearSpec::Interpolated(n) => {
                let n = (*n).max(2) as usize;
                let gears = (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        Gear {
                            freq_ghz: 0.8 + t * 1.5,
                            voltage: 1.0 + t * 0.5,
                        }
                    })
                    .collect();
                // audit:allow(R1): interpolated gears are clamped to >= 2 strictly increasing entries
                GearSet::new(gears).expect("interpolated set is valid")
            }
        }
    }
}

/// Machine description knobs applied on top of the workload's size.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Enlarge the machine by this percentage (Section 5.2's study;
    /// 0 = original size).
    pub enlarge_pct: u32,
    /// The DVFS gear set.
    pub gears: GearSpec,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            enlarge_pct: 0,
            gears: GearSpec::Paper,
        }
    }
}

/// The frequency policy of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// Every job at the top gear — the paper's no-DVFS baseline.
    Baseline,
    /// Every job pinned to one gear index (sensitivity studies).
    FixedGear(u8),
    /// The paper's BSLD-threshold frequency assignment.
    BsldThreshold {
        /// `BSLD_threshold`.
        th: f64,
        /// `WQ_threshold`.
        wq: WqThreshold,
    },
}

impl From<PowerAwareConfig> for PolicySpec {
    fn from(cfg: PowerAwareConfig) -> PolicySpec {
        PolicySpec::BsldThreshold {
            th: cfg.bsld_threshold,
            wq: cfg.wq_threshold,
        }
    }
}

/// The idle sleep ladder of a power-instrumented run.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SleepSpec {
    /// No sleep states.
    #[default]
    None,
    /// The default two-state nap/deep ladder
    /// ([`SleepConfig::paper_default`]).
    Paper,
    /// An explicit ladder.
    Custom(SleepConfig),
}

impl SleepSpec {
    /// Resolves to the concrete ladder.
    pub fn build(&self) -> SleepConfig {
        match self {
            SleepSpec::None => SleepConfig::none(),
            SleepSpec::Paper => SleepConfig::paper_default(),
            SleepSpec::Custom(cfg) => cfg.clone(),
        }
    }
}

/// Which power model prices the run (the `model =` key).
///
/// `None` in [`PowerSpec::model`] keeps the legacy machine layout — a
/// single CPU rail carrying the paper's DVFS model — and renders no
/// `model` line, so pre-existing scenario files (and their campaign cell
/// ids) are untouched. `Some` selects the CPU-rail model and switches the
/// machine to the three-rail layout (CPU + memory + interconnect), making
/// per-rail energy available in the power report. Every alternative CPU
/// model is anchored to the paper model's endpoints (same idle draw, same
/// top-gear draw), so the models differ only in the shape of the curve
/// between them.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerModelSpec {
    /// The paper's DVFS model ([`bsld_power::PaperDvfs`]): `A·C·f·V²`
    /// dynamic plus `α·V` static power.
    Paper,
    /// Energy-unproportional extreme: the top-gear draw at every gear and
    /// utilization ([`bsld_power::Constant`]).
    Constant,
    /// Energy-proportional ramp from idle to top-gear draw
    /// ([`bsld_power::Linear`]).
    Linear,
    /// Cubic frequency scaling between the same endpoints
    /// ([`bsld_power::Cubic`]).
    Cubic,
    /// Piecewise-linear curve from a `(utilization, watts)` CSV file
    /// ([`bsld_power::Empirical`]), read when the simulator is built.
    Empirical(PathBuf),
}

impl PowerModelSpec {
    /// The text-format value (`model = <this>`).
    pub fn render(&self) -> String {
        match self {
            PowerModelSpec::Paper => "paper".into(),
            PowerModelSpec::Constant => "constant".into(),
            PowerModelSpec::Linear => "linear".into(),
            PowerModelSpec::Cubic => "cubic".into(),
            PowerModelSpec::Empirical(p) => {
                format!("empirical:{}", line_safe(&p.display().to_string()))
            }
        }
    }

    /// Short cell-name suffix used by [`SweepAxis::Model`].
    pub fn label(&self) -> String {
        match self {
            PowerModelSpec::Empirical(p) => {
                let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("csv");
                format!("emp-{}", line_safe(stem))
            }
            other => other.render(),
        }
    }

    /// Parses one model value (the `none` keyword is handled by the key
    /// parser, not here).
    pub fn parse(s: &str) -> Result<PowerModelSpec, String> {
        match s {
            "paper" => Ok(PowerModelSpec::Paper),
            "constant" => Ok(PowerModelSpec::Constant),
            "linear" => Ok(PowerModelSpec::Linear),
            "cubic" => Ok(PowerModelSpec::Cubic),
            other => {
                if let Some(path) = other.strip_prefix("empirical:") {
                    if path.is_empty() {
                        return Err("empirical model needs a CSV path".into());
                    }
                    Ok(PowerModelSpec::Empirical(PathBuf::from(path)))
                } else {
                    Err(format!(
                        "bad model {other:?} (paper | constant | linear | cubic | empirical:<csv>)"
                    ))
                }
            }
        }
    }
}

/// Cluster-power treatment: cap, sleep states, boost, model, observation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerSpec {
    /// Cluster power budget as a fraction of peak draw (`None` = no
    /// budget).
    pub cap_fraction: Option<f64>,
    /// `Some(n)`: the cap turns soft once more than `n` other jobs wait.
    pub soft_wq_escape: Option<usize>,
    /// The idle sleep ladder.
    pub sleep: SleepSpec,
    /// Dynamic-boost extension: boost running reduced jobs to the top gear
    /// whenever more than this many jobs wait.
    pub boost: Option<usize>,
    /// The power model pricing the run (`None` = the legacy single-rail
    /// paper model; `Some` selects the CPU model and enables the
    /// three-rail machine layout with per-rail energy attribution).
    pub model: Option<PowerModelSpec>,
    /// Record the power ledger (and return a [`PowerReport`]) even without
    /// a cap or sleep states.
    pub observe: bool,
}

impl PowerSpec {
    /// No power instrumentation at all (the plain scheduling path).
    pub fn off() -> PowerSpec {
        PowerSpec::default()
    }

    /// Whether the run takes the power-instrumented path (ledger + idle
    /// manager + cap enforcement) and returns a [`PowerReport`]. An empty
    /// custom ladder counts as no sleeping, matching how the text format
    /// normalises it to `none`. An explicit model selection instruments
    /// the run — per-rail energy only exists in the ledger.
    pub fn instrumented(&self) -> bool {
        self.observe
            || self.cap_fraction.is_some()
            || self.model.is_some()
            || self.sleep.build().is_enabled()
    }
}

/// Scheduling-engine knobs (a declarative mirror of
/// [`bsld_sched::EngineConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Queueing discipline.
    pub mode: SchedMode,
    /// EASY backfilling on (`false` = plain FCFS).
    pub backfill: bool,
    /// The incremental hot path (`false` = full-rescan oracle).
    pub incremental: bool,
    /// Resource selection policy.
    pub selection: SelectionPolicy,
    /// Collect a scheduling trace.
    pub trace: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            mode: SchedMode::Easy,
            backfill: true,
            incremental: true,
            selection: SelectionPolicy::FirstFit,
            trace: false,
        }
    }
}

/// Artifact outputs.
///
/// The scenario itself is side-effect-free: [`Scenario::run`] performs no
/// file I/O. This spec is advice to whatever *drives* the scenario — the
/// CLI's `run` subcommand writes its `scenario_results.csv` into
/// `out_dir`, and custom harnesses can consume it the same way.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSpec {
    /// Directory for the driver's CSV artifacts (`None` = don't write).
    pub out_dir: Option<PathBuf>,
}

/// A complete, serializable description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (labels tables, CSV rows and expanded sweep cells).
    pub name: String,
    /// Job source.
    pub workload: WorkloadSpec,
    /// Machine knobs.
    pub cluster: ClusterSpec,
    /// Frequency policy.
    pub policy: PolicySpec,
    /// Power treatment.
    pub power: PowerSpec,
    /// Engine knobs.
    pub engine: EngineSpec,
    /// Outputs.
    pub output: OutputSpec,
}

/// The unified result of [`Scenario::run`]: every run yields the usual
/// metrics/outcomes; power-instrumented runs additionally carry the
/// [`PowerReport`].
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Metrics, outcomes, trace and engine counters.
    pub run: RunResult,
    /// The power side (`Some` iff [`PowerSpec::instrumented`]).
    pub power: Option<PowerReport>,
}

/// Everything that can go wrong building, parsing or running a scenario.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// A scenario file failed to parse.
    Parse {
        /// 1-based line number (0 for file-level errors).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The workload could not be built (bad SWF, bad profile).
    Workload(String),
    /// File I/O failed.
    Io(String),
    /// The simulation itself failed (e.g. an infeasible hard cap).
    Sim(SimError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } if *line > 0 => {
                write!(f, "scenario parse error at line {line}: {msg}")
            }
            ScenarioError::Parse { msg, .. } => write!(f, "scenario parse error: {msg}"),
            ScenarioError::Workload(msg) => write!(f, "workload error: {msg}"),
            ScenarioError::Io(msg) => write!(f, "io error: {msg}"),
            ScenarioError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

impl Scenario {
    /// A scenario over a synthetic workload with every other spec at its
    /// default: paper gears, original size, baseline policy, no power
    /// instrumentation, EASY incremental engine, no outputs.
    pub fn synthetic(
        name: impl Into<String>,
        profile: ProfileName,
        jobs: usize,
        seed: u64,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            workload: WorkloadSpec::Synthetic {
                profile,
                jobs,
                seed,
                scale_cpus: None,
                beta: None,
            },
            cluster: ClusterSpec::default(),
            policy: PolicySpec::Baseline,
            power: PowerSpec::off(),
            engine: EngineSpec::default(),
            output: OutputSpec::default(),
        }
    }

    /// Applies `f` to the workload spec (builder-style convenience).
    pub fn map_workload(mut self, f: impl FnOnce(&mut WorkloadSpec)) -> Scenario {
        f(&mut self.workload);
        self
    }

    /// Materialises the workload described by the spec.
    pub fn build_workload(&self) -> Result<Workload, ScenarioError> {
        self.workload.build()
    }

    /// Builds the configured simulator for a materialised workload.
    ///
    /// Fails only when the power-model spec does (an unreadable or invalid
    /// empirical CSV) — everything else is infallible wiring.
    pub fn simulator(&self, w: &Workload) -> Result<Simulator, ScenarioError> {
        let gears = self.cluster.gears.build();
        let mut sim =
            Simulator::with_cluster(Cluster::new(&*w.cluster_name, w.cpus, gears.clone()));
        if self.cluster.enlarge_pct > 0 {
            sim = sim.enlarged(self.cluster.enlarge_pct);
        }
        sim.engine.mode = self.engine.mode;
        sim.engine.backfill = self.engine.backfill;
        sim.engine.incremental = self.engine.incremental;
        sim.engine.selection = self.engine.selection;
        sim.engine.collect_trace = self.engine.trace;
        sim.engine.boost = self.power.boost.map(|wq_limit| BoostConfig { wq_limit });
        if let Some(spec) = &self.power.model {
            sim.power = build_rails(spec, &gears)?;
        }
        Ok(sim)
    }

    /// Runs the scenario end to end: build the workload, configure the
    /// simulator, execute under the declared policy and power treatment.
    pub fn run(&self) -> Result<ScenarioResult, ScenarioError> {
        self.run_with_abort(None)
    }

    /// As [`Scenario::run`], but polls `abort` once per simulation event:
    /// raising the flag makes the run return
    /// [`bsld_sched::SimError::Aborted`] promptly instead of driving the
    /// workload to completion. The campaign layer pairs this with
    /// [`bsld_par::run_budgeted`] to enforce per-cell wall-time budgets
    /// without killing threads.
    pub fn run_with_abort(
        &self,
        abort: Option<&bsld_par::AbortFlag>,
    ) -> Result<ScenarioResult, ScenarioError> {
        // The workload build polls the same flag: an expired budget cancels
        // a multi-million-line SWF parse, not just the event loop.
        let w = self
            .workload
            .build_with_abort(abort.map(bsld_par::AbortFlag::as_atomic))?;
        let mut sim = self.simulator(&w)?;
        sim.engine.abort = abort.map(bsld_par::AbortFlag::handle);
        self.run_prepared(&sim, &w.jobs)
    }

    /// As [`Scenario::run`], but records the run's deterministic trace
    /// events into `sink` — the engine and its power hook share it, so
    /// scheduler and sleep-ladder events interleave in sim-time order.
    /// Attaching a sink changes nothing about the simulated outcome.
    pub fn run_with_sink(
        &self,
        sink: std::sync::Arc<dyn bsld_obs::TraceSink>,
    ) -> Result<ScenarioResult, ScenarioError> {
        let w = self.workload.build()?;
        let mut sim = self.simulator(&w)?;
        sim.engine.sink = Some(sink);
        self.run_prepared(&sim, &w.jobs)
    }

    /// As [`Scenario::run_with_abort`], with the wall-clock profiling
    /// plane attached: returns the phase breakdown (workload parse/build,
    /// simulator construction, event loop) alongside the result — also on
    /// failure, so budget-expired rows still record where the time went.
    /// The readings are provenance only (campaign-manifest columns); they
    /// never feed the simulated outcome.
    pub fn run_phased_with_abort(
        &self,
        abort: Option<&bsld_par::AbortFlag>,
    ) -> (Result<ScenarioResult, ScenarioError>, bsld_obs::PhaseSecs) {
        let mut phases = bsld_obs::PhaseSecs::default();
        let mut sw = bsld_obs::Stopwatch::start();
        let w = match self
            .workload
            .build_with_abort(abort.map(bsld_par::AbortFlag::as_atomic))
        {
            Ok(w) => w,
            Err(e) => {
                phases.parse_s = sw.lap_s();
                return (Err(e), phases);
            }
        };
        phases.parse_s = sw.lap_s();
        let mut sim = match self.simulator(&w) {
            Ok(s) => s,
            Err(e) => {
                phases.build_s = sw.lap_s();
                return (Err(e), phases);
            }
        };
        sim.engine.abort = abort.map(bsld_par::AbortFlag::handle);
        phases.build_s = sw.lap_s();
        let res = self.run_prepared(&sim, &w.jobs);
        phases.sim_s = sw.lap_s();
        (res, phases)
    }

    /// Runs the scenario's policy and power treatment on an already-built
    /// simulator and job list (the workload spec is not consulted).
    pub fn run_prepared(
        &self,
        sim: &Simulator,
        jobs: &[Job],
    ) -> Result<ScenarioResult, ScenarioError> {
        execute(sim, jobs, &self.policy, &self.power).map_err(ScenarioError::Sim)
    }
}

/// The single execution path every run goes through — the legacy
/// [`Simulator::run_baseline`] / [`Simulator::run_power_aware`] /
/// [`Simulator::run_power_capped`] entry points are thin shims over this.
pub(crate) fn execute(
    sim: &Simulator,
    jobs: &[Job],
    policy: &PolicySpec,
    power: &PowerSpec,
) -> Result<ScenarioResult, SimError> {
    let fixed;
    let bsld;
    let policy_obj: &dyn bsld_sched::FrequencyPolicy = match policy {
        PolicySpec::Baseline => {
            fixed = FixedGearPolicy::new(sim.time_model.gears().top());
            &fixed
        }
        PolicySpec::FixedGear(idx) => {
            let top = sim.time_model.gears().top();
            fixed = FixedGearPolicy::new(GearId((*idx).min(top.0)));
            &fixed
        }
        PolicySpec::BsldThreshold { th, wq } => {
            bsld = BsldThresholdPolicy::new(PowerAwareConfig {
                bsld_threshold: *th,
                wq_threshold: *wq,
            });
            &bsld
        }
    };
    if power.instrumented() {
        let res = sim.run_power_capped_with(
            jobs,
            policy_obj,
            power.cap_fraction,
            power.soft_wq_escape,
            &power.sleep.build(),
        )?;
        Ok(ScenarioResult {
            run: res.run,
            power: Some(res.power),
        })
    } else {
        let run = sim.run_with_policy(jobs, policy_obj)?;
        Ok(ScenarioResult { run, power: None })
    }
}

/// Runs scenarios in parallel over `bsld-par`, preserving input order.
pub fn run_many(
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<Result<ScenarioResult, ScenarioError>> {
    bsld_par::par_map(scenarios.to_vec(), threads, |s| s.run())
}

/// As [`run_many`], with one [`bsld_obs::BufferSink`] attached per
/// scenario. Returns the per-scenario trace events in **input order**:
/// each cell's engine runs single-threaded (its buffer order is a pure
/// function of the run) and the buffers are collected after the parallel
/// sweep, so the trace is byte-identical under any thread count.
pub fn run_many_traced(
    scenarios: &[Scenario],
    threads: usize,
) -> (
    Vec<Result<ScenarioResult, ScenarioError>>,
    Vec<Vec<bsld_obs::TraceEvent>>,
) {
    let sinks: Vec<std::sync::Arc<bsld_obs::BufferSink>> = scenarios
        .iter()
        .map(|_| bsld_obs::BufferSink::shared())
        .collect();
    let tasks: Vec<(Scenario, std::sync::Arc<bsld_obs::BufferSink>)> = scenarios
        .iter()
        .cloned()
        .zip(sinks.iter().cloned())
        .collect();
    let results = bsld_par::par_map(tasks, threads, |(s, sink)| s.run_with_sink(sink));
    let events = sinks.iter().map(|s| s.take()).collect();
    (results, events)
}

/// Memory-rail draw relative to the paper CPU model's endpoints
/// (Subramaniam & Feng measure DRAM at roughly a third of CPU draw; the
/// absolute scale cancels in every normalised report).
const MEM_RAIL_SCALE: f64 = 0.30;

/// Interconnect-rail draw relative to the paper CPU model's top-gear draw;
/// switches and NICs stay powered regardless of load, hence a constant.
const NET_RAIL_SCALE: f64 = 0.15;

/// Resolves a [`PowerModelSpec`] into the three-rail machine layout: the
/// selected CPU model (anchored to the paper model's idle/top endpoints),
/// a linear memory rail and a constant interconnect rail.
fn build_rails(spec: &PowerModelSpec, gears: &GearSet) -> Result<RailSet, ScenarioError> {
    let paper = PaperDvfs::paper(gears.clone());
    let idle = paper.p_idle();
    let full = paper.p_active(gears.top());
    let cpu: Box<dyn PowerModel> = match spec {
        PowerModelSpec::Paper => Box::new(paper),
        PowerModelSpec::Constant => Box::new(Constant::new(gears.clone(), full)),
        PowerModelSpec::Linear => Box::new(Linear::new(gears.clone(), idle, full)),
        PowerModelSpec::Cubic => Box::new(Cubic::new(gears.clone(), idle, full)),
        PowerModelSpec::Empirical(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", path.display())))?;
            Box::new(Empirical::from_csv_str(gears.clone(), &text).map_err(|e| {
                ScenarioError::Parse {
                    line: 0,
                    msg: format!("{}: {e}", path.display()),
                }
            })?)
        }
    };
    let rails = vec![
        Rail::new(RailKind::Cpu, cpu),
        Rail::new(
            RailKind::Memory,
            Box::new(Linear::new(
                gears.clone(),
                MEM_RAIL_SCALE * idle,
                MEM_RAIL_SCALE * full,
            )),
        ),
        Rail::new(
            RailKind::Interconnect,
            Box::new(Constant::new(gears.clone(), NET_RAIL_SCALE * full)),
        ),
    ];
    // audit:allow(R1): the static three-rail layout is structurally valid
    Ok(RailSet::new(rails).expect("the static three-rail layout is always valid"))
}

// ---------------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------------

/// One sweep dimension of a [`ScenarioSet`].
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Vary the synthetic workload profile.
    Profile(Vec<ProfileName>),
    /// Vary `BSLD_threshold` (forces the policy to BSLD-threshold; keeps
    /// the base `WQ_threshold`, defaulting to no limit).
    BsldThreshold(Vec<f64>),
    /// Vary `WQ_threshold` (forces the policy to BSLD-threshold; keeps the
    /// base threshold, defaulting to 2.0).
    Wq(Vec<WqThreshold>),
    /// Vary the power-cap fraction.
    CapFraction(Vec<f64>),
    /// Vary the machine enlargement.
    EnlargePct(Vec<u32>),
    /// Vary the workload seed.
    Seed(Vec<u64>),
    /// Vary the power model ([`PowerSpec::model`]); every cell gets an
    /// explicit model and therefore the three-rail machine layout with
    /// per-rail energy columns.
    Model(Vec<PowerModelSpec>),
    /// One cell per `.swf` file in a directory (sorted by file name, so
    /// expansion order — and therefore cell naming — is deterministic).
    /// Requires an SWF base workload; the base `swf_path` and `swf_clean`
    /// act as defaults, with each cell's path replaced by one trace file.
    /// The directory is read at expansion time.
    SwfDir(PathBuf),
}

impl SweepAxis {
    fn key(&self) -> &'static str {
        match self {
            SweepAxis::Profile(_) => "profile",
            SweepAxis::BsldThreshold(_) => "bsld_th",
            SweepAxis::Wq(_) => "wq",
            SweepAxis::CapFraction(_) => "cap",
            SweepAxis::EnlargePct(_) => "enlarge_pct",
            SweepAxis::Seed(_) => "seed",
            SweepAxis::Model(_) => "model",
            SweepAxis::SwfDir(_) => "swf_dir",
        }
    }

    fn len(&self) -> usize {
        match self {
            SweepAxis::Profile(v) => v.len(),
            SweepAxis::BsldThreshold(v) => v.len(),
            SweepAxis::Wq(v) => v.len(),
            SweepAxis::CapFraction(v) => v.len(),
            SweepAxis::EnlargePct(v) => v.len(),
            SweepAxis::Seed(v) => v.len(),
            SweepAxis::Model(v) => v.len(),
            // Resolved at expansion time (the directory is read there);
            // `expand` never consults `len` for this axis.
            SweepAxis::SwfDir(_) => 0,
        }
    }

    /// Applies value `i` of this axis to a scenario clone, appending a
    /// name suffix.
    fn apply(&self, sc: &mut Scenario, i: usize) -> Result<(), ScenarioError> {
        match self {
            SweepAxis::Profile(v) => {
                let p = v[i];
                match &mut sc.workload {
                    WorkloadSpec::Synthetic { profile, .. } => *profile = p,
                    WorkloadSpec::Swf { .. } => {
                        return Err(ScenarioError::Workload(
                            "sweep.profile cannot apply to an SWF workload".into(),
                        ))
                    }
                }
                sc.name.push('-');
                sc.name.push_str(p.key());
            }
            SweepAxis::BsldThreshold(v) => {
                let th = v[i];
                let wq = match sc.policy {
                    PolicySpec::BsldThreshold { wq, .. } => wq,
                    _ => WqThreshold::NoLimit,
                };
                sc.policy = PolicySpec::BsldThreshold { th, wq };
                sc.name.push_str(&format!("-th{th}"));
            }
            SweepAxis::Wq(v) => {
                let wq = v[i];
                let th = match sc.policy {
                    PolicySpec::BsldThreshold { th, .. } => th,
                    _ => 2.0,
                };
                sc.policy = PolicySpec::BsldThreshold { th, wq };
                sc.name.push_str(&format!("-wq{}", wq.label()));
            }
            SweepAxis::CapFraction(v) => {
                sc.power.cap_fraction = Some(v[i]);
                sc.name.push_str(&format!("-cap{}", v[i]));
            }
            SweepAxis::EnlargePct(v) => {
                sc.cluster.enlarge_pct = v[i];
                sc.name.push_str(&format!("-x{}", v[i]));
            }
            SweepAxis::Seed(v) => {
                match &mut sc.workload {
                    WorkloadSpec::Synthetic { seed, .. } => *seed = v[i],
                    WorkloadSpec::Swf { .. } => {
                        return Err(ScenarioError::Workload(
                            "sweep.seed cannot apply to an SWF workload".into(),
                        ))
                    }
                }
                sc.name.push_str(&format!("-s{}", v[i]));
            }
            SweepAxis::Model(v) => {
                sc.power.model = Some(v[i].clone());
                sc.name.push_str(&format!("-m{}", v[i].label()));
            }
            // Handled directly by `ScenarioSet::expand` (the axis values
            // are directory entries, resolved there).
            SweepAxis::SwfDir(_) => unreachable!("SwfDir is expanded by ScenarioSet::expand"),
        }
        Ok(())
    }
}

/// The `.swf` files of `dir`, sorted by file name — the deterministic cell
/// order of a [`SweepAxis::SwfDir`] expansion.
fn list_swf_files(dir: &Path) -> Result<Vec<PathBuf>, ScenarioError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", dir.display())))?;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", dir.display())))?;
        let path = entry.path();
        let is_swf = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.eq_ignore_ascii_case("swf"));
        if path.is_file() && is_swf {
            files.push(path);
        }
    }
    files.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    if files.is_empty() {
        return Err(ScenarioError::Workload(format!(
            "sweep.swf_dir: no .swf files in {}",
            dir.display()
        )));
    }
    Ok(files)
}

/// A base scenario plus sweep axes that expand into a scenario grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSet {
    /// The spec every cell starts from.
    pub base: Scenario,
    /// Sweep dimensions, expanded in order (first axis varies slowest).
    pub axes: Vec<SweepAxis>,
    /// Seed replications per expanded cell (`replications = N` in the text
    /// format, default 1). The campaign layer
    /// ([`crate::campaign`]) fans every cell out across `N` derived seeds
    /// and aggregates the per-cell metrics into mean ± 95 % CI; plain
    /// [`ScenarioSet::expand`]/[`ScenarioSet::run`] ignore the field.
    /// Values above 1 require a synthetic workload — an SWF replay is
    /// deterministic, so replicating it would just repeat one number.
    pub replications: u32,
    /// Per-unit wall-time budget in seconds (`cell_budget_s = X` in the
    /// text format, default none). The campaign layer runs every
    /// `(cell, replication)` unit under [`bsld_par::run_budgeted`]; a unit
    /// that exceeds the budget is aborted cooperatively and recorded as a
    /// `failed` manifest row with a reason, so one infeasible cell cannot
    /// stall a whole sweep. Plain (non-campaign) execution ignores it.
    pub cell_budget_s: Option<f64>,
}

impl ScenarioSet {
    /// A set containing exactly one scenario.
    pub fn single(base: Scenario) -> ScenarioSet {
        ScenarioSet {
            base,
            axes: Vec::new(),
            replications: 1,
            cell_budget_s: None,
        }
    }

    /// Expands the axes' cartesian product into concrete scenarios (the
    /// base alone when there are no axes). Repeated axes are an error —
    /// a later axis would overwrite the earlier one's value while both
    /// name suffixes stick, mislabelling every cell.
    pub fn expand(&self) -> Result<Vec<Scenario>, ScenarioError> {
        for (i, axis) in self.axes.iter().enumerate() {
            if self.axes[..i].iter().any(|a| a.key() == axis.key()) {
                return Err(ScenarioError::Parse {
                    line: 0,
                    msg: format!("duplicate sweep axis sweep.{}", axis.key()),
                });
            }
        }
        let mut out = vec![self.base.clone()];
        for axis in &self.axes {
            if let SweepAxis::SwfDir(dir) = axis {
                // The axis values are directory entries, resolved here
                // (sorted by file name): one cell per trace, each keeping
                // the base's cleaning flag. Only meaningful over an SWF
                // base — a synthetic base has no path to replace.
                if matches!(self.base.workload, WorkloadSpec::Synthetic { .. }) {
                    return Err(ScenarioError::Workload(
                        "sweep.swf_dir requires `workload = swf`".into(),
                    ));
                }
                let files = list_swf_files(dir)?;
                let mut next = Vec::with_capacity(out.len() * files.len());
                for sc in &out {
                    for file in &files {
                        let mut cell = sc.clone();
                        if let WorkloadSpec::Swf { path, .. } = &mut cell.workload {
                            path.clone_from(file);
                        }
                        let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                        cell.name.push('-');
                        cell.name.push_str(&line_safe(stem));
                        next.push(cell);
                    }
                }
                out = next;
                continue;
            }
            if axis.len() == 0 {
                return Err(ScenarioError::Parse {
                    line: 0,
                    msg: format!("sweep.{} has no values", axis.key()),
                });
            }
            let mut next = Vec::with_capacity(out.len() * axis.len());
            for sc in &out {
                for i in 0..axis.len() {
                    let mut cell = sc.clone();
                    axis.apply(&mut cell, i)?;
                    next.push(cell);
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Expands and runs every cell in parallel, returning `(scenario,
    /// result)` pairs in expansion order. The first failing cell aborts.
    pub fn run(&self, threads: usize) -> Result<Vec<(Scenario, ScenarioResult)>, ScenarioError> {
        let cells = self.expand()?;
        let results = run_many(&cells, threads);
        cells
            .into_iter()
            .zip(results)
            .map(|(sc, res)| res.map(|r| (sc, r)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

fn fmt_opt<T: fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "none".to_string(),
    }
}

/// Normalises a string field for the line-oriented format: newlines become
/// spaces and surrounding whitespace is dropped, exactly what the parser's
/// trim would do. Rendered files therefore always re-parse; specs whose
/// strings are already line-safe round-trip unchanged.
fn line_safe(s: &str) -> String {
    s.replace(['\n', '\r'], " ").trim().to_string()
}

fn render_beta(b: &BetaSpec) -> String {
    match b {
        BetaSpec::Fixed(v) => format!("{v}"),
        BetaSpec::PerJob { mean, spread } => format!("{mean}~{spread}"),
    }
}

fn parse_beta(s: &str) -> Result<BetaSpec, String> {
    let parse_f = |t: &str| {
        t.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("bad β component {t:?}"))
    };
    match s.split_once('~') {
        Some((m, sp)) => Ok(BetaSpec::PerJob {
            mean: parse_f(m)?,
            spread: parse_f(sp)?,
        }),
        None => Ok(BetaSpec::Fixed(parse_f(s)?)),
    }
}

fn render_sleep(s: &SleepSpec) -> String {
    match s {
        SleepSpec::None => "none".into(),
        SleepSpec::Paper => "paper".into(),
        // A stateless custom ladder is behaviourally `none`; render it as
        // such (an empty `ladder:` form would not re-parse).
        SleepSpec::Custom(cfg) if cfg.states().is_empty() => "none".into(),
        SleepSpec::Custom(cfg) => {
            let states: Vec<String> = cfg
                .states()
                .iter()
                .map(|st| {
                    format!(
                        "{}/{}/{}/{}",
                        st.idle_timeout_s, st.wake_latency_s, st.wake_energy, st.power_fraction
                    )
                })
                .collect();
            format!("ladder:{}", states.join(","))
        }
    }
}

fn parse_sleep(s: &str) -> Result<SleepSpec, String> {
    match s {
        "none" => Ok(SleepSpec::None),
        "paper" => Ok(SleepSpec::Paper),
        other => {
            let body = other
                .strip_prefix("ladder:")
                .ok_or_else(|| format!("bad sleep spec {other:?} (none | paper | ladder:...)"))?;
            let mut states = Vec::new();
            for part in body.split(',') {
                let fields: Vec<&str> = part.split('/').collect();
                if fields.len() != 4 {
                    return Err(format!(
                        "bad sleep state {part:?}: expected timeout/latency/energy/fraction"
                    ));
                }
                states.push(SleepState {
                    idle_timeout_s: fields[0]
                        .parse()
                        .map_err(|_| format!("bad sleep timeout {:?}", fields[0]))?,
                    wake_latency_s: fields[1]
                        .parse()
                        .map_err(|_| format!("bad wake latency {:?}", fields[1]))?,
                    wake_energy: fields[2]
                        .parse()
                        .map_err(|_| format!("bad wake energy {:?}", fields[2]))?,
                    power_fraction: fields[3]
                        .parse()
                        .map_err(|_| format!("bad power fraction {:?}", fields[3]))?,
                });
            }
            Ok(SleepSpec::Custom(
                SleepConfig::new(states).map_err(|e| format!("invalid sleep ladder: {e}"))?,
            ))
        }
    }
}

fn render_policy(p: &PolicySpec) -> String {
    match p {
        PolicySpec::Baseline => "baseline".into(),
        PolicySpec::FixedGear(g) => format!("gear:{g}"),
        PolicySpec::BsldThreshold { th, wq } => format!("bsld:{th}/{}", wq.label()),
    }
}

fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    if s == "baseline" {
        return Ok(PolicySpec::Baseline);
    }
    if let Some(g) = s.strip_prefix("gear:") {
        return g
            .parse()
            .map(PolicySpec::FixedGear)
            .map_err(|_| format!("bad gear index {g:?}"));
    }
    if let Some(body) = s.strip_prefix("bsld:") {
        let (th, wq) = body
            .split_once('/')
            .ok_or_else(|| format!("bad policy {s:?}: expected bsld:<th>/<wq>"))?;
        let th: f64 = th
            .parse()
            .ok()
            .filter(|v: &f64| v.is_finite())
            .ok_or_else(|| format!("bad BSLD threshold {th:?}"))?;
        return Ok(PolicySpec::BsldThreshold {
            th,
            wq: WqThreshold::parse(wq)?,
        });
    }
    Err(format!(
        "bad policy {s:?} (baseline | gear:<idx> | bsld:<th>/<wq>)"
    ))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad boolean {other:?}")),
    }
}

fn parse_opt<T: std::str::FromStr>(s: &str, what: &str) -> Result<Option<T>, String> {
    if s == "none" {
        return Ok(None);
    }
    s.parse()
        .map(Some)
        .map_err(|_| format!("bad {what} value {s:?}"))
}

impl Scenario {
    /// Renders the canonical text form (every key, canonical order); the
    /// exact inverse of [`Scenario::parse`] for any spec whose string
    /// fields (name, paths) are *line-safe* — trimmed and newline-free.
    /// Other strings are normalised on the way out (newlines → spaces,
    /// surrounding whitespace dropped, matching the parser's trim), so the
    /// rendered file always re-parses.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# bsld scenario v1\n");
        let _ = writeln!(out, "scenario = {}", line_safe(&self.name));
        match &self.workload {
            WorkloadSpec::Synthetic {
                profile,
                jobs,
                seed,
                scale_cpus,
                beta,
            } => {
                out.push_str("workload = synthetic\n");
                let _ = writeln!(out, "profile = {}", profile.key());
                let _ = writeln!(out, "jobs = {jobs}");
                let _ = writeln!(out, "seed = {seed}");
                if let Some(c) = scale_cpus {
                    let _ = writeln!(out, "scale_cpus = {c}");
                }
                if let Some(b) = beta {
                    let _ = writeln!(out, "beta = {}", render_beta(b));
                }
            }
            WorkloadSpec::Swf { path, clean } => {
                out.push_str("workload = swf\n");
                let _ = writeln!(out, "swf_path = {}", line_safe(&path.display().to_string()));
                let _ = writeln!(out, "swf_clean = {clean}");
            }
        }
        let _ = writeln!(out, "enlarge_pct = {}", self.cluster.enlarge_pct);
        match self.cluster.gears {
            GearSpec::Paper => out.push_str("gears = paper\n"),
            GearSpec::Interpolated(n) => {
                let _ = writeln!(out, "gears = interp:{}", n.max(2));
            }
        }
        let _ = writeln!(out, "policy = {}", render_policy(&self.policy));
        let _ = writeln!(out, "cap = {}", fmt_opt(&self.power.cap_fraction));
        let _ = writeln!(out, "soft_escape = {}", fmt_opt(&self.power.soft_wq_escape));
        let _ = writeln!(out, "sleep = {}", render_sleep(&self.power.sleep));
        let _ = writeln!(out, "boost = {}", fmt_opt(&self.power.boost));
        // Rendered only when set: files that never mention a model keep
        // their exact byte sequence (and so their campaign cell ids).
        if let Some(m) = &self.power.model {
            let _ = writeln!(out, "model = {}", m.render());
        }
        let _ = writeln!(out, "observe = {}", self.power.observe);
        let mode = match self.engine.mode {
            SchedMode::Easy => "easy",
            SchedMode::Conservative => "conservative",
        };
        let _ = writeln!(out, "mode = {mode}");
        let _ = writeln!(out, "backfill = {}", self.engine.backfill);
        let _ = writeln!(out, "incremental = {}", self.engine.incremental);
        let selection = match self.engine.selection {
            SelectionPolicy::FirstFit => "firstfit",
            SelectionPolicy::LastFit => "lastfit",
            SelectionPolicy::ContiguousFirstFit => "contiguous",
        };
        let _ = writeln!(out, "selection = {selection}");
        let _ = writeln!(out, "trace = {}", self.engine.trace);
        match &self.output.out_dir {
            Some(dir) => {
                // A directory literally named "none" is escaped as
                // "./none" so it cannot collide with the absent-value
                // keyword; the parser maps that form back.
                let text = line_safe(&dir.display().to_string());
                let text = if text == "none" {
                    "./none".into()
                } else {
                    text
                };
                let _ = writeln!(out, "out_dir = {text}");
            }
            None => out.push_str("out_dir = none\n"),
        }
        out
    }

    /// Parses the text form of a single scenario. Files with `sweep.*`
    /// lines or `replications > 1` must go through [`ScenarioSet::parse`].
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let set = ScenarioSet::parse(text)?;
        if !set.axes.is_empty() {
            return Err(ScenarioError::Parse {
                line: 0,
                msg: "file declares sweep axes; use ScenarioSet::parse".into(),
            });
        }
        if set.replications != 1 {
            return Err(ScenarioError::Parse {
                line: 0,
                msg: "file declares replications; use ScenarioSet::parse".into(),
            });
        }
        if set.cell_budget_s.is_some() {
            return Err(ScenarioError::Parse {
                line: 0,
                msg: "file declares cell_budget_s (a campaign key); use ScenarioSet::parse".into(),
            });
        }
        Ok(set.base)
    }
}

impl ScenarioSet {
    /// Renders the set: the base scenario, the replication count, then one
    /// `sweep.<axis>` line per axis.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.base.render();
        let _ = writeln!(out, "replications = {}", self.replications);
        let _ = writeln!(out, "cell_budget_s = {}", fmt_opt(&self.cell_budget_s));
        for axis in &self.axes {
            let values = match axis {
                SweepAxis::Profile(v) => v.iter().map(|p| p.key().to_string()).collect::<Vec<_>>(),
                SweepAxis::BsldThreshold(v) => v.iter().map(|x| x.to_string()).collect(),
                SweepAxis::Wq(v) => v.iter().map(|w| w.label()).collect(),
                SweepAxis::CapFraction(v) => v.iter().map(|x| x.to_string()).collect(),
                SweepAxis::EnlargePct(v) => v.iter().map(|x| x.to_string()).collect(),
                SweepAxis::Seed(v) => v.iter().map(|x| x.to_string()).collect(),
                // Values are whitespace-split on the way back in, so an
                // empirical CSV path containing spaces cannot ride this
                // axis (use per-scenario `model =` lines instead).
                SweepAxis::Model(v) => v.iter().map(|m| m.render()).collect(),
                // A single path value (may contain spaces — it is not
                // whitespace-split on the way back in).
                SweepAxis::SwfDir(dir) => vec![line_safe(&dir.display().to_string())],
            };
            let _ = writeln!(out, "sweep.{} = {}", axis.key(), values.join(" "));
        }
        out
    }

    /// Parses a scenario file, sweep axes included. Unknown keys are
    /// errors; missing keys take the documented defaults (workload keys
    /// are required).
    pub fn parse(text: &str) -> Result<ScenarioSet, ScenarioError> {
        let err = |line: usize, msg: String| ScenarioError::Parse { line, msg };

        let mut name: Option<String> = None;
        let mut workload_kind: Option<(usize, String)> = None;
        let mut profile: Option<ProfileName> = None;
        let mut jobs: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut scale_cpus: Option<u32> = None;
        let mut beta: Option<BetaSpec> = None;
        let mut swf_path: Option<PathBuf> = None;
        let mut swf_clean: Option<bool> = None;
        let mut cluster = ClusterSpec::default();
        let mut policy = PolicySpec::Baseline;
        let mut power = PowerSpec::off();
        let mut engine = EngineSpec::default();
        let mut output = OutputSpec::default();
        let mut axes: Vec<SweepAxis> = Vec::new();
        let mut replications: Option<(usize, u32)> = None;
        let mut cell_budget_s: Option<f64> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
            let key = key.trim();
            let value = value.trim();
            let e = |msg: String| err(lineno, msg);
            if let Some(axis_key) = key.strip_prefix("sweep.") {
                // swf_dir takes a single path operand — paths may contain
                // spaces, so it is exempt from the whitespace split below.
                if axis_key == "swf_dir" {
                    if value.is_empty() {
                        return Err(e("sweep.swf_dir needs a directory".into()));
                    }
                    if axes.iter().any(|a| a.key() == "swf_dir") {
                        return Err(e("duplicate sweep axis sweep.swf_dir".into()));
                    }
                    axes.push(SweepAxis::SwfDir(PathBuf::from(value)));
                    continue;
                }
                let parts: Vec<&str> = value.split_whitespace().collect();
                if parts.is_empty() {
                    return Err(e(format!("sweep.{axis_key} has no values")));
                }
                let axis = match axis_key {
                    "profile" => SweepAxis::Profile(
                        parts
                            .iter()
                            .map(|p| ProfileName::parse(p))
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "bsld_th" => SweepAxis::BsldThreshold(
                        parts
                            .iter()
                            .map(|p| {
                                p.parse::<f64>()
                                    .ok()
                                    .filter(|v| v.is_finite())
                                    .ok_or_else(|| format!("bad BSLD threshold {p:?}"))
                            })
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "wq" => SweepAxis::Wq(
                        parts
                            .iter()
                            .map(|p| WqThreshold::parse(p))
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "cap" => SweepAxis::CapFraction(
                        parts
                            .iter()
                            .map(|p| {
                                p.parse::<f64>()
                                    .ok()
                                    .filter(|v| v.is_finite() && *v > 0.0)
                                    .ok_or_else(|| {
                                        format!("bad cap fraction {p:?} (must be positive)")
                                    })
                            })
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "enlarge_pct" => SweepAxis::EnlargePct(
                        parts
                            .iter()
                            .map(|p| {
                                p.parse::<u32>()
                                    .map_err(|_| format!("bad enlargement {p:?}"))
                            })
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "seed" => SweepAxis::Seed(
                        parts
                            .iter()
                            .map(|p| p.parse::<u64>().map_err(|_| format!("bad seed {p:?}")))
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    "model" => SweepAxis::Model(
                        parts
                            .iter()
                            .map(|p| PowerModelSpec::parse(p))
                            .collect::<Result<_, _>>()
                            .map_err(e)?,
                    ),
                    other => return Err(e(format!(
                        "unknown sweep axis {other:?} (profile, bsld_th, wq, cap, enlarge_pct, seed, model, swf_dir)"
                    ))),
                };
                // A repeated axis would cartesian-multiply with itself:
                // later applications overwrite the earlier value while both
                // name suffixes stick, silently mislabelling every cell.
                if axes.iter().any(|a: &SweepAxis| a.key() == axis.key()) {
                    return Err(err(
                        lineno,
                        format!("duplicate sweep axis sweep.{}", axis.key()),
                    ));
                }
                axes.push(axis);
                continue;
            }
            match key {
                "scenario" => name = Some(value.to_string()),
                "workload" => workload_kind = Some((lineno, value.to_string())),
                "profile" => profile = Some(ProfileName::parse(value).map_err(e)?),
                "jobs" => {
                    jobs = Some(
                        value
                            .parse()
                            .map_err(|_| e(format!("bad jobs {value:?}")))?,
                    )
                }
                "seed" => {
                    seed = Some(
                        value
                            .parse()
                            .map_err(|_| e(format!("bad seed {value:?}")))?,
                    )
                }
                "scale_cpus" => {
                    scale_cpus = Some(
                        value
                            .parse()
                            .map_err(|_| e(format!("bad scale_cpus {value:?}")))?,
                    )
                }
                "beta" => beta = Some(parse_beta(value).map_err(e)?),
                "swf_path" => swf_path = Some(PathBuf::from(value)),
                "swf_clean" => swf_clean = Some(parse_bool(value).map_err(e)?),
                "enlarge_pct" => {
                    cluster.enlarge_pct = value
                        .parse()
                        .map_err(|_| e(format!("bad enlarge_pct {value:?}")))?
                }
                "gears" => {
                    cluster.gears = if value == "paper" {
                        GearSpec::Paper
                    } else if let Some(n) = value.strip_prefix("interp:") {
                        let n: u8 = n.parse().map_err(|_| e(format!("bad gear count {n:?}")))?;
                        // Below-2 counts behave as 2 (mirrors `build`), so
                        // the clamped render form always re-parses to the
                        // same spec.
                        GearSpec::Interpolated(n.max(2))
                    } else {
                        return Err(e(format!("bad gears {value:?} (paper | interp:<n>)")));
                    }
                }
                "policy" => policy = parse_policy(value).map_err(e)?,
                "cap" => {
                    power.cap_fraction = parse_opt::<f64>(value, "cap").map_err(e)?;
                    if let Some(f) = power.cap_fraction {
                        if !f.is_finite() || f <= 0.0 {
                            return Err(e(format!("cap fraction must be positive, got {f}")));
                        }
                    }
                }
                "soft_escape" => {
                    power.soft_wq_escape = parse_opt(value, "soft_escape").map_err(e)?
                }
                "sleep" => power.sleep = parse_sleep(value).map_err(e)?,
                "boost" => power.boost = parse_opt(value, "boost").map_err(e)?,
                "model" => {
                    power.model = if value == "none" {
                        None
                    } else {
                        Some(PowerModelSpec::parse(value).map_err(e)?)
                    }
                }
                "observe" => power.observe = parse_bool(value).map_err(e)?,
                "mode" => {
                    engine.mode = match value {
                        "easy" => SchedMode::Easy,
                        "conservative" => SchedMode::Conservative,
                        other => {
                            return Err(e(format!("bad mode {other:?} (easy | conservative)")))
                        }
                    }
                }
                "backfill" => engine.backfill = parse_bool(value).map_err(e)?,
                "incremental" => engine.incremental = parse_bool(value).map_err(e)?,
                "selection" => {
                    engine.selection = match value {
                        "firstfit" => SelectionPolicy::FirstFit,
                        "lastfit" => SelectionPolicy::LastFit,
                        "contiguous" => SelectionPolicy::ContiguousFirstFit,
                        other => {
                            return Err(e(format!(
                                "bad selection {other:?} (firstfit | lastfit | contiguous)"
                            )))
                        }
                    }
                }
                "trace" => engine.trace = parse_bool(value).map_err(e)?,
                "replications" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| e(format!("bad replications {value:?}")))?;
                    if n == 0 {
                        return Err(e("replications must be at least 1".into()));
                    }
                    replications = Some((lineno, n));
                }
                "cell_budget_s" => {
                    cell_budget_s = parse_opt::<f64>(value, "cell_budget_s").map_err(e)?;
                    if let Some(b) = cell_budget_s {
                        // Zero is allowed (a degenerate "fail every unit
                        // instantly" budget the tests rely on); negatives
                        // and non-finite values are nonsense.
                        if !b.is_finite() || b < 0.0 {
                            return Err(e(format!(
                                "cell_budget_s must be a finite non-negative number, got {b}"
                            )));
                        }
                    }
                }
                "out_dir" => {
                    output.out_dir = match value {
                        "none" => None,
                        // The render-side escape for a directory literally
                        // named "none".
                        "./none" => Some(PathBuf::from("none")),
                        other => Some(PathBuf::from(other)),
                    }
                }
                other => return Err(e(format!("unknown key {other:?}"))),
            }
        }

        let (wl_line, kind) =
            workload_kind.ok_or_else(|| err(0, "missing `workload = synthetic|swf`".into()))?;
        // Keys that belong to the other workload kind are errors, not
        // silently discarded advice: `jobs = 100` next to `workload = swf`
        // would otherwise read as a truncated replay that never happens.
        let reject_keys = |present: &[(&str, bool)], kind: &str| -> Result<(), ScenarioError> {
            for (key, set) in present {
                if *set {
                    return Err(err(
                        wl_line,
                        format!("`{key}` does not apply to a {kind} workload"),
                    ));
                }
            }
            Ok(())
        };
        let workload = match kind.as_str() {
            "synthetic" => {
                reject_keys(
                    &[
                        ("swf_path", swf_path.is_some()),
                        ("swf_clean", swf_clean.is_some()),
                    ],
                    "synthetic",
                )?;
                WorkloadSpec::Synthetic {
                    profile: profile
                        .ok_or_else(|| err(wl_line, "synthetic workload needs `profile`".into()))?,
                    jobs: jobs
                        .ok_or_else(|| err(wl_line, "synthetic workload needs `jobs`".into()))?,
                    seed: seed
                        .ok_or_else(|| err(wl_line, "synthetic workload needs `seed`".into()))?,
                    scale_cpus,
                    beta,
                }
            }
            "swf" => {
                reject_keys(
                    &[
                        ("profile", profile.is_some()),
                        ("jobs", jobs.is_some()),
                        ("seed", seed.is_some()),
                        ("scale_cpus", scale_cpus.is_some()),
                        ("beta", beta.is_some()),
                    ],
                    "swf",
                )?;
                WorkloadSpec::Swf {
                    path: swf_path
                        .ok_or_else(|| err(wl_line, "swf workload needs `swf_path`".into()))?,
                    clean: swf_clean.unwrap_or(true),
                }
            }
            other => {
                return Err(err(
                    wl_line,
                    format!("bad workload kind {other:?} (synthetic | swf)"),
                ))
            }
        };

        // A trace-directory sweep only makes sense over an SWF base: the
        // synthetic keys (profile/jobs/seed) have nothing to say about the
        // files, and silently switching workload kinds per cell would hide
        // a spec error.
        if axes.iter().any(|a| matches!(a, SweepAxis::SwfDir(_)))
            && matches!(workload, WorkloadSpec::Synthetic { .. })
        {
            return Err(err(
                wl_line,
                "sweep.swf_dir requires `workload = swf` (the synthetic keys do not apply)".into(),
            ));
        }

        // Replicating a deterministic SWF replay would repeat one number N
        // times and report a zero-width interval around it — reject rather
        // than hand out fake statistics.
        let replications = match replications {
            Some((line, n)) => {
                if n > 1 && matches!(workload, WorkloadSpec::Swf { .. }) {
                    return Err(err(
                        line,
                        "replications > 1 requires a synthetic workload \
                         (an SWF replay has no seed to vary)"
                            .into(),
                    ));
                }
                n
            }
            None => 1,
        };

        Ok(ScenarioSet {
            base: Scenario {
                name: name.unwrap_or_else(|| "scenario".into()),
                workload,
                cluster,
                policy,
                power,
                engine,
                output,
            },
            axes,
            replications,
            cell_budget_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario::synthetic("t", ProfileName::SdscBlue, 100, 42).map_workload(|w| {
            if let WorkloadSpec::Synthetic { scale_cpus, .. } = w {
                *scale_cpus = Some(64);
            }
        })
    }

    #[test]
    fn interpolated_endpoints_match_paper_range() {
        let g = GearSpec::Interpolated(6).build();
        let first = g.get(g.lowest());
        let last = g.get(g.top());
        assert!((first.freq_ghz - 0.8).abs() < 1e-12);
        assert!((last.freq_ghz - 2.3).abs() < 1e-12);
        assert!((first.voltage - 1.0).abs() < 1e-12);
        assert!((last.voltage - 1.5).abs() < 1e-12);
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ProfileName::ALL {
            assert_eq!(ProfileName::parse(p.key()).unwrap(), p);
            assert_eq!(
                ProfileName::parse(p.display_name()).unwrap(),
                p,
                "{p:?} display alias"
            );
            assert_eq!(p.profile().name, p.display_name());
        }
        let e = ProfileName::parse("nope").unwrap_err();
        assert!(e.contains("ctc") && e.contains("atlas"), "{e}");
    }

    #[test]
    fn render_parse_round_trip_defaults() {
        let sc = base();
        let text = sc.render();
        assert_eq!(Scenario::parse(&text).unwrap(), sc);
    }

    #[test]
    fn render_parse_round_trip_full() {
        let mut sc = base();
        sc.policy = PolicySpec::BsldThreshold {
            th: 1.5,
            wq: WqThreshold::Limit(16),
        };
        sc.cluster.enlarge_pct = 50;
        sc.cluster.gears = GearSpec::Interpolated(12);
        sc.power = PowerSpec {
            cap_fraction: Some(0.6),
            soft_wq_escape: Some(4),
            sleep: SleepSpec::Paper,
            boost: Some(8),
            model: Some(PowerModelSpec::Cubic),
            observe: true,
        };
        sc.engine = EngineSpec {
            mode: SchedMode::Conservative,
            backfill: false,
            incremental: false,
            selection: SelectionPolicy::ContiguousFirstFit,
            trace: true,
        };
        sc.output.out_dir = Some(PathBuf::from("results/run1"));
        if let WorkloadSpec::Synthetic { beta, .. } = &mut sc.workload {
            *beta = Some(BetaSpec::PerJob {
                mean: 0.5,
                spread: 0.25,
            });
        }
        assert_eq!(Scenario::parse(&sc.render()).unwrap(), sc);
    }

    #[test]
    fn swf_and_custom_sleep_round_trip() {
        let mut sc = base();
        sc.workload = WorkloadSpec::Swf {
            path: PathBuf::from("traces/ctc cleaned.swf"),
            clean: false,
        };
        sc.power.sleep = SleepSpec::Custom(
            SleepConfig::new(vec![SleepState {
                idle_timeout_s: 30,
                wake_latency_s: 2,
                wake_energy: 1.25,
                power_fraction: 0.3,
            }])
            .unwrap(),
        );
        assert_eq!(Scenario::parse(&sc.render()).unwrap(), sc);
    }

    #[test]
    fn sweep_set_round_trips_and_expands() {
        let set = ScenarioSet {
            base: base(),
            axes: vec![
                SweepAxis::BsldThreshold(vec![1.5, 3.0]),
                SweepAxis::Wq(vec![WqThreshold::Limit(0), WqThreshold::NoLimit]),
                SweepAxis::EnlargePct(vec![0, 50]),
            ],
            replications: 1,
            cell_budget_s: None,
        };
        assert_eq!(ScenarioSet::parse(&set.render()).unwrap(), set);
        let cells = set.expand().unwrap();
        assert_eq!(cells.len(), 8);
        // Later axes vary fastest; names encode the cell.
        assert_eq!(cells[0].name, "t-th1.5-wq0-x0");
        assert_eq!(cells[7].name, "t-th3-wqNO-x50");
        for c in &cells {
            match c.policy {
                PolicySpec::BsldThreshold { th, .. } => assert!(th == 1.5 || th == 3.0),
                _ => panic!("axis must force the policy"),
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        let bad = "workload = synthetic\nprofile = ctc\njobs = 10\nseed = 1\nnot_a_key = 1\n";
        let err = ScenarioSet::parse(bad).unwrap_err();
        assert!(matches!(err, ScenarioError::Parse { line: 5, .. }), "{err}");
        let bad2 = "workload = synthetic\nprofile = marsrover\njobs = 10\nseed = 1\n";
        assert!(ScenarioSet::parse(bad2)
            .unwrap_err()
            .to_string()
            .contains("valid:"));
        assert!(
            ScenarioSet::parse("jobs = 10\n").is_err(),
            "workload required"
        );
        let sweeping = format!("{}sweep.cap = 0.5\n", base().render());
        assert!(
            Scenario::parse(&sweeping).is_err(),
            "Scenario::parse rejects sweeps"
        );
        assert!(ScenarioSet::parse(&sweeping).is_ok());
    }

    #[test]
    fn sweep_cap_rejects_non_positive_values() {
        for bad in ["0", "-0.5", "nan"] {
            let text = format!("{}sweep.cap = {bad}\n", base().render());
            let err = ScenarioSet::parse(&text).unwrap_err();
            assert!(err.to_string().contains("cap"), "{bad}: {err}");
        }
        let ok = format!("{}sweep.cap = 0.5 1\n", base().render());
        assert!(ScenarioSet::parse(&ok).is_ok());
    }

    #[test]
    fn degenerate_interpolated_gears_render_parseable() {
        let mut sc = base();
        sc.cluster.gears = GearSpec::Interpolated(1);
        let reparsed = Scenario::parse(&sc.render()).unwrap();
        assert_eq!(reparsed.cluster.gears, GearSpec::Interpolated(2));
        // The clamped form is a fixed point of parse ∘ render...
        assert_eq!(Scenario::parse(&reparsed.render()).unwrap(), reparsed);
        // ...and both specs build the same machine.
        assert_eq!(sc.cluster.gears.build(), reparsed.cluster.gears.build());
        // Lenient files with interp:1 parse instead of erroring.
        let text = sc.render().replace("interp:2", "interp:1");
        assert_eq!(
            Scenario::parse(&text).unwrap().cluster.gears,
            GearSpec::Interpolated(2)
        );
    }

    #[test]
    fn duplicate_sweep_axes_are_rejected() {
        let text = format!("{}sweep.cap = 0.6 0.8\nsweep.cap = 1\n", base().render());
        let err = ScenarioSet::parse(&text).unwrap_err().to_string();
        assert!(err.contains("duplicate sweep axis sweep.cap"), "{err}");
        // Distinct axes remain fine.
        let ok = format!("{}sweep.cap = 0.6\nsweep.bsld_th = 2\n", base().render());
        assert!(ScenarioSet::parse(&ok).is_ok());
        // Programmatically built sets hit the same guard at expand time.
        let set = ScenarioSet {
            base: base(),
            axes: vec![
                SweepAxis::BsldThreshold(vec![1.5]),
                SweepAxis::BsldThreshold(vec![3.0]),
            ],
            replications: 1,
            cell_budget_s: None,
        };
        let err = set.expand().unwrap_err().to_string();
        assert!(err.contains("duplicate sweep axis sweep.bsld_th"), "{err}");
    }

    #[test]
    fn replications_round_trip_and_validate() {
        let mut set = ScenarioSet::single(base());
        set.replications = 5;
        let text = set.render();
        assert!(text.contains("replications = 5"), "{text}");
        assert_eq!(ScenarioSet::parse(&text).unwrap(), set);
        // Files without the key default to 1.
        assert_eq!(
            ScenarioSet::parse(&base().render()).unwrap().replications,
            1
        );
        // Scenario::parse accepts replications = 1 but rejects campaigns.
        assert!(Scenario::parse(&ScenarioSet::single(base()).render()).is_ok());
        let err = Scenario::parse(&text).unwrap_err().to_string();
        assert!(err.contains("replications"), "{err}");
        // Zero is meaningless.
        let zero = format!("{}replications = 0\n", base().render());
        assert!(ScenarioSet::parse(&zero).is_err());
        // Replicating a deterministic SWF replay is rejected.
        let swf = "workload = swf\nswf_path = t.swf\nreplications = 3\n";
        let err = ScenarioSet::parse(swf).unwrap_err().to_string();
        assert!(err.contains("synthetic workload"), "{err}");
        let swf_one = "workload = swf\nswf_path = t.swf\nreplications = 1\n";
        assert!(ScenarioSet::parse(swf_one).is_ok());
    }

    #[test]
    fn empty_custom_ladder_renders_as_none() {
        let mut sc = base();
        sc.power.sleep = SleepSpec::Custom(SleepConfig::none());
        let text = sc.render();
        assert!(text.contains("sleep = none"), "{text}");
        let reparsed = Scenario::parse(&text).unwrap();
        assert_eq!(reparsed.power.sleep, SleepSpec::None);
        assert_eq!(reparsed.power.sleep.build(), SleepConfig::none());
        // The empty ladder also does not instrument on its own, so the
        // round-trip preserves run behaviour (power report absent both
        // ways).
        assert!(!sc.power.instrumented());
        assert!(sc.run().unwrap().power.is_none());
    }

    #[test]
    fn keys_of_the_other_workload_kind_are_rejected() {
        let swf_with_jobs = "workload = swf\nswf_path = t.swf\njobs = 100\n";
        let err = ScenarioSet::parse(swf_with_jobs).unwrap_err().to_string();
        assert!(err.contains("`jobs` does not apply"), "{err}");
        let synth_with_swf =
            "workload = synthetic\nprofile = ctc\njobs = 10\nseed = 1\nswf_clean = true\n";
        let err = ScenarioSet::parse(synth_with_swf).unwrap_err().to_string();
        assert!(err.contains("`swf_clean` does not apply"), "{err}");
    }

    #[test]
    fn out_dir_named_none_round_trips() {
        let mut sc = base();
        sc.output.out_dir = Some(PathBuf::from("none"));
        let text = sc.render();
        assert!(text.contains("out_dir = ./none"), "{text}");
        assert_eq!(Scenario::parse(&text).unwrap(), sc);
        sc.output.out_dir = None;
        assert_eq!(Scenario::parse(&sc.render()).unwrap().output.out_dir, None);
    }

    #[test]
    fn non_line_safe_strings_render_parseable() {
        let mut sc = base();
        sc.name = "  spaced\nname\r ".into();
        sc.workload = WorkloadSpec::Swf {
            path: PathBuf::from(" traces/odd.swf "),
            clean: true,
        };
        let reparsed = Scenario::parse(&sc.render()).expect("render output must parse");
        assert_eq!(reparsed.name, "spaced name");
        assert_eq!(
            reparsed.workload,
            WorkloadSpec::Swf {
                path: PathBuf::from("traces/odd.swf"),
                clean: true,
            }
        );
        // Line-safe specs are fixed points.
        assert_eq!(Scenario::parse(&reparsed.render()).unwrap(), reparsed);
    }

    #[test]
    fn run_matches_legacy_simulator_wiring() {
        let mut sc = base();
        sc.policy = PolicySpec::BsldThreshold {
            th: 2.0,
            wq: WqThreshold::NoLimit,
        };
        let res = sc.run().unwrap();
        let w = TraceProfile::sdsc_blue().scaled_cpus(64).generate(42, 100);
        let legacy = Simulator::paper_default(&w.cluster_name, w.cpus)
            .run_power_aware(&w.jobs, &PowerAwareConfig::medium())
            .unwrap();
        assert_eq!(res.run.outcomes, legacy.outcomes);
        assert!(res.power.is_none());
    }

    #[test]
    fn observe_only_scenario_reports_power() {
        let mut sc = base();
        sc.power.observe = true;
        let res = sc.run().unwrap();
        let p = res.power.expect("observed run must report power");
        assert!(p.energy > 0.0);
        assert_eq!(p.budget, None);
    }

    #[test]
    fn fixed_gear_scenario_clamps_to_top() {
        let mut sc = base();
        sc.policy = PolicySpec::FixedGear(99);
        let clamped = sc.run().unwrap();
        sc.policy = PolicySpec::Baseline;
        let baseline = sc.run().unwrap();
        assert_eq!(clamped.run.outcomes, baseline.run.outcomes);
    }

    #[test]
    fn cell_budget_round_trips_and_validates() {
        let mut set = ScenarioSet::single(base());
        set.cell_budget_s = Some(1.5);
        let text = set.render();
        assert!(text.contains("cell_budget_s = 1.5"), "{text}");
        assert_eq!(ScenarioSet::parse(&text).unwrap(), set);
        // Absent key defaults to none; `none` parses back explicitly.
        assert_eq!(
            ScenarioSet::parse(&base().render()).unwrap().cell_budget_s,
            None
        );
        set.cell_budget_s = None;
        assert_eq!(ScenarioSet::parse(&set.render()).unwrap(), set);
        // Zero is a valid (degenerate) budget; negatives and non-finite
        // values are rejected.
        let zero = format!("{}cell_budget_s = 0\n", base().render());
        assert_eq!(ScenarioSet::parse(&zero).unwrap().cell_budget_s, Some(0.0));
        for bad in ["-1", "inf", "nan", "soon"] {
            let text = format!("{}cell_budget_s = {bad}\n", base().render());
            assert!(ScenarioSet::parse(&text).is_err(), "{bad} must be rejected");
        }
        // Scenario::parse treats the key as campaign-only.
        let campaign = format!("{}cell_budget_s = 2\n", base().render());
        let err = Scenario::parse(&campaign).unwrap_err().to_string();
        assert!(err.contains("cell_budget_s"), "{err}");
    }

    #[test]
    fn swf_dir_axis_round_trips_and_requires_swf_workload() {
        let mut sc = base();
        sc.workload = WorkloadSpec::Swf {
            path: PathBuf::from("traces"),
            clean: true,
        };
        let set = ScenarioSet {
            base: sc,
            axes: vec![SweepAxis::SwfDir(PathBuf::from("traces"))],
            replications: 1,
            cell_budget_s: None,
        };
        let text = set.render();
        assert!(text.contains("sweep.swf_dir = traces"), "{text}");
        assert_eq!(ScenarioSet::parse(&text).unwrap(), set);
        // Paths with spaces survive: the value is not whitespace-split.
        let spaced = ScenarioSet {
            axes: vec![SweepAxis::SwfDir(PathBuf::from("my traces/dir"))],
            ..set.clone()
        };
        assert_eq!(ScenarioSet::parse(&spaced.render()).unwrap(), spaced);
        // A synthetic base rejects the axis at parse time...
        let synth = format!("{}sweep.swf_dir = traces\n", base().render());
        let err = ScenarioSet::parse(&synth).unwrap_err().to_string();
        assert!(err.contains("workload = swf"), "{err}");
        // ...and at expand time for programmatically built sets.
        let prog = ScenarioSet {
            base: base(),
            ..set.clone()
        };
        assert!(prog.expand().is_err());
        // Duplicate axis is rejected like any other.
        let dup = format!("{}sweep.swf_dir = b\n", set.render());
        let err = ScenarioSet::parse(&dup).unwrap_err().to_string();
        assert!(err.contains("duplicate sweep axis sweep.swf_dir"), "{err}");
    }

    #[test]
    fn swf_dir_expands_one_cell_per_trace_sorted_by_name() {
        let dir = std::env::temp_dir().join(format!("bsld_swfdir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Write three tiny traces out of name order plus a decoy.
        let w = TraceProfile::ctc().scaled_cpus(16).generate(3, 5);
        let swf = bsld_swf::write_swf(&w.to_swf());
        for name in ["b.swf", "a.swf", "c.SWF"] {
            std::fs::write(dir.join(name), &swf).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "not a trace").unwrap();

        let mut sc = base();
        sc.workload = WorkloadSpec::Swf {
            path: dir.clone(),
            clean: false,
        };
        let set = ScenarioSet {
            base: sc,
            axes: vec![SweepAxis::SwfDir(dir.clone())],
            replications: 1,
            cell_budget_s: None,
        };
        let cells = set.expand().unwrap();
        assert_eq!(cells.len(), 3);
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["t-a", "t-b", "t-c"], "sorted by file name");
        for (cell, file) in cells.iter().zip(["a.swf", "b.swf", "c.SWF"]) {
            match &cell.workload {
                WorkloadSpec::Swf { path, clean } => {
                    assert_eq!(path, &dir.join(file));
                    assert!(!clean, "base cleaning flag is kept");
                }
                other => panic!("expected SWF cell, got {other:?}"),
            }
            // Each expanded cell runs (tiny 5-job traces).
            assert_eq!(cell.run().unwrap().run.outcomes.len(), 5);
        }
        // An empty directory is an error, not an empty sweep.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let bad = ScenarioSet {
            axes: vec![SweepAxis::SwfDir(empty)],
            ..set.clone()
        };
        let err = bad.expand().unwrap_err().to_string();
        assert!(err.contains("no .swf files"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_key_round_trips_and_stays_absent_by_default() {
        // No model ⇒ no `model` line at all: files (and campaign cell
        // ids) from before the key existed are byte-identical.
        let sc = base();
        assert!(!sc.render().contains("model"), "{}", sc.render());
        // `model = none` parses back to the absent default.
        let none = format!("{}model = none\n", sc.render());
        assert_eq!(Scenario::parse(&none).unwrap(), sc);
        // Every variant round-trips.
        for spec in [
            PowerModelSpec::Paper,
            PowerModelSpec::Constant,
            PowerModelSpec::Linear,
            PowerModelSpec::Cubic,
            PowerModelSpec::Empirical(PathBuf::from("data/rail points.csv")),
        ] {
            let mut sc = base();
            sc.power.model = Some(spec.clone());
            let text = sc.render();
            assert!(
                text.contains(&format!("model = {}", spec.render())),
                "{text}"
            );
            assert_eq!(Scenario::parse(&text).unwrap(), sc);
        }
        // Bad values are rejected with the menu.
        let bad = format!("{}model = quadratic\n", base().render());
        let err = ScenarioSet::parse(&bad).unwrap_err().to_string();
        assert!(err.contains("paper | constant | linear | cubic"), "{err}");
        let bare = format!("{}model = empirical:\n", base().render());
        assert!(ScenarioSet::parse(&bare).is_err(), "empty CSV path");
    }

    #[test]
    fn sweep_model_axis_round_trips_and_expands() {
        let set = ScenarioSet {
            base: base(),
            axes: vec![SweepAxis::Model(vec![
                PowerModelSpec::Paper,
                PowerModelSpec::Constant,
                PowerModelSpec::Linear,
                PowerModelSpec::Cubic,
            ])],
            replications: 1,
            cell_budget_s: None,
        };
        let text = set.render();
        assert!(
            text.contains("sweep.model = paper constant linear cubic"),
            "{text}"
        );
        assert_eq!(ScenarioSet::parse(&text).unwrap(), set);
        let cells = set.expand().unwrap();
        assert_eq!(cells.len(), 4);
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["t-mpaper", "t-mconstant", "t-mlinear", "t-mcubic"]);
        for (cell, spec) in cells.iter().zip([
            PowerModelSpec::Paper,
            PowerModelSpec::Constant,
            PowerModelSpec::Linear,
            PowerModelSpec::Cubic,
        ]) {
            assert_eq!(cell.power.model, Some(spec));
            assert!(cell.power.instrumented(), "model selection instruments");
        }
        // Duplicate axis rejected like any other.
        let dup = format!(
            "{}sweep.model = paper\nsweep.model = cubic\n",
            base().render()
        );
        let err = ScenarioSet::parse(&dup).unwrap_err().to_string();
        assert!(err.contains("duplicate sweep axis sweep.model"), "{err}");
        // Unknown model names inside the axis are rejected.
        let bad = format!("{}sweep.model = paper warp9\n", base().render());
        assert!(ScenarioSet::parse(&bad).is_err());
    }

    #[test]
    fn model_scenario_reports_three_rails() {
        let mut sc = base();
        sc.power.model = Some(PowerModelSpec::Linear);
        let res = sc.run().unwrap();
        let p = res.power.expect("a model selection instruments the run");
        assert_eq!(p.rails.len(), 3, "cpu + mem + net rails");
        let sum: f64 = p.rails.iter().map(|r| r.energy).sum();
        assert!((sum - p.energy).abs() <= 1e-9 * p.energy.max(1.0));
    }

    #[test]
    fn empirical_model_reads_csv_at_simulator_build() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("bsld_model_{}.csv", std::process::id()));
        std::fs::write(&csv, "utilization,watts\n0.0,2.0\n1.0,9.0\n").unwrap();
        let mut sc = base();
        sc.power.model = Some(PowerModelSpec::Empirical(csv.clone()));
        assert!(sc.run().is_ok());
        // A missing file surfaces as an Io error, not a panic.
        sc.power.model = Some(PowerModelSpec::Empirical(dir.join("does_not_exist.csv")));
        match sc.run() {
            Err(ScenarioError::Io(msg)) => assert!(msg.contains("does_not_exist"), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn no_model_run_is_identical_to_seed_path() {
        // The refactor's central promise: a spec that never mentions a
        // model behaves exactly as before the subsystem existed, and
        // `model = paper` changes only the reporting (three rails), not
        // the schedule.
        let mut sc = base();
        sc.power.observe = true;
        let default_run = sc.run().unwrap();
        sc.power.model = Some(PowerModelSpec::Paper);
        let paper_run = sc.run().unwrap();
        assert_eq!(default_run.run.outcomes, paper_run.run.outcomes);
        let d = default_run.power.unwrap();
        let p = paper_run.power.unwrap();
        assert_eq!(d.rails.len(), 1);
        assert_eq!(p.rails.len(), 3);
        // The CPU rail prices the same paper model either way.
        assert_eq!(d.rails[0].energy.to_bits(), p.rails[0].energy.to_bits());
    }

    #[test]
    fn expand_rejects_profile_axis_on_swf() {
        let mut sc = base();
        sc.workload = WorkloadSpec::Swf {
            path: PathBuf::from("x.swf"),
            clean: true,
        };
        let set = ScenarioSet {
            base: sc,
            axes: vec![SweepAxis::Profile(vec![ProfileName::Ctc])],
            replications: 1,
            cell_budget_s: None,
        };
        assert!(set.expand().is_err());
    }
}
