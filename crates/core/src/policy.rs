//! The BSLD-threshold frequency-assignment policy (Figures 1–2).

use bsld_model::{bsld_predicted, GearId, BSLD_SHORT_JOB_THRESHOLD_SECS};
use bsld_sched::{DecisionCtx, FrequencyPolicy};
use bsld_simkernel::Time;

/// The wait-queue-size gate `WQ_threshold`.
///
/// The paper evaluates `0`, `4`, `16` and *no limit*. `Limit(0)` means "no
/// DVFS if any other job is waiting on execution".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WqThreshold {
    /// DVFS is considered only while at most this many other jobs wait.
    Limit(usize),
    /// DVFS is always considered (the paper's "NO LIMIT").
    NoLimit,
}

impl WqThreshold {
    /// Whether a wait queue of `wq_others` other jobs admits DVFS.
    #[inline]
    pub fn admits(&self, wq_others: usize) -> bool {
        match self {
            WqThreshold::Limit(l) => wq_others <= *l,
            WqThreshold::NoLimit => true,
        }
    }

    /// The label used in the paper's figures ("0", "4", "16", "NO").
    pub fn label(&self) -> String {
        match self {
            WqThreshold::Limit(l) => l.to_string(),
            WqThreshold::NoLimit => "NO".to_string(),
        }
    }

    /// Parses a [`WqThreshold::label`]-style string: a queue depth, or
    /// `"no"` (any case) for *no limit*.
    pub fn parse(s: &str) -> Result<WqThreshold, String> {
        if s.eq_ignore_ascii_case("no") {
            return Ok(WqThreshold::NoLimit);
        }
        s.parse()
            .map(WqThreshold::Limit)
            .map_err(|_| format!("bad WQ threshold {s:?}: expected a queue depth or \"no\""))
    }
}

impl std::fmt::Display for WqThreshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The two adjustable parameters of the paper's algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAwareConfig {
    /// `BSLD_threshold`: a job may run reduced only while its predicted
    /// BSLD stays at or below this (the paper evaluates 1.5, 2 and 3).
    pub bsld_threshold: f64,
    /// `WQ_threshold`: the wait-queue-size gate.
    pub wq_threshold: WqThreshold,
}

impl PowerAwareConfig {
    /// The paper's "medium" configuration: threshold 2, no queue limit.
    pub fn medium() -> Self {
        PowerAwareConfig {
            bsld_threshold: 2.0,
            wq_threshold: WqThreshold::NoLimit,
        }
    }

    /// Compact label like `"2/NO"` for tables.
    pub fn label(&self) -> String {
        format!("{}/{}", self.bsld_threshold, self.wq_threshold)
    }
}

/// The frequency-assignment algorithm of Figures 1–2.
///
/// * **MakeJobReservation** ([`FrequencyPolicy::head_gear`]): if no more
///   than `WQ_threshold` jobs wait, try gears from the lowest frequency
///   upward and take the first whose predicted BSLD (Eq. 2) is within
///   `BSLD_threshold`; otherwise — and when no gear qualifies — use the top
///   gear. The head job is always scheduled.
/// * **BackfillJob** ([`FrequencyPolicy::backfill_gear`]): same search, but
///   a gear must additionally *fit* (start now without delaying the head
///   reservation), and the job is **not backfilled at all** if no gear
///   passes both checks — including the over-threshold branch, which only
///   considers the top gear. This faithful detail matters: once a job's
///   accumulated wait pushes its predicted BSLD over the threshold, the
///   policy stops backfilling it (it must wait to become head), which is
///   how the saturated SDSC workload loses performance under the policy.
#[derive(Debug, Clone, Copy)]
pub struct BsldThresholdPolicy {
    cfg: PowerAwareConfig,
    short_job_th: u64,
}

impl BsldThresholdPolicy {
    /// A policy with the paper's 600 s short-job threshold.
    pub fn new(cfg: PowerAwareConfig) -> Self {
        BsldThresholdPolicy {
            cfg,
            short_job_th: BSLD_SHORT_JOB_THRESHOLD_SECS,
        }
    }

    /// Overrides the short-job threshold (for sensitivity studies).
    pub fn with_short_job_threshold(mut self, th: u64) -> Self {
        self.short_job_th = th;
        self
    }

    /// The configured parameters.
    pub fn config(&self) -> &PowerAwareConfig {
        &self.cfg
    }

    /// Predicted BSLD (Eq. 2) for a job waiting `wait` seconds, at `gear`.
    #[inline]
    fn predict(&self, ctx: &DecisionCtx<'_>, wait: u64, gear: GearId) -> f64 {
        bsld_predicted(wait, ctx.job.requested, ctx.coef(gear), self.short_job_th)
    }
}

impl FrequencyPolicy for BsldThresholdPolicy {
    fn head_gear(&self, ctx: &DecisionCtx<'_>, start: Time) -> GearId {
        let top = ctx.time_model.gears().top();
        if !self.cfg.wq_threshold.admits(ctx.wq_others) {
            return top;
        }
        let wait = start.saturating_since(ctx.job.arrival);
        for (gear, _) in ctx.time_model.gears().ascending() {
            if self.predict(ctx, wait, gear) <= self.cfg.bsld_threshold {
                return gear;
            }
        }
        top
    }

    fn backfill_gear(
        &self,
        ctx: &DecisionCtx<'_>,
        fits: &mut dyn FnMut(GearId) -> bool,
    ) -> Option<GearId> {
        let top = ctx.time_model.gears().top();
        let wait = ctx.now.saturating_since(ctx.job.arrival);
        if self.cfg.wq_threshold.admits(ctx.wq_others) {
            for (gear, _) in ctx.time_model.gears().ascending() {
                if self.predict(ctx, wait, gear) <= self.cfg.bsld_threshold && fits(gear) {
                    return Some(gear);
                }
            }
            None
        } else {
            (self.predict(ctx, wait, top) <= self.cfg.bsld_threshold && fits(top)).then_some(top)
        }
    }

    fn reserve_gear(
        &self,
        ctx: &DecisionCtx<'_>,
        find_start: &mut dyn FnMut(GearId) -> Time,
    ) -> (GearId, Time) {
        // Under conservative backfilling the reservation start is gear-
        // dependent (a slower gear occupies the profile for longer, which
        // can push the job past a hole). This is exactly the paper's
        // `findAllocation(J, f)` loop: try each gear from the lowest
        // frequency, computing the allocation *for that gear*, and take
        // the first whose predicted BSLD passes.
        let top = ctx.time_model.gears().top();
        if self.cfg.wq_threshold.admits(ctx.wq_others) {
            for (gear, _) in ctx.time_model.gears().ascending() {
                let start = find_start(gear);
                let wait = start.saturating_since(ctx.job.arrival);
                if self.predict(ctx, wait, gear) <= self.cfg.bsld_threshold {
                    return (gear, start);
                }
            }
        }
        (top, find_start(top))
    }

    fn pass_elision_safe(&self) -> bool {
        // With no queue limit, `head_gear` depends only on the job and the
        // reservation start, and `backfill_gear` is monotone: predicted
        // BSLD grows with wait, so a declined job stays declined until a
        // completion improves the profile. A `WQ_threshold` limit breaks
        // both properties (a deepening queue flips decisions to the top
        // gear), so it must take the full re-scheduling path.
        matches!(self.cfg.wq_threshold, WqThreshold::NoLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_model::Job;
    use bsld_power::BetaModel;

    fn ctx<'a>(job: &'a Job, tm: &'a BetaModel, now: u64, wq: usize) -> DecisionCtx<'a> {
        DecisionCtx {
            now: Time(now),
            job,
            wq_others: wq,
            time_model: tm,
        }
    }

    fn policy(th: f64, wq: WqThreshold) -> BsldThresholdPolicy {
        BsldThresholdPolicy::new(PowerAwareConfig {
            bsld_threshold: th,
            wq_threshold: wq,
        })
    }

    #[test]
    fn head_picks_lowest_gear_when_slack_allows() {
        // Long job (10000 s requested), no wait: lowest gear dilates to
        // 19375 s → PredBSLD ≈ 1.94 ≤ 2 → gear 0 admissible.
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(2.0, WqThreshold::NoLimit);
        assert_eq!(p.head_gear(&ctx(&job, &tm, 0, 0), Time(0)), GearId(0));
    }

    #[test]
    fn head_steps_up_gears_as_wait_grows() {
        // With wait, the lowest gears blow the threshold and the search
        // moves up.
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(2.0, WqThreshold::NoLimit);
        // wait 2000: gear0 pred = (2000+19375)/10000 ≈ 2.14 > 2;
        // gear1 (1.1GHz): coef = 0.5(2.3/1.1-1)+1 ≈ 1.545, pred ≈ 1.75 ≤ 2.
        assert_eq!(p.head_gear(&ctx(&job, &tm, 2000, 0), Time(2000)), GearId(1));
        // wait 9000: even top gear pred = 1.9 ≤ 2 → but gear4 (2.0GHz):
        // coef=1.075, pred=(9000+10750)/10000=1.975 ≤ 2 → gear 4 wins first.
        assert_eq!(p.head_gear(&ctx(&job, &tm, 9000, 0), Time(9000)), GearId(4));
    }

    #[test]
    fn head_falls_back_to_top_when_nothing_qualifies() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(1.5, WqThreshold::NoLimit);
        // wait 20000 ⇒ pred ≥ 3 at every gear → top.
        assert_eq!(
            p.head_gear(&ctx(&job, &tm, 20_000, 0), Time(20_000)),
            GearId(5)
        );
    }

    #[test]
    fn wq_gate_forces_top() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(3.0, WqThreshold::Limit(0));
        assert_eq!(
            p.head_gear(&ctx(&job, &tm, 0, 0), Time(0)),
            GearId(0),
            "empty queue admits"
        );
        assert_eq!(
            p.head_gear(&ctx(&job, &tm, 0, 1), Time(0)),
            GearId(5),
            "one waiter blocks"
        );
        let p4 = policy(3.0, WqThreshold::Limit(4));
        assert_eq!(p4.head_gear(&ctx(&job, &tm, 0, 4), Time(0)), GearId(0));
        assert_eq!(p4.head_gear(&ctx(&job, &tm, 0, 5), Time(0)), GearId(5));
    }

    #[test]
    fn short_jobs_always_admit_lowest_gear_when_idle() {
        // A 60 s job: denominator is the 600 s threshold, so even gear 0
        // dilation (116 s) keeps PredBSLD at 1.
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 1, 60, 60);
        let p = policy(1.5, WqThreshold::NoLimit);
        assert_eq!(p.head_gear(&ctx(&job, &tm, 0, 0), Time(0)), GearId(0));
    }

    #[test]
    fn backfill_requires_fit_and_threshold() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(2.0, WqThreshold::NoLimit);
        // Only gears >= 2 fit: policy must skip the efficient-but-unfitting
        // gears and take gear 2 (if it passes the threshold).
        let c = ctx(&job, &tm, 0, 0);
        let got = p.backfill_gear(&c, &mut |g| g >= GearId(2));
        // gear2 coef = 0.5(2.3/1.4-1)+1 ≈ 1.321 → pred 1.32 ≤ 2.
        assert_eq!(got, Some(GearId(2)));
        // Nothing fits → no backfill.
        assert_eq!(p.backfill_gear(&c, &mut |_| false), None);
    }

    #[test]
    fn backfill_denied_when_wait_blows_threshold() {
        // Faithful Fig. 2 detail: predicted BSLD over the threshold at
        // every gear ⇒ the job is NOT backfilled even though it fits.
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(1.5, WqThreshold::NoLimit);
        let c = ctx(&job, &tm, 20_000, 0);
        assert_eq!(p.backfill_gear(&c, &mut |_| true), None);
    }

    #[test]
    fn backfill_over_wq_limit_considers_only_top() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 10_000, 10_000);
        let p = policy(2.0, WqThreshold::Limit(0));
        let c = ctx(&job, &tm, 0, 3);
        let mut asked = Vec::new();
        let got = p.backfill_gear(&c, &mut |g| {
            asked.push(g);
            true
        });
        assert_eq!(got, Some(GearId(5)));
        assert_eq!(asked, vec![GearId(5)]);
    }

    #[test]
    fn labels() {
        assert_eq!(WqThreshold::Limit(4).label(), "4");
        assert_eq!(WqThreshold::NoLimit.label(), "NO");
        assert_eq!(
            PowerAwareConfig {
                bsld_threshold: 1.5,
                wq_threshold: WqThreshold::Limit(16)
            }
            .label(),
            "1.5/16"
        );
        assert_eq!(PowerAwareConfig::medium().label(), "2/NO");
    }

    #[test]
    fn custom_short_job_threshold() {
        let tm = BetaModel::new(GearSet::paper());
        // 60 s job with a 60 s threshold: gear 0 dilation (116 s) gives
        // pred ≈ 1.94 > 1.5 → a higher gear must win.
        let job = Job::new(0, Time(0), 1, 60, 60);
        let p = policy(1.5, WqThreshold::NoLimit).with_short_job_threshold(60);
        let g = p.head_gear(&ctx(&job, &tm, 0, 0), Time(0));
        assert!(g > GearId(0), "got {g}");
    }
}
