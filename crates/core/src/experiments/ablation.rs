//! Beyond-paper ablations (DESIGN.md §6).
//!
//! These studies exercise the paper's stated future work and the design
//! choices the reproduction had to make:
//!
//! * [`boost`] — the dynamic-boost extension: raise running reduced jobs to
//!   the top gear when the queue deepens;
//! * [`beta`] — per-job β instead of the global β = 0.5;
//! * [`fcfs`] — the scheduling substrate ablation: EASY vs. plain FCFS;
//! * [`gears`] — gear-set granularity: 2, 3, 6 (paper) and 12 gears.

use bsld_cluster::{Cluster, Gear, GearSet};
use bsld_metrics::TextTable;
use bsld_par::par_map;
use bsld_workload::profiles::{BetaSpec, TraceProfile};

use super::{fmt, write_artifact, ExpOptions};
use crate::policy::PowerAwareConfig;
use crate::sim::Simulator;

/// One ablation row: a labelled variant against the shared baseline.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Normalized computational energy (vs. the study's EASY no-DVFS
    /// baseline).
    pub norm_e_comp: f64,
    /// Average BSLD.
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait: f64,
    /// Reduced jobs.
    pub reduced_jobs: usize,
}

/// A labelled ablation study.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Study name (used for the CSV artifact).
    pub name: String,
    /// Rows, baseline first.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Renders the study as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Variant",
            "E(idle=0)",
            "AvgBSLD",
            "AvgWait(s)",
            "Reduced",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                fmt(r.norm_e_comp, 3),
                fmt(r.avg_bsld, 2),
                fmt(r.avg_wait, 0),
                r.reduced_jobs.to_string(),
            ]);
        }
        format!("Ablation — {}\n{}", self.name, t.render())
    }

    /// Writes `ablation_<name>.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Option<std::path::PathBuf>> {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    fmt(r.norm_e_comp, 5),
                    fmt(r.avg_bsld, 4),
                    fmt(r.avg_wait, 1),
                    r.reduced_jobs.to_string(),
                ]
            })
            .collect();
        write_artifact(
            opts,
            &format!("ablation_{}", self.name),
            &[
                "variant",
                "norm_energy_idle0",
                "avg_bsld",
                "avg_wait_s",
                "reduced_jobs",
            ],
            &rows,
        )
    }

    /// Looks a row up by label.
    pub fn row(&self, variant: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.variant == variant)
    }
}

fn row_from(
    variant: impl Into<String>,
    m: &bsld_metrics::RunMetrics,
    base: &bsld_metrics::RunMetrics,
) -> AblationRow {
    AblationRow {
        variant: variant.into(),
        norm_e_comp: m.energy.normalized_computational(&base.energy),
        avg_bsld: m.avg_bsld,
        avg_wait: m.avg_wait_secs,
        reduced_jobs: m.reduced_jobs,
    }
}

/// Dynamic boost (paper future work): SDSC-Blue, `BSLDth = 2`, `WQ = NO`,
/// with boost limits ∞ (off), 16, 4 and 0.
pub fn boost(opts: &ExpOptions) -> Ablation {
    let w = TraceProfile::sdsc_blue().generate(opts.seed, opts.jobs);
    let cfg = PowerAwareConfig::medium();
    let variants: Vec<(String, Option<usize>)> = vec![
        ("no-boost".into(), None),
        ("boost@16".into(), Some(16)),
        ("boost@4".into(), Some(4)),
        ("boost@0".into(), Some(0)),
    ];
    let mut tasks: Vec<Option<Option<usize>>> = vec![None]; // baseline
    tasks.extend(variants.iter().map(|(_, b)| Some(*b)));
    let runs = par_map(tasks, opts.threads, |task| {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        match task {
            None => sim.run_baseline(&w.jobs).unwrap().metrics,
            Some(boost) => {
                let sim = match boost {
                    Some(limit) => sim.with_boost(limit),
                    None => sim,
                };
                sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
            }
        }
    });
    let base = runs[0].clone();
    let mut rows = vec![row_from("EASY-no-DVFS", &base, &base)];
    for ((label, _), m) in variants.iter().zip(&runs[1..]) {
        rows.push(row_from(label.clone(), m, &base));
    }
    Ablation {
        name: "boost".into(),
        rows,
    }
}

/// Per-job β (paper future work): fixed 0.5 vs. uniform spreads.
pub fn beta(opts: &ExpOptions) -> Ablation {
    let cfg = PowerAwareConfig::medium();
    let variants: Vec<(String, BetaSpec)> = vec![
        ("beta=0.5".into(), BetaSpec::Fixed(0.5)),
        (
            "beta=0.5±0.2".into(),
            BetaSpec::PerJob {
                mean: 0.5,
                spread: 0.2,
            },
        ),
        (
            "beta=0.5±0.4".into(),
            BetaSpec::PerJob {
                mean: 0.5,
                spread: 0.4,
            },
        ),
        ("beta=0.3".into(), BetaSpec::Fixed(0.3)),
        ("beta=0.8".into(), BetaSpec::Fixed(0.8)),
    ];
    let mut tasks: Vec<Option<BetaSpec>> = vec![None];
    tasks.extend(variants.iter().map(|(_, b)| Some(*b)));
    let runs = par_map(tasks, opts.threads, |task| match task {
        None => {
            let w = TraceProfile::sdsc_blue().generate(opts.seed, opts.jobs);
            let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
            sim.run_baseline(&w.jobs).unwrap().metrics
        }
        Some(spec) => {
            let w = TraceProfile::sdsc_blue()
                .with_beta(spec)
                .generate(opts.seed, opts.jobs);
            let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
            sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
        }
    });
    let base = runs[0].clone();
    let mut rows = vec![row_from("EASY-no-DVFS", &base, &base)];
    for ((label, _), m) in variants.iter().zip(&runs[1..]) {
        rows.push(row_from(label.clone(), m, &base));
    }
    Ablation {
        name: "beta".into(),
        rows,
    }
}

/// Scheduling substrate: EASY vs. conservative backfilling vs. plain FCFS
/// (no backfilling), each with and without the power-aware policy.
pub fn fcfs(opts: &ExpOptions) -> Ablation {
    #[derive(Clone, Copy)]
    enum Substrate {
        Easy,
        Conservative,
        Fcfs,
    }
    let w = TraceProfile::sdsc_blue().generate(opts.seed, opts.jobs);
    let cfg = PowerAwareConfig::medium();
    let tasks: Vec<(Substrate, bool, &str)> = vec![
        (Substrate::Easy, false, "EASY"),
        (Substrate::Easy, true, "EASY+DVFS"),
        (Substrate::Conservative, false, "CONS"),
        (Substrate::Conservative, true, "CONS+DVFS"),
        (Substrate::Fcfs, false, "FCFS"),
        (Substrate::Fcfs, true, "FCFS+DVFS"),
    ];
    let runs = par_map(tasks.clone(), opts.threads, |(substrate, dvfs, _)| {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let sim = match substrate {
            Substrate::Easy => sim,
            Substrate::Conservative => sim.with_conservative(),
            Substrate::Fcfs => sim.without_backfill(),
        };
        if dvfs {
            sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
        } else {
            sim.run_baseline(&w.jobs).unwrap().metrics
        }
    });
    let base = runs[0].clone();
    let rows = tasks
        .iter()
        .zip(&runs)
        .map(|((_, _, label), m)| row_from(label.to_string(), m, &base))
        .collect();
    Ablation {
        name: "fcfs".into(),
        rows,
    }
}

/// Resource selection: First Fit (paper) vs. Last Fit vs. contiguous
/// First Fit, under the no-DVFS baseline and the medium policy. Contiguous
/// selection exposes fragmentation: jobs wait even when enough processors
/// are free.
pub fn selection(opts: &ExpOptions) -> Ablation {
    use bsld_cluster::SelectionPolicy;
    let w = TraceProfile::ctc().generate(opts.seed, opts.jobs);
    let cfg = PowerAwareConfig::medium();
    let tasks: Vec<(SelectionPolicy, bool, &str)> = vec![
        (SelectionPolicy::FirstFit, false, "FirstFit (paper)"),
        (SelectionPolicy::FirstFit, true, "FirstFit+DVFS"),
        (SelectionPolicy::LastFit, false, "LastFit"),
        (SelectionPolicy::LastFit, true, "LastFit+DVFS"),
        (SelectionPolicy::ContiguousFirstFit, false, "Contiguous"),
        (SelectionPolicy::ContiguousFirstFit, true, "Contiguous+DVFS"),
    ];
    let runs = par_map(tasks.clone(), opts.threads, |(sel, dvfs, _)| {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus).with_selection(sel);
        if dvfs {
            sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
        } else {
            sim.run_baseline(&w.jobs).unwrap().metrics
        }
    });
    let base = runs[0].clone();
    let rows = tasks
        .iter()
        .zip(&runs)
        .map(|((_, _, label), m)| row_from(label.to_string(), m, &base))
        .collect();
    Ablation {
        name: "selection".into(),
        rows,
    }
}

/// Gear-set granularity: 2, 3, 6 (paper) and 12 gears spanning the same
/// frequency/voltage range.
pub fn gears(opts: &ExpOptions) -> Ablation {
    let cfg = PowerAwareConfig::medium();
    let sets: Vec<(String, GearSet)> = vec![
        ("2 gears".into(), interpolated_gears(2)),
        ("3 gears".into(), interpolated_gears(3)),
        ("6 gears (paper)".into(), GearSet::paper()),
        ("12 gears".into(), interpolated_gears(12)),
    ];
    let w = TraceProfile::sdsc_blue().generate(opts.seed, opts.jobs);
    let mut tasks: Vec<Option<GearSet>> = vec![None];
    tasks.extend(sets.iter().map(|(_, g)| Some(g.clone())));
    let runs = par_map(tasks, opts.threads, |task| match task {
        None => {
            let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
            sim.run_baseline(&w.jobs).unwrap().metrics
        }
        Some(gearset) => {
            let sim =
                Simulator::with_cluster(Cluster::new(w.cluster_name.clone(), w.cpus, gearset));
            sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
        }
    });
    let base = runs[0].clone();
    let mut rows = vec![row_from("EASY-no-DVFS", &base, &base)];
    for ((label, _), m) in sets.iter().zip(&runs[1..]) {
        rows.push(row_from(label.clone(), m, &base));
    }
    Ablation {
        name: "gears".into(),
        rows,
    }
}

/// Engine A/B: the incremental scheduling hot path against the full
/// re-scheduling oracle, under both substrates with the medium policy.
/// Every INC row must equal its FULL twin — the outcome streams are
/// bit-identical by construction (see `tests/incremental_ab.rs`); the
/// table is the experiment-level witness.
pub fn engine(opts: &ExpOptions) -> Ablation {
    let w = TraceProfile::sdsc_blue().generate(opts.seed, opts.jobs);
    let cfg = PowerAwareConfig::medium();
    let tasks: Vec<(bool, bool, &str)> = vec![
        (false, false, "EASY-INC"),
        (false, true, "EASY-FULL"),
        (true, false, "CONS-INC"),
        (true, true, "CONS-FULL"),
    ];
    let runs = par_map(tasks.clone(), opts.threads, |(conservative, full, _)| {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
        let sim = if conservative {
            sim.with_conservative()
        } else {
            sim
        };
        let sim = if full { sim.with_full_rescan() } else { sim };
        sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
    });
    let base = runs[0].clone();
    let rows = tasks
        .iter()
        .zip(&runs)
        .map(|((_, _, label), m)| row_from(label.to_string(), m, &base))
        .collect();
    Ablation {
        name: "engine".into(),
        rows,
    }
}

/// A gear set of `n` points linearly interpolating the paper's range
/// (0.8 GHz @ 1.0 V … 2.3 GHz @ 1.5 V).
fn interpolated_gears(n: usize) -> GearSet {
    assert!(n >= 2);
    let gears = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            Gear {
                freq_ghz: 0.8 + t * 1.5,
                voltage: 1.0 + t * 0.5,
            }
        })
        .collect();
    GearSet::new(gears).expect("interpolated set is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolated_endpoints_match_paper_range() {
        let g = interpolated_gears(6);
        let first = g.get(g.lowest());
        let last = g.get(g.top());
        assert!((first.freq_ghz - 0.8).abs() < 1e-12);
        assert!((last.freq_ghz - 2.3).abs() < 1e-12);
        assert!((first.voltage - 1.0).abs() < 1e-12);
        assert!((last.voltage - 1.5).abs() < 1e-12);
    }

    #[test]
    fn boost_improves_bsld_over_no_boost() {
        let a = boost(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 5);
        let no = a.row("no-boost").unwrap();
        let aggressive = a.row("boost@0").unwrap();
        assert!(
            aggressive.avg_bsld <= no.avg_bsld + 1e-9,
            "boost must not worsen BSLD: {} vs {}",
            aggressive.avg_bsld,
            no.avg_bsld
        );
        assert!(aggressive.norm_e_comp >= no.norm_e_comp - 1e-9);
    }

    #[test]
    fn engine_ab_rows_are_twins() {
        // The incremental engine and the full re-scan oracle must agree to
        // the bit, under both substrates.
        let a = engine(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 4);
        for (inc, full) in [("EASY-INC", "EASY-FULL"), ("CONS-INC", "CONS-FULL")] {
            let i = a.row(inc).unwrap();
            let f = a.row(full).unwrap();
            assert_eq!(i.avg_bsld.to_bits(), f.avg_bsld.to_bits(), "{inc}");
            assert_eq!(i.avg_wait.to_bits(), f.avg_wait.to_bits(), "{inc}");
            assert_eq!(i.norm_e_comp.to_bits(), f.norm_e_comp.to_bits(), "{inc}");
            assert_eq!(i.reduced_jobs, f.reduced_jobs, "{inc}");
        }
    }

    #[test]
    fn fcfs_is_worse_than_easy() {
        let a = fcfs(&ExpOptions::quick(200));
        let easy = a.row("EASY").unwrap();
        let cons = a.row("CONS").unwrap();
        let fcfs_row = a.row("FCFS").unwrap();
        assert!(fcfs_row.avg_wait >= easy.avg_wait);
        assert!(
            fcfs_row.avg_wait >= cons.avg_wait,
            "conservative still backfills"
        );
    }

    #[test]
    fn selection_ablation_contiguous_not_better() {
        let a = selection(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 6);
        let ff = a.row("FirstFit (paper)").unwrap();
        let contig = a.row("Contiguous").unwrap();
        assert!(
            contig.avg_wait >= ff.avg_wait - 1.0,
            "fragmentation cannot shorten waits: {} vs {}",
            contig.avg_wait,
            ff.avg_wait
        );
        // Non-contiguous policies are schedule-equivalent (processor
        // identity does not matter to count-based scheduling).
        let lf = a.row("LastFit").unwrap();
        assert!((lf.avg_wait - ff.avg_wait).abs() < 1e-9);
        assert!((lf.avg_bsld - ff.avg_bsld).abs() < 1e-9);
    }

    #[test]
    fn more_gears_never_hurt_energy() {
        let a = gears(&ExpOptions::quick(150));
        let g2 = a.row("2 gears").unwrap().norm_e_comp;
        let g12 = a.row("12 gears").unwrap().norm_e_comp;
        // Finer gear sets give the policy strictly more options; with the
        // β=0.5 efficiency ordering they can only match or improve energy.
        assert!(g12 <= g2 + 0.02, "12 gears {g12} vs 2 gears {g2}");
    }

    #[test]
    fn beta_study_runs() {
        let a = beta(&ExpOptions::quick(120));
        assert_eq!(a.rows.len(), 6);
        assert!(a.render().contains("beta"));
    }
}
