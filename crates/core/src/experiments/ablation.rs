//! Beyond-paper ablations (DESIGN.md §6).
//!
//! These studies exercise the paper's stated future work and the design
//! choices the reproduction had to make:
//!
//! * [`boost`] — the dynamic-boost extension: raise running reduced jobs to
//!   the top gear when the queue deepens;
//! * [`beta`] — per-job β instead of the global β = 0.5;
//! * [`fcfs`] — the scheduling substrate ablation: EASY vs. plain FCFS;
//! * [`gears`] — gear-set granularity: 2, 3, 6 (paper) and 12 gears.
//!
//! Every variant is a declarative [`scenario::Scenario`]; a study is a
//! labelled scenario list run in parallel through
//! [`scenario::run_many`].

use bsld_metrics::TextTable;
use bsld_workload::profiles::BetaSpec;

use super::{expect_run, fmt, write_artifact, ExpOptions};
use crate::policy::PowerAwareConfig;
use crate::scenario::{self, GearSpec, PolicySpec, ProfileName, Scenario, WorkloadSpec};

/// One ablation row: a labelled variant against the shared baseline.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Normalized computational energy (vs. the study's EASY no-DVFS
    /// baseline).
    pub norm_e_comp: f64,
    /// Average BSLD.
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait: f64,
    /// Reduced jobs.
    pub reduced_jobs: usize,
}

/// A labelled ablation study.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Study name (used for the CSV artifact).
    pub name: String,
    /// Rows, baseline first.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Renders the study as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Variant",
            "E(idle=0)",
            "AvgBSLD",
            "AvgWait(s)",
            "Reduced",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                fmt(r.norm_e_comp, 3),
                fmt(r.avg_bsld, 2),
                fmt(r.avg_wait, 0),
                r.reduced_jobs.to_string(),
            ]);
        }
        format!("Ablation — {}\n{}", self.name, t.render())
    }

    /// Writes `ablation_<name>.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Option<std::path::PathBuf>> {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    fmt(r.norm_e_comp, 5),
                    fmt(r.avg_bsld, 4),
                    fmt(r.avg_wait, 1),
                    r.reduced_jobs.to_string(),
                ]
            })
            .collect();
        write_artifact(
            opts,
            &format!("ablation_{}", self.name),
            &[
                "variant",
                "norm_energy_idle0",
                "avg_bsld",
                "avg_wait_s",
                "reduced_jobs",
            ],
            &rows,
        )
    }

    /// Looks a row up by label.
    pub fn row(&self, variant: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.variant == variant)
    }
}

/// Runs a labelled scenario list (baseline first) and assembles the study:
/// every row is normalised against row 0's energy.
fn run_study(name: &str, variants: Vec<(String, Scenario)>, threads: usize) -> Ablation {
    let scenarios: Vec<Scenario> = variants.iter().map(|(_, sc)| sc.clone()).collect();
    let metrics: Vec<bsld_metrics::RunMetrics> = scenario::run_many(&scenarios, threads)
        .into_iter()
        .map(|res| expect_run(res).run.metrics)
        .collect();
    let base = metrics[0].clone();
    let rows = variants
        .into_iter()
        .zip(&metrics)
        .map(|((label, _), m)| AblationRow {
            variant: label,
            norm_e_comp: m.energy.normalized_computational(&base.energy),
            avg_bsld: m.avg_bsld,
            avg_wait: m.avg_wait_secs,
            reduced_jobs: m.reduced_jobs,
        })
        .collect();
    Ablation {
        name: name.into(),
        rows,
    }
}

/// The study's shared base: an SDSC-Blue scenario at the experiment scale.
fn blue_base(opts: &ExpOptions, label: &str) -> Scenario {
    Scenario::synthetic(label, ProfileName::SdscBlue, opts.jobs, opts.seed)
}

fn medium_policy() -> PolicySpec {
    PolicySpec::from(PowerAwareConfig::medium())
}

/// Dynamic boost (paper future work): SDSC-Blue, `BSLDth = 2`, `WQ = NO`,
/// with boost limits ∞ (off), 16, 4 and 0.
pub fn boost(opts: &ExpOptions) -> Ablation {
    let mut variants = vec![("EASY-no-DVFS".to_string(), blue_base(opts, "boost-base"))];
    for (label, limit) in [
        ("no-boost", None),
        ("boost@16", Some(16)),
        ("boost@4", Some(4)),
        ("boost@0", Some(0)),
    ] {
        let mut sc = blue_base(opts, label);
        sc.policy = medium_policy();
        sc.power.boost = limit;
        variants.push((label.to_string(), sc));
    }
    run_study("boost", variants, opts.threads)
}

/// Per-job β (paper future work): fixed 0.5 vs. uniform spreads.
pub fn beta(opts: &ExpOptions) -> Ablation {
    let specs: Vec<(&str, BetaSpec)> = vec![
        ("beta=0.5", BetaSpec::Fixed(0.5)),
        (
            "beta=0.5±0.2",
            BetaSpec::PerJob {
                mean: 0.5,
                spread: 0.2,
            },
        ),
        (
            "beta=0.5±0.4",
            BetaSpec::PerJob {
                mean: 0.5,
                spread: 0.4,
            },
        ),
        ("beta=0.3", BetaSpec::Fixed(0.3)),
        ("beta=0.8", BetaSpec::Fixed(0.8)),
    ];
    let mut variants = vec![("EASY-no-DVFS".to_string(), blue_base(opts, "beta-base"))];
    for (label, spec) in specs {
        let mut sc = blue_base(opts, label);
        sc.policy = medium_policy();
        if let WorkloadSpec::Synthetic { beta, .. } = &mut sc.workload {
            *beta = Some(spec);
        }
        variants.push((label.to_string(), sc));
    }
    run_study("beta", variants, opts.threads)
}

/// Scheduling substrate: EASY vs. conservative backfilling vs. plain FCFS
/// (no backfilling), each with and without the power-aware policy.
pub fn fcfs(opts: &ExpOptions) -> Ablation {
    use bsld_sched::SchedMode;
    let mut variants = Vec::new();
    for (label, mode, backfill, dvfs) in [
        ("EASY", SchedMode::Easy, true, false),
        ("EASY+DVFS", SchedMode::Easy, true, true),
        ("CONS", SchedMode::Conservative, true, false),
        ("CONS+DVFS", SchedMode::Conservative, true, true),
        ("FCFS", SchedMode::Easy, false, false),
        ("FCFS+DVFS", SchedMode::Easy, false, true),
    ] {
        let mut sc = blue_base(opts, label);
        sc.engine.mode = mode;
        sc.engine.backfill = backfill;
        if dvfs {
            sc.policy = medium_policy();
        }
        variants.push((label.to_string(), sc));
    }
    run_study("fcfs", variants, opts.threads)
}

/// Resource selection: First Fit (paper) vs. Last Fit vs. contiguous
/// First Fit, under the no-DVFS baseline and the medium policy. Contiguous
/// selection exposes fragmentation: jobs wait even when enough processors
/// are free.
pub fn selection(opts: &ExpOptions) -> Ablation {
    use bsld_cluster::SelectionPolicy;
    let mut variants = Vec::new();
    for (label, sel, dvfs) in [
        ("FirstFit (paper)", SelectionPolicy::FirstFit, false),
        ("FirstFit+DVFS", SelectionPolicy::FirstFit, true),
        ("LastFit", SelectionPolicy::LastFit, false),
        ("LastFit+DVFS", SelectionPolicy::LastFit, true),
        ("Contiguous", SelectionPolicy::ContiguousFirstFit, false),
        ("Contiguous+DVFS", SelectionPolicy::ContiguousFirstFit, true),
    ] {
        let mut sc = Scenario::synthetic(label, ProfileName::Ctc, opts.jobs, opts.seed);
        sc.engine.selection = sel;
        if dvfs {
            sc.policy = medium_policy();
        }
        variants.push((label.to_string(), sc));
    }
    run_study("selection", variants, opts.threads)
}

/// Gear-set granularity: 2, 3, 6 (paper) and 12 gears spanning the same
/// frequency/voltage range.
pub fn gears(opts: &ExpOptions) -> Ablation {
    let mut variants = vec![("EASY-no-DVFS".to_string(), blue_base(opts, "gears-base"))];
    for (label, spec) in [
        ("2 gears", GearSpec::Interpolated(2)),
        ("3 gears", GearSpec::Interpolated(3)),
        ("6 gears (paper)", GearSpec::Paper),
        ("12 gears", GearSpec::Interpolated(12)),
    ] {
        let mut sc = blue_base(opts, label);
        sc.cluster.gears = spec;
        sc.policy = medium_policy();
        variants.push((label.to_string(), sc));
    }
    run_study("gears", variants, opts.threads)
}

/// Engine A/B: the incremental scheduling hot path against the full
/// re-scheduling oracle, under both substrates with the medium policy.
/// Every INC row must equal its FULL twin — the outcome streams are
/// bit-identical by construction (see `tests/incremental_ab.rs`); the
/// table is the experiment-level witness.
pub fn engine(opts: &ExpOptions) -> Ablation {
    use bsld_sched::SchedMode;
    let mut variants = Vec::new();
    for (label, mode, incremental) in [
        ("EASY-INC", SchedMode::Easy, true),
        ("EASY-FULL", SchedMode::Easy, false),
        ("CONS-INC", SchedMode::Conservative, true),
        ("CONS-FULL", SchedMode::Conservative, false),
    ] {
        let mut sc = blue_base(opts, label);
        sc.engine.mode = mode;
        sc.engine.incremental = incremental;
        sc.policy = medium_policy();
        variants.push((label.to_string(), sc));
    }
    run_study("engine", variants, opts.threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_improves_bsld_over_no_boost() {
        let a = boost(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 5);
        let no = a.row("no-boost").unwrap();
        let aggressive = a.row("boost@0").unwrap();
        assert!(
            aggressive.avg_bsld <= no.avg_bsld + 1e-9,
            "boost must not worsen BSLD: {} vs {}",
            aggressive.avg_bsld,
            no.avg_bsld
        );
        assert!(aggressive.norm_e_comp >= no.norm_e_comp - 1e-9);
    }

    #[test]
    fn engine_ab_rows_are_twins() {
        // The incremental engine and the full re-scan oracle must agree to
        // the bit, under both substrates.
        let a = engine(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 4);
        for (inc, full) in [("EASY-INC", "EASY-FULL"), ("CONS-INC", "CONS-FULL")] {
            let i = a.row(inc).unwrap();
            let f = a.row(full).unwrap();
            assert_eq!(i.avg_bsld.to_bits(), f.avg_bsld.to_bits(), "{inc}");
            assert_eq!(i.avg_wait.to_bits(), f.avg_wait.to_bits(), "{inc}");
            assert_eq!(i.norm_e_comp.to_bits(), f.norm_e_comp.to_bits(), "{inc}");
            assert_eq!(i.reduced_jobs, f.reduced_jobs, "{inc}");
        }
    }

    #[test]
    fn fcfs_is_worse_than_easy() {
        let a = fcfs(&ExpOptions::quick(200));
        let easy = a.row("EASY").unwrap();
        let cons = a.row("CONS").unwrap();
        let fcfs_row = a.row("FCFS").unwrap();
        assert!(fcfs_row.avg_wait >= easy.avg_wait);
        assert!(
            fcfs_row.avg_wait >= cons.avg_wait,
            "conservative still backfills"
        );
    }

    #[test]
    fn selection_ablation_contiguous_not_better() {
        let a = selection(&ExpOptions::quick(200));
        assert_eq!(a.rows.len(), 6);
        let ff = a.row("FirstFit (paper)").unwrap();
        let contig = a.row("Contiguous").unwrap();
        assert!(
            contig.avg_wait >= ff.avg_wait - 1.0,
            "fragmentation cannot shorten waits: {} vs {}",
            contig.avg_wait,
            ff.avg_wait
        );
        // Non-contiguous policies are schedule-equivalent (processor
        // identity does not matter to count-based scheduling).
        let lf = a.row("LastFit").unwrap();
        assert!((lf.avg_wait - ff.avg_wait).abs() < 1e-9);
        assert!((lf.avg_bsld - ff.avg_bsld).abs() < 1e-9);
    }

    #[test]
    fn more_gears_never_hurt_energy() {
        let a = gears(&ExpOptions::quick(150));
        let g2 = a.row("2 gears").unwrap().norm_e_comp;
        let g12 = a.row("12 gears").unwrap().norm_e_comp;
        // Finer gear sets give the policy strictly more options; with the
        // β=0.5 efficiency ordering they can only match or improve energy.
        assert!(g12 <= g2 + 0.02, "12 gears {g12} vs 2 gears {g2}");
    }

    #[test]
    fn beta_study_runs() {
        let a = beta(&ExpOptions::quick(120));
        assert_eq!(a.rows.len(), 6);
        assert!(a.render().contains("beta"));
    }
}
