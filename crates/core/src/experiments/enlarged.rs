//! Figures 7, 8, 9 and Table 3 — enlarged DVFS systems.
//!
//! The paper's Section 5.2 reruns the same workloads on machines enlarged
//! by 10–125 % under the power-aware scheduler (`BSLD_threshold = 2`,
//! `WQ_threshold ∈ {0, NO}`) and asks whether more DVFS processors can cut
//! energy *and* improve performance. One sweep supplies:
//!
//! * **Figure 7** — normalized energy vs. size, `WQ = 0` (both scenarios);
//! * **Figure 8** — the same for `WQ = NO LIMIT`;
//! * **Figure 9** — average BSLD vs. size for both `WQ` settings;
//! * **Table 3** — average wait times for the five configurations.
//!
//! Energies are normalized against the **original-size no-DVFS** run; the
//! idle-aware scenario charges idle power for the *enlarged* machine, which
//! is what creates the paper's energy minimum at moderate enlargement.

use bsld_metrics::{RunMetrics, TextTable};

use super::{cell_scenario, expect_run, fmt, write_artifact, ExpOptions};
use crate::policy::{PowerAwareConfig, WqThreshold};
use crate::scenario::{self, ProfileName};

/// The paper's system-size increases, percent.
pub const SIZE_INCREASES: [u32; 7] = [0, 10, 20, 50, 75, 100, 125];

/// The two `WQ_threshold` settings of the enlarged study.
pub const WQ_SETTINGS: [WqThreshold; 2] = [WqThreshold::Limit(0), WqThreshold::NoLimit];

/// One enlarged-system cell.
#[derive(Debug, Clone)]
pub struct EnlargedCell {
    /// Workload name.
    pub workload: String,
    /// System size increase, percent.
    pub size_pct: u32,
    /// `WQ_threshold` used (BSLD threshold is fixed at 2).
    pub wq: WqThreshold,
    /// Computational energy normalized to original-size no-DVFS.
    pub norm_e_comp: f64,
    /// Idle-aware energy normalized to original-size no-DVFS.
    pub norm_e_idle: f64,
    /// Average BSLD.
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait: f64,
    /// Jobs run at reduced frequency.
    pub reduced_jobs: usize,
}

/// The full enlarged-systems sweep.
#[derive(Debug, Clone)]
pub struct EnlargedStudy {
    /// All cells (workload-major, then size, then WQ setting).
    pub cells: Vec<EnlargedCell>,
    /// `(workload, original-size baseline)` — the normalization reference.
    pub baselines: Vec<(String, RunMetrics)>,
}

/// Runs the sweep: per workload, 1 baseline + 7 sizes × 2 WQ settings,
/// every cell a declarative [`scenario::Scenario`].
pub fn run(opts: &ExpOptions) -> EnlargedStudy {
    let mut tasks: Vec<(ProfileName, u32, Option<WqThreshold>)> = Vec::new();
    for p in ProfileName::ALL {
        tasks.push((p, 0, None)); // original size, no DVFS
        for &size in &SIZE_INCREASES {
            for &wq in &WQ_SETTINGS {
                tasks.push((p, size, Some(wq)));
            }
        }
    }
    let scenarios: Vec<scenario::Scenario> = tasks
        .iter()
        .map(|(p, size, wq)| {
            let cfg = wq.map(|wq| PowerAwareConfig {
                bsld_threshold: 2.0,
                wq_threshold: wq,
            });
            cell_scenario(*p, opts, *size, cfg.as_ref())
        })
        .collect();
    let results = scenario::run_many(&scenarios, opts.threads);

    let mut baselines: Vec<(String, RunMetrics)> = Vec::new();
    let mut cells = Vec::new();
    for ((p, size, wq), res) in tasks.into_iter().zip(results) {
        let m = expect_run(res).run.metrics;
        let name = p.display_name().to_string();
        match wq {
            None => baselines.push((name, m)),
            Some(wq) => {
                let base = &baselines
                    .iter()
                    .find(|(n, _)| *n == name)
                    // audit:allow(R1): scenario list interleaves each baseline before its cells
                    .expect("baseline first")
                    .1;
                cells.push(EnlargedCell {
                    workload: name,
                    size_pct: size,
                    wq,
                    norm_e_comp: m.energy.normalized_computational(&base.energy),
                    norm_e_idle: m.energy.normalized_with_idle(&base.energy),
                    avg_bsld: m.avg_bsld,
                    avg_wait: m.avg_wait_secs,
                    reduced_jobs: m.reduced_jobs,
                });
            }
        }
    }
    EnlargedStudy { cells, baselines }
}

impl EnlargedStudy {
    /// The cell for an exact combination.
    pub fn cell(&self, workload: &str, size_pct: u32, wq: WqThreshold) -> Option<&EnlargedCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.size_pct == size_pct && c.wq == wq)
    }

    /// The baseline metrics of a workload.
    pub fn baseline(&self, workload: &str) -> Option<&RunMetrics> {
        self.baselines
            .iter()
            .find(|(n, _)| n == workload)
            .map(|(_, m)| m)
    }

    /// Figures 7/8: energy vs. size for one WQ setting and one scenario.
    pub fn render_energy(&self, wq: WqThreshold, idle_low: bool) -> String {
        let fig = if wq == WqThreshold::Limit(0) {
            "Figure 7"
        } else {
            "Figure 8"
        };
        let scen = if idle_low { "idle=low" } else { "idle=0" };
        let mut headers = vec!["Workload".to_string()];
        headers.extend(SIZE_INCREASES.iter().map(|s| format!("+{s}%")));
        let mut t = TextTable::new(headers);
        for (name, _) in &self.baselines {
            let mut row = vec![name.clone()];
            for &size in &SIZE_INCREASES {
                // audit:allow(R1): the sweep above produced every (size, wq) cell
                let c = self.cell(name, size, wq).expect("complete sweep");
                row.push(fmt(
                    if idle_low {
                        c.norm_e_idle
                    } else {
                        c.norm_e_comp
                    } * 100.0,
                    1,
                ));
            }
            t.row(row);
        }
        format!(
            "{fig}: normalized energy (%) of enlarged systems, WQ = {}, {scen}\n{}",
            wq.label(),
            t.render()
        )
    }

    /// Figure 9: average BSLD vs. size for one WQ setting.
    pub fn render_bsld(&self, wq: WqThreshold) -> String {
        let mut headers = vec!["Workload".to_string(), "base".to_string()];
        headers.extend(SIZE_INCREASES.iter().map(|s| format!("+{s}%")));
        let mut t = TextTable::new(headers);
        for (name, base) in &self.baselines {
            let mut row = vec![name.clone(), fmt(base.avg_bsld, 2)];
            for &size in &SIZE_INCREASES {
                // audit:allow(R1): the sweep above produced every (size, wq) cell
                let c = self.cell(name, size, wq).expect("complete sweep");
                row.push(fmt(c.avg_bsld, 2));
            }
            t.row(row);
        }
        format!(
            "Figure 9: average BSLD of enlarged systems, WQ = {}\n{}",
            wq.label(),
            t.render()
        )
    }

    /// Table 3: average wait for the paper's five configurations.
    pub fn render_table3(&self) -> String {
        let mut t = TextTable::new(vec![
            "Workload",
            "OrigNoDVFS",
            "OrigWQ0",
            "OrigWQNo",
            "+50%WQ0",
            "+50%WQNo",
        ]);
        for (name, base) in &self.baselines {
            let g = |size: u32, wq: WqThreshold| {
                fmt(
                    // audit:allow(R1): the sweep above produced every (size, wq) cell
                    self.cell(name, size, wq).expect("complete sweep").avg_wait,
                    0,
                )
            };
            t.row(vec![
                name.clone(),
                fmt(base.avg_wait_secs, 0),
                g(0, WqThreshold::Limit(0)),
                g(0, WqThreshold::NoLimit),
                g(50, WqThreshold::Limit(0)),
                g(50, WqThreshold::NoLimit),
            ]);
        }
        format!(
            "Table 3: average wait time (s), BSLDthreshold = 2\n{}",
            t.render()
        )
    }

    /// Writes `fig7_fig8_fig9_enlarged.csv` and `table3_wait.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.workload.clone(),
                    c.size_pct.to_string(),
                    c.wq.label(),
                    fmt(c.norm_e_comp, 5),
                    fmt(c.norm_e_idle, 5),
                    fmt(c.avg_bsld, 4),
                    fmt(c.avg_wait, 1),
                    c.reduced_jobs.to_string(),
                ]
            })
            .collect();
        if let Some(p) = write_artifact(
            opts,
            "fig7_fig8_fig9_enlarged",
            &[
                "workload",
                "size_increase_pct",
                "wq_threshold",
                "norm_energy_idle0",
                "norm_energy_idlelow",
                "avg_bsld",
                "avg_wait_s",
                "reduced_jobs",
            ],
            &rows,
        )? {
            written.push(p);
        }
        let t3: Vec<Vec<String>> = self
            .baselines
            .iter()
            .map(|(name, base)| {
                let g = |size: u32, wq: WqThreshold| {
                    fmt(
                        // audit:allow(R1): the sweep above produced every (size, wq) cell
                        self.cell(name, size, wq).expect("complete sweep").avg_wait,
                        1,
                    )
                };
                vec![
                    name.clone(),
                    fmt(base.avg_wait_secs, 1),
                    g(0, WqThreshold::Limit(0)),
                    g(0, WqThreshold::NoLimit),
                    g(50, WqThreshold::Limit(0)),
                    g(50, WqThreshold::NoLimit),
                ]
            })
            .collect();
        if let Some(p) = write_artifact(
            opts,
            "table3_wait",
            &[
                "workload",
                "orig_no_dvfs",
                "orig_wq0",
                "orig_wqno",
                "inc50_wq0",
                "inc50_wqno",
            ],
            &t3,
        )? {
            written.push(p);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EnlargedStudy {
        run(&ExpOptions::quick(40))
    }

    #[test]
    fn sweep_is_complete() {
        let s = small();
        assert_eq!(s.baselines.len(), 5);
        assert_eq!(s.cells.len(), 5 * SIZE_INCREASES.len() * 2);
        assert!(s.cell("CTC", 125, WqThreshold::NoLimit).is_some());
        assert!(s.baseline("SDSC").is_some());
    }

    #[test]
    fn larger_systems_wait_less() {
        let s = small();
        for (name, _) in &s.baselines {
            let w0 = s.cell(name, 0, WqThreshold::NoLimit).unwrap().avg_wait;
            let w125 = s.cell(name, 125, WqThreshold::NoLimit).unwrap().avg_wait;
            assert!(w125 <= w0, "{name}: {w125} > {w0}");
        }
    }

    #[test]
    fn renders_do_not_panic() {
        let s = small();
        for text in [
            s.render_energy(WqThreshold::Limit(0), false),
            s.render_energy(WqThreshold::Limit(0), true),
            s.render_energy(WqThreshold::NoLimit, false),
            s.render_energy(WqThreshold::NoLimit, true),
            s.render_bsld(WqThreshold::Limit(0)),
            s.render_bsld(WqThreshold::NoLimit),
            s.render_table3(),
        ] {
            assert!(text.contains("CTC"), "{text}");
        }
    }
}
