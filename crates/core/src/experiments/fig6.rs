//! Figure 6 — SDSC-Blue wait-time behaviour over time.
//!
//! The paper plots per-job wait time for a stretch of the SDSC-Blue
//! workload, comparing the original schedule against the power-aware
//! scheduler at `BSLD_threshold = 2`, `WQ_threshold = 16`, and observes the
//! DVFS run waiting visibly longer. This experiment produces the same two
//! series, aligned by job.

use bsld_metrics::series::wait_series;
use bsld_metrics::TextTable;

use super::{cell_scenario, expect_run, fmt, write_artifact, ExpOptions};
use crate::policy::{PowerAwareConfig, WqThreshold};
use crate::scenario::{self, ProfileName};

/// The two aligned wait series.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(arrival_secs, wait_secs)` per job, baseline run.
    pub orig: Vec<(u64, u64)>,
    /// Same jobs under `BSLD_threshold = 2`, `WQ_threshold = 16`.
    pub dvfs: Vec<(u64, u64)>,
}

/// Runs both SDSC-Blue simulations as declarative scenarios.
pub fn run(opts: &ExpOptions) -> Fig6 {
    let cfg = PowerAwareConfig {
        bsld_threshold: 2.0,
        wq_threshold: WqThreshold::Limit(16),
    };
    let scenarios = vec![
        cell_scenario(ProfileName::SdscBlue, opts, 0, None),
        cell_scenario(ProfileName::SdscBlue, opts, 0, Some(&cfg)),
    ];
    let mut it = scenario::run_many(&scenarios, opts.threads).into_iter();
    let orig = wait_series(
        // audit:allow(R1): run_many returns exactly one result per scenario; two scenarios above
        &expect_run(it.next().expect("two scenarios submitted"))
            .run
            .outcomes,
    );
    let dvfs = wait_series(
        // audit:allow(R1): same invariant as the line above
        &expect_run(it.next().expect("two scenarios submitted"))
            .run
            .outcomes,
    );
    Fig6 { orig, dvfs }
}

impl Fig6 {
    /// Mean wait of each series (summary shown with the figure).
    pub fn mean_waits(&self) -> (f64, f64) {
        let mean = |s: &[(u64, u64)]| {
            if s.is_empty() {
                0.0
            } else {
                s.iter().map(|&(_, w)| w as f64).sum::<f64>() / s.len() as f64
            }
        };
        (mean(&self.orig), mean(&self.dvfs))
    }

    /// Renders a textual zoom: a few windows of the series plus the means.
    pub fn render(&self) -> String {
        let (mo, md) = self.mean_waits();
        let mut t = TextTable::new(vec![
            "job#",
            "arrival(s)",
            "wait orig(s)",
            "wait DVFS_2_16(s)",
        ]);
        // Sample every nth job to keep the text digestible (the CSV holds
        // the full series).
        let n = self.orig.len().max(1);
        let step = (n / 40).max(1);
        for i in (0..self.orig.len().min(self.dvfs.len())).step_by(step) {
            t.row(vec![
                i.to_string(),
                self.orig[i].0.to_string(),
                self.orig[i].1.to_string(),
                self.dvfs[i].1.to_string(),
            ]);
        }
        format!(
            "Figure 6: SDSCBlue wait time, original vs DVFS(BSLDth=2, WQ=16)\n{}\nmean wait: orig = {} s, DVFS_2_16 = {} s\n",
            t.render(),
            fmt(mo, 0),
            fmt(md, 0),
        )
    }

    /// Writes `fig6_wait_series.csv` (full series).
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Option<std::path::PathBuf>> {
        let rows: Vec<Vec<String>> = self
            .orig
            .iter()
            .zip(&self.dvfs)
            .enumerate()
            .map(|(i, (&(arr, wo), &(_, wd)))| {
                vec![
                    i.to_string(),
                    arr.to_string(),
                    wo.to_string(),
                    wd.to_string(),
                ]
            })
            .collect();
        write_artifact(
            opts,
            "fig6_wait_series",
            &["job_index", "arrival_s", "wait_orig_s", "wait_dvfs_2_16_s"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_align_and_dvfs_waits_more() {
        let f = run(&ExpOptions::quick(400));
        assert_eq!(f.orig.len(), 400);
        assert_eq!(f.dvfs.len(), 400);
        // Arrivals identical (same workload).
        for (a, b) in f.orig.iter().zip(&f.dvfs) {
            assert_eq!(a.0, b.0);
        }
        let (mo, md) = f.mean_waits();
        assert!(
            md >= mo,
            "frequency scaling must not decrease mean wait: {md} vs {mo}"
        );
        let text = f.render();
        assert!(text.contains("SDSCBlue"));
    }
}
