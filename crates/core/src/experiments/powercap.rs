//! Beyond-paper experiment: the energy/BSLD frontier under cluster power
//! caps.
//!
//! For every workload, sweep hard-cap levels (fractions of the machine's
//! peak draw) × the paper's `BSLD_threshold` values, with the default idle
//! sleep ladder enabled, and compare each cell's *ledger* energy (the
//! exact `∫ P dt`, wake penalties included) and average BSLD against the
//! uncapped no-DVFS baseline of the same workload. The result is the
//! trade-off frontier a power-constrained center actually navigates: how
//! much energy a budget saves and what it costs in job slowdown.

use bsld_metrics::TextTable;

use super::{cell_scenario, fmt, write_artifact, ExpOptions};
use crate::policy::{PowerAwareConfig, WqThreshold};
use crate::scenario::{self, ProfileName, SleepSpec};

/// The swept cap levels, as fractions of peak draw. `1.0` effectively
/// disables the budget (the machine can never exceed its peak) and
/// isolates the effect of sleep states + DVFS.
pub const CAP_FRACTIONS: [f64; 4] = [0.45, 0.6, 0.8, 1.0];

/// The swept `BSLD_threshold` values (the paper's set).
pub const BSLD_THRESHOLDS: [f64; 3] = [1.5, 2.0, 3.0];

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct CapCell {
    /// Workload name.
    pub workload: String,
    /// Cap level as a fraction of peak draw.
    pub cap_fraction: f64,
    /// `BSLD_threshold` of the DVFS policy running under the cap.
    pub bsld_threshold: f64,
    /// Ledger energy normalised to the workload's uncapped no-DVFS
    /// baseline ledger energy.
    pub norm_energy: f64,
    /// Average BSLD of the capped run.
    pub avg_bsld: f64,
    /// Peak draw observed, as a fraction of the configured budget.
    pub peak_over_budget: f64,
    /// Budget-denied admissions, counted per scheduling pass (sustained
    /// pressure, not distinct jobs — see `bsld_powercap::CapStats`).
    pub deferrals: u64,
    /// Starts admitted at a lower gear than the policy chose.
    pub downgears: u64,
    /// Processor wakes from sleep states.
    pub wakes: u64,
    /// Makespan of the capped run, seconds.
    pub makespan_s: u64,
}

/// Per-workload uncapped baseline.
#[derive(Debug, Clone)]
pub struct CapBaseline {
    /// Workload name.
    pub workload: String,
    /// Ledger energy of the uncapped, no-DVFS, no-sleep run.
    pub energy: f64,
    /// Its average BSLD.
    pub avg_bsld: f64,
}

/// The sweep: all cells plus the baselines they were normalised against.
#[derive(Debug, Clone)]
pub struct CapSweep {
    /// Cells, workload-major, then cap level, then threshold.
    pub cells: Vec<CapCell>,
    /// Uncapped baselines, paper workload order.
    pub baselines: Vec<CapBaseline>,
}

/// Runs the sweep over the paper's five workloads, every cell a
/// power-instrumented declarative [`scenario::Scenario`].
pub fn run(opts: &ExpOptions) -> CapSweep {
    // (profile, Option<(cap fraction, threshold)>) — None = baseline.
    let mut tasks: Vec<(ProfileName, Option<(f64, f64)>)> = Vec::new();
    for p in ProfileName::ALL {
        tasks.push((p, None));
        for &cap in &CAP_FRACTIONS {
            for &th in &BSLD_THRESHOLDS {
                tasks.push((p, Some((cap, th))));
            }
        }
    }
    let scenarios: Vec<scenario::Scenario> = tasks
        .iter()
        .map(|(p, cell)| {
            let cfg = cell.map(|(_, th)| PowerAwareConfig {
                bsld_threshold: th,
                wq_threshold: WqThreshold::NoLimit,
            });
            let mut sc = cell_scenario(*p, opts, 0, cfg.as_ref());
            sc.power.observe = true;
            if let Some((cap, _)) = cell {
                sc.power.cap_fraction = Some(*cap);
                sc.power.sleep = SleepSpec::Paper;
            }
            sc
        })
        .collect();
    let results = scenario::run_many(&scenarios, opts.threads);

    let mut baselines: Vec<CapBaseline> = Vec::new();
    let mut cells = Vec::new();
    for ((p, cell), res) in tasks.into_iter().zip(results) {
        // audit:allow(R1): swept cap fractions are chosen feasible for generated workloads
        let res = res.expect("cap fractions in the sweep are feasible for generated workloads");
        let r = crate::sim::PowerCappedResult {
            run: res.run,
            // audit:allow(R1): observe=true forces power instrumentation on this path
            power: res.power.expect("instrumented cells report power"),
        };
        let name = p.display_name().to_string();
        match cell {
            None => baselines.push(CapBaseline {
                workload: name,
                energy: r.power.energy,
                avg_bsld: r.run.metrics.avg_bsld,
            }),
            Some((cap, th)) => {
                let base = baselines
                    .iter()
                    .find(|b| b.workload == name)
                    // audit:allow(R1): scenario list interleaves each baseline before its cells
                    .expect("baseline precedes cells");
                // audit:allow(R1): capped cells always carry a budget by construction
                let budget = r.power.budget.expect("capped cells have a budget");
                cells.push(CapCell {
                    workload: name,
                    cap_fraction: cap,
                    bsld_threshold: th,
                    norm_energy: r.power.energy / base.energy,
                    avg_bsld: r.run.metrics.avg_bsld,
                    peak_over_budget: r.power.peak / budget,
                    deferrals: r.power.cap.deferrals,
                    downgears: r.power.cap.downgears,
                    wakes: r.power.sleep.wakes,
                    makespan_s: r.run.metrics.makespan_secs,
                });
            }
        }
    }
    CapSweep { cells, baselines }
}

impl CapSweep {
    /// The cell for an exact parameter combination.
    // The floats compared are sweep-axis literals copied verbatim into the
    // cells, so exact equality is the correct lookup key.
    #[allow(clippy::float_cmp)]
    pub fn cell(&self, workload: &str, cap: f64, th: f64) -> Option<&CapCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.cap_fraction == cap && c.bsld_threshold == th)
    }

    /// The energy/BSLD frontier: for every `(cap, threshold)` pair, the
    /// mean normalised energy and mean BSLD across workloads.
    // Same exact-key argument as `cell` above.
    #[allow(clippy::float_cmp)]
    pub fn frontier(&self) -> Vec<(f64, f64, f64, f64)> {
        let mut out = Vec::new();
        for &cap in &CAP_FRACTIONS {
            for &th in &BSLD_THRESHOLDS {
                let cells: Vec<&CapCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.cap_fraction == cap && c.bsld_threshold == th)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                let n = cells.len() as f64;
                let e = cells.iter().map(|c| c.norm_energy).sum::<f64>() / n;
                let b = cells.iter().map(|c| c.avg_bsld).sum::<f64>() / n;
                out.push((cap, th, e, b));
            }
        }
        out
    }

    /// Renders the frontier table (the experiment's headline artifact).
    pub fn render_frontier(&self) -> String {
        let mut t = TextTable::new(vec![
            "cap (x peak)".to_string(),
            "BSLDth".to_string(),
            "mean norm energy".to_string(),
            "mean avg BSLD".to_string(),
        ]);
        for (cap, th, e, b) in self.frontier() {
            t.row(vec![fmt(cap, 2), fmt(th, 1), fmt(e, 3), fmt(b, 2)]);
        }
        let mut base = String::from("uncapped no-DVFS baseline avg BSLD: ");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                base.push_str(", ");
            }
            base.push_str(&format!("{}={:.2}", b.workload, b.avg_bsld));
        }
        format!(
            "Power-cap sweep: energy/BSLD trade-off frontier\n\
             (ledger energy incl. idle & wake penalties, normalised per workload)\n{}{}\n",
            t.render(),
            base
        )
    }

    /// Renders the full per-workload grid.
    pub fn render_cells(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload".to_string(),
            "cap".to_string(),
            "BSLDth".to_string(),
            "norm energy".to_string(),
            "avg BSLD".to_string(),
            "peak/budget".to_string(),
            "deferrals".to_string(),
            "downgears".to_string(),
            "wakes".to_string(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.workload.clone(),
                fmt(c.cap_fraction, 2),
                fmt(c.bsld_threshold, 1),
                fmt(c.norm_energy, 3),
                fmt(c.avg_bsld, 2),
                fmt(c.peak_over_budget, 3),
                c.deferrals.to_string(),
                c.downgears.to_string(),
                c.wakes.to_string(),
            ]);
        }
        format!("Power-cap sweep: all cells\n{}", t.render())
    }

    /// Writes `powercap_sweep.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Vec<std::path::PathBuf>> {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.workload.clone(),
                    fmt(c.cap_fraction, 2),
                    fmt(c.bsld_threshold, 1),
                    fmt(c.norm_energy, 5),
                    fmt(c.avg_bsld, 4),
                    fmt(c.peak_over_budget, 5),
                    c.deferrals.to_string(),
                    c.downgears.to_string(),
                    c.wakes.to_string(),
                    c.makespan_s.to_string(),
                ]
            })
            .collect();
        let headers = [
            "workload",
            "cap_fraction",
            "bsld_threshold",
            "norm_energy",
            "avg_bsld",
            "peak_over_budget",
            "deferrals",
            "downgears",
            "wakes",
            "makespan_s",
        ];
        let mut written = Vec::new();
        if let Some(p) = write_artifact(opts, "powercap_sweep", &headers, &rows)? {
            written.push(p);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> CapSweep {
        run(&ExpOptions::quick(40))
    }

    #[test]
    fn sweep_is_complete_and_caps_hold() {
        let s = small_sweep();
        assert_eq!(s.baselines.len(), 5);
        assert_eq!(
            s.cells.len(),
            5 * CAP_FRACTIONS.len() * BSLD_THRESHOLDS.len()
        );
        for c in &s.cells {
            assert!(c.norm_energy > 0.0, "{c:?}");
            assert!(c.peak_over_budget <= 1.0 + 1e-9, "hard cap violated: {c:?}");
        }
    }

    #[test]
    fn frontier_covers_every_pair_and_renders() {
        let s = small_sweep();
        assert_eq!(
            s.frontier().len(),
            CAP_FRACTIONS.len() * BSLD_THRESHOLDS.len()
        );
        let f = s.render_frontier();
        assert!(f.contains("frontier"));
        assert!(s.render_cells().contains("CTC"));
    }

    #[test]
    fn tighter_caps_do_not_raise_energy_much() {
        // The frontier must be usable: with sleep states on, every capped
        // cell should save idle-aware energy vs the sleepless baseline.
        let s = small_sweep();
        for c in &s.cells {
            assert!(
                c.norm_energy < 1.25,
                "capped+sleep cell costs more energy: {c:?}"
            );
        }
    }

    #[test]
    fn csv_noop_without_dir() {
        let s = small_sweep();
        assert!(s.write_csv(&ExpOptions::quick(10)).unwrap().is_empty());
    }
}
