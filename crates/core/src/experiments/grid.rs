//! Figures 3, 4 and 5 — the original-system-size parameter grid.
//!
//! One sweep drives all three figures: for every workload and every
//! combination of `BSLD_threshold ∈ {1.5, 2, 3}` and `WQ_threshold ∈
//! {0, 4, 16, NO}`, run the power-aware scheduler and compare against the
//! workload's no-DVFS baseline.
//!
//! * **Figure 3** — normalized CPU energy, in both idle scenarios;
//! * **Figure 4** — number of jobs run at reduced frequency;
//! * **Figure 5** — average BSLD.

use bsld_metrics::{RunMetrics, TextTable};

use super::{cell_scenario, expect_run, fmt, write_artifact, ExpOptions};
use crate::policy::{PowerAwareConfig, WqThreshold};
use crate::scenario::{self, ProfileName};

/// The paper's `BSLD_threshold` values.
pub const BSLD_THRESHOLDS: [f64; 3] = [1.5, 2.0, 3.0];

/// The paper's `WQ_threshold` values.
pub const WQ_THRESHOLDS: [WqThreshold; 4] = [
    WqThreshold::Limit(0),
    WqThreshold::Limit(4),
    WqThreshold::Limit(16),
    WqThreshold::NoLimit,
];

/// One grid cell: a `(workload, BSLD_threshold, WQ_threshold)` run
/// normalized against that workload's baseline.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Workload name.
    pub workload: String,
    /// The policy parameters of this cell.
    pub cfg: PowerAwareConfig,
    /// Computational energy normalized to the baseline (Fig. 3 left).
    pub norm_e_comp: f64,
    /// Idle-aware energy normalized to the baseline (Fig. 3 right).
    pub norm_e_idle: f64,
    /// Jobs run at reduced frequency (Fig. 4).
    pub reduced_jobs: usize,
    /// Average BSLD (Fig. 5).
    pub avg_bsld: f64,
    /// Average wait, seconds (Table 3 context).
    pub avg_wait: f64,
}

/// The grid plus the per-workload baselines it was normalized against.
#[derive(Debug, Clone)]
pub struct OriginalSizeGrid {
    /// All cells, ordered workload-major then `BSLD_threshold` then
    /// `WQ_threshold` (the paper's figure order).
    pub cells: Vec<GridCell>,
    /// `(workload, baseline metrics)` in paper order.
    pub baselines: Vec<(String, RunMetrics)>,
}

/// Runs the full grid: 5 workloads × (1 baseline + 12 policy cells), every
/// cell a declarative [`scenario::Scenario`] run through `bsld-par`.
pub fn run(opts: &ExpOptions) -> OriginalSizeGrid {
    // Task list: (profile, Option<cfg>) — baseline first per workload.
    let mut tasks: Vec<(ProfileName, Option<PowerAwareConfig>)> = Vec::new();
    for p in ProfileName::ALL {
        tasks.push((p, None));
        for &bt in &BSLD_THRESHOLDS {
            for &wq in &WQ_THRESHOLDS {
                tasks.push((
                    p,
                    Some(PowerAwareConfig {
                        bsld_threshold: bt,
                        wq_threshold: wq,
                    }),
                ));
            }
        }
    }
    let scenarios: Vec<scenario::Scenario> = tasks
        .iter()
        .map(|(p, cfg)| cell_scenario(*p, opts, 0, cfg.as_ref()))
        .collect();
    let results = match &opts.trace_out {
        None => scenario::run_many(&scenarios, opts.threads),
        Some(path) => {
            // One buffer per cell, concatenated in expansion order: the
            // trace file is a pure function of the sweep, independent of
            // `opts.threads`.
            let (results, events) = scenario::run_many_traced(&scenarios, opts.threads);
            let cells: Vec<(String, Vec<bsld_obs::TraceEvent>)> = tasks
                .iter()
                .map(|(p, cfg)| match cfg {
                    None => format!("{}-baseline", p.key()),
                    Some(c) => format!("{} {}", p.key(), c.label()),
                })
                .zip(events)
                .collect();
            if let Err(e) = bsld_obs::write_chrome_trace(path, &cells) {
                eprintln!("warning: cannot write trace {}: {e}", path.display());
            }
            results
        }
    };

    let mut baselines: Vec<(String, RunMetrics)> = Vec::new();
    let mut cells = Vec::new();
    for ((p, cfg), res) in tasks.into_iter().zip(results) {
        let m = expect_run(res).run.metrics;
        let name = p.display_name();
        match cfg {
            None => baselines.push((name.to_string(), m)),
            Some(cfg) => {
                let base = &baselines
                    .iter()
                    .find(|(n, _)| n == name)
                    // audit:allow(R1): scenario list interleaves each baseline before its cells
                    .expect("baseline precedes cells")
                    .1;
                cells.push(GridCell {
                    workload: name.to_string(),
                    cfg,
                    norm_e_comp: m.energy.normalized_computational(&base.energy),
                    norm_e_idle: m.energy.normalized_with_idle(&base.energy),
                    reduced_jobs: m.reduced_jobs,
                    avg_bsld: m.avg_bsld,
                    avg_wait: m.avg_wait_secs,
                });
            }
        }
    }
    OriginalSizeGrid { cells, baselines }
}

impl OriginalSizeGrid {
    /// Cells of one workload, figure order.
    pub fn workload(&self, name: &str) -> Vec<&GridCell> {
        self.cells.iter().filter(|c| c.workload == name).collect()
    }

    /// The cell for an exact parameter combination.
    // The thresholds compared are sweep-axis literals copied verbatim into
    // the cells, so exact equality is the correct lookup key.
    #[allow(clippy::float_cmp)]
    pub fn cell(&self, workload: &str, bsld_th: f64, wq: WqThreshold) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.workload == workload && c.cfg.bsld_threshold == bsld_th && c.cfg.wq_threshold == wq
        })
    }

    /// Figure 3: normalized energy table (`idle` picks the scenario).
    pub fn render_fig3(&self, idle_low: bool) -> String {
        let title = if idle_low {
            "Figure 3 (right): normalized CPU energy, idle = low"
        } else {
            "Figure 3 (left): normalized CPU energy, idle = 0 (computational)"
        };
        self.render_metric(title, |c| {
            fmt(
                if idle_low {
                    c.norm_e_idle
                } else {
                    c.norm_e_comp
                },
                3,
            )
        })
    }

    /// Figure 4: reduced-job counts.
    pub fn render_fig4(&self) -> String {
        self.render_metric("Figure 4: jobs run at reduced frequency", |c| {
            c.reduced_jobs.to_string()
        })
    }

    /// Figure 5: average BSLD (baseline in the header for reference).
    pub fn render_fig5(&self) -> String {
        let mut out = self.render_metric("Figure 5: average BSLD", |c| fmt(c.avg_bsld, 2));
        out.push_str("baseline avg BSLD: ");
        for (i, (name, m)) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{name}={:.2}", m.avg_bsld));
        }
        out.push('\n');
        out
    }

    /// Mean energy saving (1 − normalized computational energy) across the
    /// five workloads, per parameter pair — the paper's "7–18 % on average
    /// depending on allowed job performance penalty" headline.
    // Same exact-key argument as `cell` above.
    #[allow(clippy::float_cmp)]
    pub fn average_savings(&self) -> Vec<(PowerAwareConfig, f64)> {
        let mut out = Vec::new();
        for &bt in &BSLD_THRESHOLDS {
            for &wq in &WQ_THRESHOLDS {
                let cells: Vec<&GridCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.cfg.bsld_threshold == bt && c.cfg.wq_threshold == wq)
                    .collect();
                let mean = 1.0
                    - cells.iter().map(|c| c.norm_e_comp).sum::<f64>() / cells.len().max(1) as f64;
                out.push((
                    PowerAwareConfig {
                        bsld_threshold: bt,
                        wq_threshold: wq,
                    },
                    mean,
                ));
            }
        }
        out
    }

    /// Renders the average-savings headline table.
    pub fn render_summary(&self) -> String {
        let mut t = TextTable::new(vec!["BSLDth/WQth", "mean energy saving"]);
        for (cfg, saving) in self.average_savings() {
            t.row(vec![cfg.label(), format!("{:.1}%", saving * 100.0)]);
        }
        format!(
            "Headline: mean computational-energy saving across the five workloads\n\
             (the paper reports 7–18% depending on the allowed performance penalty)\n{}",
            t.render()
        )
    }

    fn render_metric(&self, title: &str, f: impl Fn(&GridCell) -> String) -> String {
        let mut t = TextTable::new(vec![
            "Workload/BSLDth".to_string(),
            "WQ 0".to_string(),
            "WQ 4".to_string(),
            "WQ 16".to_string(),
            "WQ NO".to_string(),
        ]);
        for (name, _) in &self.baselines {
            for &bt in &BSLD_THRESHOLDS {
                let mut row = vec![format!("{name} {bt}")];
                for &wq in &WQ_THRESHOLDS {
                    // audit:allow(R1): the sweep above produced every (bt, wq) cell
                    let cell = self.cell(name, bt, wq).expect("complete grid");
                    row.push(f(cell));
                }
                t.row(row);
            }
        }
        format!("{title}\n{}", t.render())
    }

    /// Writes `fig3_energy.csv`, `fig4_reduced.csv`, `fig5_bsld.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.workload.clone(),
                    fmt(c.cfg.bsld_threshold, 1),
                    c.cfg.wq_threshold.label(),
                    fmt(c.norm_e_comp, 5),
                    fmt(c.norm_e_idle, 5),
                    c.reduced_jobs.to_string(),
                    fmt(c.avg_bsld, 4),
                    fmt(c.avg_wait, 1),
                ]
            })
            .collect();
        let headers = [
            "workload",
            "bsld_threshold",
            "wq_threshold",
            "norm_energy_idle0",
            "norm_energy_idlelow",
            "reduced_jobs",
            "avg_bsld",
            "avg_wait_s",
        ];
        if let Some(p) = write_artifact(opts, "fig3_fig4_fig5_grid", &headers, &rows)? {
            written.push(p);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down grid over two small workloads to keep tests quick.
    fn small_grid() -> OriginalSizeGrid {
        // Reuse the real runner but on scaled profiles by temporarily
        // constructing a custom profile set is invasive; instead run the
        // real five at tiny job counts.
        run(&ExpOptions::quick(40))
    }

    #[test]
    fn grid_is_complete() {
        let g = small_grid();
        assert_eq!(g.baselines.len(), 5);
        assert_eq!(g.cells.len(), 5 * 12);
        for (name, _) in &g.baselines {
            for &bt in &BSLD_THRESHOLDS {
                for &wq in &WQ_THRESHOLDS {
                    assert!(g.cell(name, bt, wq).is_some(), "{name} {bt} {wq:?}");
                }
            }
        }
    }

    #[test]
    fn renders_do_not_panic() {
        let g = small_grid();
        for s in [
            g.render_fig3(false),
            g.render_fig3(true),
            g.render_fig4(),
            g.render_fig5(),
        ] {
            assert!(s.contains("CTC"));
        }
    }

    #[test]
    fn normalized_energy_is_positive() {
        let g = small_grid();
        for c in &g.cells {
            assert!(c.norm_e_comp > 0.0 && c.norm_e_comp < 1.5, "{c:?}");
            // Idle-aware energy can exceed the baseline by a wide margin at
            // this tiny job count: dilation stretches the makespan and the
            // idle term dominates 40-job runs on a lightly loaded machine.
            assert!(c.norm_e_idle > 0.0 && c.norm_e_idle < 3.0, "{c:?}");
        }
    }

    #[test]
    fn average_savings_covers_every_pair() {
        let g = small_grid();
        let s = g.average_savings();
        assert_eq!(s.len(), BSLD_THRESHOLDS.len() * WQ_THRESHOLDS.len());
        for (cfg, saving) in &s {
            assert!(
                (-0.5..1.0).contains(saving),
                "{}: saving {saving} out of plausible range",
                cfg.label()
            );
        }
        assert!(g.render_summary().contains("mean energy saving"));
    }
}
