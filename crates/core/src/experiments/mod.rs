//! The experiment harness: one module per table/figure of the paper.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`table1`] | Table 1 — workload characteristics & baseline avg BSLD |
//! | [`grid`] | Figures 3, 4, 5 — the original-size parameter grid |
//! | [`fig6`] | Figure 6 — SDSC-Blue wait-time series |
//! | [`enlarged`] | Figures 7, 8, 9 and Table 3 — enlarged systems |
//! | [`ablation`] | Beyond-paper ablations (boost, per-job β, FCFS, gears) |
//! | [`powercap`] | Beyond-paper: power-cap levels × BSLD thresholds frontier |
//!
//! Every experiment follows the same shape: a `run(&ExpOptions)` entry point
//! that fans the independent simulations out over [`bsld_par::par_map`],
//! a typed result, a `render()` text report and a `write_csv()` artifact
//! writer.

pub mod ablation;
pub mod enlarged;
pub mod fig6;
pub mod grid;
pub mod powercap;
pub mod table1;

use std::path::PathBuf;

#[cfg(test)]
use bsld_metrics::RunMetrics;

use crate::policy::PowerAwareConfig;
use crate::scenario::{PolicySpec, ProfileName, Scenario, ScenarioResult};

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Master seed; every workload derives its streams from it.
    pub seed: u64,
    /// Jobs per workload (the paper simulates 5 000).
    pub jobs: usize,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Directory for CSV artifacts (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Chrome-trace output path (`None` = tracing disabled, the
    /// no-allocation fast path). Supported by the grid sweep; the file is
    /// byte-identical across replays regardless of `threads`.
    pub trace_out: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 2010,
            jobs: 5000,
            threads: bsld_par::default_threads(),
            out_dir: Some(PathBuf::from("results")),
            trace_out: None,
        }
    }
}

impl ExpOptions {
    /// A reduced-scale configuration for tests and benches.
    pub fn quick(jobs: usize) -> Self {
        ExpOptions {
            seed: 2010,
            jobs,
            threads: bsld_par::default_threads(),
            out_dir: None,
            trace_out: None,
        }
    }
}

/// The per-cell scenario shared by the sweeps: a synthetic workload at the
/// experiment's scale, an optionally enlarged machine, baseline or the
/// power-aware policy.
pub(crate) fn cell_scenario(
    profile: ProfileName,
    opts: &ExpOptions,
    size_increase_pct: u32,
    cfg: Option<&PowerAwareConfig>,
) -> Scenario {
    let mut sc = Scenario::synthetic(
        format!("{}-x{}", profile.key(), size_increase_pct),
        profile,
        opts.jobs,
        opts.seed,
    );
    sc.cluster.enlarge_pct = size_increase_pct;
    sc.policy = match cfg {
        None => PolicySpec::Baseline,
        Some(c) => PolicySpec::from(*c),
    };
    sc
}

/// Unwraps a scenario result the sweeps expect to succeed.
pub(crate) fn expect_run(
    res: Result<ScenarioResult, crate::scenario::ScenarioError>,
) -> ScenarioResult {
    // audit:allow(R1): generated workloads are sized to their machine; failure is a harness bug
    res.expect("generated workloads always fit their machine")
}

/// The per-cell work unit shared by the sweeps, driven entirely through
/// the declarative [`Scenario`] API.
#[cfg(test)]
pub(crate) fn run_cell(
    profile: ProfileName,
    opts: &ExpOptions,
    size_increase_pct: u32,
    cfg: Option<&PowerAwareConfig>,
) -> RunMetrics {
    expect_run(cell_scenario(profile, opts, size_increase_pct, cfg).run())
        .run
        .metrics
}

/// Writes `name.csv` into the experiment's out dir (if any), returning the
/// written path.
pub(crate) fn write_artifact(
    opts: &ExpOptions,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = &opts.out_dir else {
        return Ok(None);
    };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    bsld_metrics::write_csv(&mut file, headers, rows)?;
    Ok(Some(path))
}

/// Formats a float with `digits` decimals (CSV/tables).
pub(crate) fn fmt(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WqThreshold;

    #[test]
    fn defaults_match_paper_scale() {
        let o = ExpOptions::default();
        assert_eq!(o.seed, 2010);
        assert_eq!(o.jobs, 5000);
        assert!(o.out_dir.is_some());
    }

    #[test]
    fn run_cell_baseline_and_policy() {
        let profile = ProfileName::SdscBlue;
        let opts = ExpOptions::quick(150);
        let base = run_cell(profile, &opts, 0, None);
        assert_eq!(base.jobs, 150);
        assert_eq!(base.reduced_jobs, 0);
        let cfg = PowerAwareConfig {
            bsld_threshold: 3.0,
            wq_threshold: WqThreshold::NoLimit,
        };
        let dvfs = run_cell(profile, &opts, 0, Some(&cfg));
        assert!(dvfs.reduced_jobs > 0);
        let bigger = run_cell(profile, &opts, 50, Some(&cfg));
        assert!(bigger.avg_wait_secs <= dvfs.avg_wait_secs);
    }

    #[test]
    fn write_artifact_noop_without_dir() {
        let opts = ExpOptions::quick(10);
        let p = write_artifact(&opts, "x", &["a"], &[]).unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(1.0, 0), "1");
    }
}
