//! Table 1 — workload characteristics and baseline average BSLD.
//!
//! The paper's Table 1 lists, per workload: the machine size, the simulated
//! job count and the average BSLD when no DVFS is used. This experiment
//! regenerates those rows from the calibrated profiles and additionally
//! reports the average wait (the paper's Table 3 first column), making the
//! calibration quality visible in one place.

use bsld_metrics::TextTable;

use super::{cell_scenario, expect_run, fmt, write_artifact, ExpOptions};
use crate::scenario::{self, ProfileName};

/// Paper-reported reference values for the five workloads.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Workload name.
    pub name: &'static str,
    /// Machine size.
    pub cpus: u32,
    /// Table 1 average BSLD without DVFS.
    pub avg_bsld: f64,
    /// Table 3 average wait without DVFS, seconds.
    pub avg_wait: f64,
}

/// The paper's Table 1 + Table 3 baseline column.
pub const PAPER_BASELINES: [PaperRow; 5] = [
    PaperRow {
        name: "CTC",
        cpus: 430,
        avg_bsld: 4.66,
        avg_wait: 7107.0,
    },
    PaperRow {
        name: "SDSC",
        cpus: 128,
        avg_bsld: 24.91,
        avg_wait: 36001.0,
    },
    PaperRow {
        name: "SDSCBlue",
        cpus: 1152,
        avg_bsld: 5.15,
        avg_wait: 4798.0,
    },
    PaperRow {
        name: "LLNLThunder",
        cpus: 4008,
        avg_bsld: 1.0,
        avg_wait: 0.0,
    },
    PaperRow {
        name: "LLNLAtlas",
        cpus: 9216,
        avg_bsld: 1.08,
        avg_wait: 69.0,
    },
];

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Machine size.
    pub cpus: u32,
    /// Simulated job count.
    pub jobs: usize,
    /// Measured baseline average BSLD.
    pub avg_bsld: f64,
    /// Measured baseline average wait, seconds.
    pub avg_wait: f64,
    /// Measured utilisation.
    pub utilization: f64,
    /// The paper's reference values.
    pub paper: PaperRow,
}

/// The reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per workload, paper order.
    pub rows: Vec<Table1Row>,
}

/// Runs the five baselines (in parallel, each cell a declarative
/// [`scenario::Scenario`]) and assembles Table 1.
pub fn run(opts: &ExpOptions) -> Table1 {
    let scenarios: Vec<scenario::Scenario> = ProfileName::ALL
        .iter()
        .map(|&p| cell_scenario(p, opts, 0, None))
        .collect();
    let results = scenario::run_many(&scenarios, opts.threads);
    let rows = ProfileName::ALL
        .iter()
        .zip(results)
        .zip(PAPER_BASELINES)
        .map(|((p, res), paper)| {
            let m = expect_run(res).run.metrics;
            Table1Row {
                workload: p.display_name().to_string(),
                cpus: p.profile().cpus,
                jobs: m.jobs,
                avg_bsld: m.avg_bsld,
                avg_wait: m.avg_wait_secs,
                utilization: m.utilization,
                paper,
            }
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Renders the table with paper-vs-measured columns.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Workload",
            "#CPUs",
            "Jobs",
            "AvgBSLD",
            "paper",
            "AvgWait(s)",
            "paper",
            "Util",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.cpus.to_string(),
                r.jobs.to_string(),
                fmt(r.avg_bsld, 2),
                fmt(r.paper.avg_bsld, 2),
                fmt(r.avg_wait, 0),
                fmt(r.paper.avg_wait, 0),
                fmt(r.utilization, 3),
            ]);
        }
        format!(
            "Table 1: workloads, baseline (EASY, no DVFS)\n{}",
            t.render()
        )
    }

    /// Writes `table1.csv`.
    pub fn write_csv(&self, opts: &ExpOptions) -> std::io::Result<Option<std::path::PathBuf>> {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.cpus.to_string(),
                    r.jobs.to_string(),
                    fmt(r.avg_bsld, 4),
                    fmt(r.paper.avg_bsld, 4),
                    fmt(r.avg_wait, 1),
                    fmt(r.paper.avg_wait, 1),
                    fmt(r.utilization, 4),
                ]
            })
            .collect();
        write_artifact(
            opts,
            "table1",
            &[
                "workload",
                "cpus",
                "jobs",
                "avg_bsld",
                "paper_avg_bsld",
                "avg_wait_s",
                "paper_avg_wait_s",
                "utilization",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baselines_cover_five_workloads() {
        assert_eq!(PAPER_BASELINES.len(), 5);
        assert_eq!(PAPER_BASELINES[1].avg_bsld, 24.91);
    }

    #[test]
    fn small_scale_table1_has_all_rows() {
        // Scaled-down smoke run: 5 workloads at 60 jobs each.
        let t = run(&ExpOptions::quick(60));
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert_eq!(r.jobs, 60);
            assert!(r.avg_bsld >= 1.0);
        }
        let text = t.render();
        assert!(text.contains("CTC"));
        assert!(text.contains("LLNLAtlas"));
    }
}
