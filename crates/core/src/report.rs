//! Shared rendering of a scenario sweep's results.
//!
//! The `bsld-repro run` subcommand and the `bsld-repro serve` daemon must
//! answer the same query with **byte-identical** output — that guarantee
//! is enforced by CI diffing the two — so there is exactly one renderer,
//! and both go through it. The daemon additionally needs to *cache* what
//! it rendered, keyed by content-hash [`CellId`](crate::campaign::CellId)
//! (which excludes the scenario name): [`CellOutcome`] is the compact,
//! name-free payload that makes that possible, extracted from a full
//! [`ScenarioResult`] the moment a run finishes.

use bsld_metrics::TextTable;
use bsld_power::RailKind;

use crate::scenario::ScenarioResult;

/// The printable outcome of one sweep cell: every number the results
/// table and `scenario_results.csv` show, decoupled from the full
/// [`ScenarioResult`] (whose per-job outcome vector is far too large to
/// keep resident per cache entry).
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Jobs completed.
    pub jobs: usize,
    /// Average BSLD (Eq. 6).
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait_secs: f64,
    /// Jobs run at a reduced gear.
    pub reduced_jobs: usize,
    /// Computational energy (normalised units).
    pub energy_comp: f64,
    /// Energy including idle draw (normalised units).
    pub energy_idle: f64,
    /// Ledger summary (power-instrumented runs only).
    pub power: Option<PowerView>,
}

/// The slice of a power report the results table uses.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerView {
    /// `∫ P dt` over the run.
    pub energy: f64,
    /// Highest draw observed.
    pub peak: f64,
    /// The cap budget, if one was configured.
    pub budget: Option<f64>,
    /// Per-rail energy, ledger order (a single entry on the default
    /// CPU-only layout — per-rail columns only render for `len() > 1`).
    pub rails: Vec<(RailKind, f64)>,
}

impl CellOutcome {
    /// Extracts the printable outcome of a finished run.
    pub fn of(res: &ScenarioResult) -> CellOutcome {
        let m = &res.run.metrics;
        CellOutcome {
            jobs: m.jobs,
            avg_bsld: m.avg_bsld,
            avg_wait_secs: m.avg_wait_secs,
            reduced_jobs: m.reduced_jobs,
            energy_comp: m.energy.computational,
            energy_idle: m.energy.with_idle,
            power: res.power.as_ref().map(|p| PowerView {
                energy: p.energy,
                peak: p.peak,
                budget: p.budget,
                rails: p.rails.iter().map(|r| (r.kind, r.energy)).collect(),
            }),
        }
    }

    fn rail(&self, kind: RailKind) -> Option<f64> {
        self.power
            .as_ref()
            .filter(|p| p.rails.len() > 1)
            .and_then(|p| p.rails.iter().find(|(k, _)| *k == kind))
            .map(|(_, e)| *e)
    }
}

/// A rendered sweep: the aligned on-screen table, the full-precision CSV
/// and the failure labels, produced by [`sweep_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The aligned text table (what `run` prints to stdout).
    pub table: String,
    /// `scenario_results.csv` contents (headers + full-precision rows).
    pub csv: String,
    /// `name: error` per failed cell, sweep order.
    pub failures: Vec<String>,
    /// Total cells rendered (failed included).
    pub cells: usize,
}

impl SweepReport {
    /// The error message `run` exits with when any cell failed (`None`
    /// when everything completed).
    pub fn failure_summary(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        Some(format!(
            "{} of {} scenario(s) failed:\n  {}",
            self.failures.len(),
            self.cells,
            self.failures.join("\n  ")
        ))
    }
}

/// Renders a sweep's results: one `(name, outcome)` pair per cell, sweep
/// order, where a failed cell carries its error rendering. One infeasible
/// cell must not discard the completed ones: failures become `FAILED`
/// rows and are reported in [`SweepReport::failures`], everything else
/// renders normally.
pub fn sweep_report(rows: &[(String, Result<CellOutcome, String>)]) -> SweepReport {
    let mut t = TextTable::new(vec![
        "scenario",
        "jobs",
        "avgBSLD",
        "avgWait(s)",
        "reduced",
        "E(comp)",
        "E(ledger)",
        "peak/budget",
    ]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // Per-rail energy columns are only emitted when some cell ran on the
    // multi-rail layout (an explicit `model =` / `sweep.model`);
    // model-free sweeps keep the exact pre-subsystem CSV shape.
    let mut any_rails = false;
    for (name, res) in rows {
        let out = match res {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{name}: {e}"));
                let row = |msg: &str, width: usize| {
                    let mut r = vec![name.clone(), msg.to_string()];
                    r.extend(std::iter::repeat_n("-".to_string(), width - 2));
                    r
                };
                t.row(row("FAILED", 8));
                csv_rows.push(row("failed", 12));
                continue;
            }
        };
        // One formatter, two precisions: coarse for the on-screen table,
        // full for the persisted CSV.
        let power_fields = |digits: usize| match &out.power {
            Some(p) => (
                format!("{:.digits$e}", p.energy),
                match p.budget {
                    Some(b) if b > 0.0 => format!("{:.digits$}", p.peak / b),
                    _ => "-".to_string(),
                },
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let (ledger_disp, peak_disp) = power_fields(3);
        let (ledger_csv, peak_csv) = power_fields(6);
        let rail_csv = |kind: RailKind| -> String {
            out.rail(kind)
                .map(|e| format!("{e:.6e}"))
                .unwrap_or_else(|| "-".to_string())
        };
        let (cpu_csv, mem_csv, net_csv) = (
            rail_csv(RailKind::Cpu),
            rail_csv(RailKind::Memory),
            rail_csv(RailKind::Interconnect),
        );
        any_rails |= cpu_csv != "-";
        t.row(vec![
            name.clone(),
            out.jobs.to_string(),
            format!("{:.2}", out.avg_bsld),
            format!("{:.0}", out.avg_wait_secs),
            out.reduced_jobs.to_string(),
            format!("{:.3e}", out.energy_comp),
            ledger_disp,
            peak_disp,
        ]);
        csv_rows.push(vec![
            name.clone(),
            out.jobs.to_string(),
            format!("{:.4}", out.avg_bsld),
            format!("{:.1}", out.avg_wait_secs),
            out.reduced_jobs.to_string(),
            format!("{:.6e}", out.energy_comp),
            format!("{:.6e}", out.energy_idle),
            ledger_csv,
            peak_csv,
            cpu_csv,
            mem_csv,
            net_csv,
        ]);
    }
    let mut headers = vec![
        "scenario",
        "jobs",
        "avg_bsld",
        "avg_wait_s",
        "reduced_jobs",
        "energy_comp",
        "energy_idle",
        "energy_ledger",
        "peak_over_budget",
    ];
    if any_rails {
        headers.extend(["energy_cpu", "energy_mem", "energy_net"]);
    } else {
        for row in &mut csv_rows {
            row.truncate(headers.len());
        }
    }
    SweepReport {
        table: t.render(),
        csv: bsld_metrics::csv_string(&headers, &csv_rows),
        failures,
        cells: rows.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(power: Option<PowerView>) -> CellOutcome {
        CellOutcome {
            jobs: 100,
            avg_bsld: 1.2345,
            avg_wait_secs: 321.75,
            reduced_jobs: 40,
            energy_comp: 1.25e6,
            energy_idle: 1.5e6,
            power,
        }
    }

    #[test]
    fn plain_sweep_keeps_the_pre_rail_csv_shape() {
        let rows = vec![("a".to_string(), Ok(outcome(None)))];
        let rep = sweep_report(&rows);
        assert!(rep.csv.starts_with(
            "scenario,jobs,avg_bsld,avg_wait_s,reduced_jobs,energy_comp,energy_idle,\
             energy_ledger,peak_over_budget\n"
        ));
        assert!(!rep.csv.contains("energy_cpu"));
        assert!(rep
            .csv
            .contains("a,100,1.2345,321.8,40,1.250000e6,1.500000e6,-,-\n"));
        assert!(rep.table.contains("avgBSLD"));
        assert_eq!(rep.failure_summary(), None);
    }

    #[test]
    fn multi_rail_cells_extend_the_headers_for_the_whole_sweep() {
        let multi = PowerView {
            energy: 2.0e6,
            peak: 50.0,
            budget: Some(100.0),
            rails: vec![
                (RailKind::Cpu, 1.0e6),
                (RailKind::Memory, 6.0e5),
                (RailKind::Interconnect, 4.0e5),
            ],
        };
        let rows = vec![
            ("plain".to_string(), Ok(outcome(None))),
            ("railed".to_string(), Ok(outcome(Some(multi)))),
        ];
        let rep = sweep_report(&rows);
        assert!(rep.csv.contains("energy_cpu,energy_mem,energy_net"));
        assert!(rep.csv.contains("railed,100,") && rep.csv.contains("0.500000"));
        // The single-rail row pads the new columns with `-`.
        assert!(rep
            .csv
            .contains("plain,100,1.2345,321.8,40,1.250000e6,1.500000e6,-,-,-,-,-\n"));
    }

    #[test]
    fn failures_render_rows_and_summarise() {
        let rows = vec![
            ("ok".to_string(), Ok(outcome(None))),
            ("bad".to_string(), Err("infeasible cap".to_string())),
        ];
        let rep = sweep_report(&rows);
        assert!(rep.csv.contains("bad,failed,-,-,-,-,-,-,-\n"));
        assert!(rep.table.contains("FAILED"));
        let msg = rep.failure_summary().expect("one failure");
        assert!(msg.contains("1 of 2 scenario(s) failed"));
        assert!(msg.contains("bad: infeasible cap"));
    }
}
