//! The daemon's wire protocol: line-delimited JSON requests and replies.
//!
//! One request per line, one reply line per request, over a Unix-domain
//! stream socket. Requests are JSON objects selected by `"op"`:
//!
//! * `{"op":"run","scn":"<scenario file text>","overrides":{…}}` —
//!   parse, expand and run a scenario sweep against the daemon's warm
//!   caches; `overrides` nudges single knobs without editing the text;
//! * `{"op":"status"}` — counters: requests, runs, cache hit rates,
//!   uptime;
//! * `{"op":"metrics"}` — the profiling plane: the `status` counters
//!   plus per-op latency histogram summaries (microseconds) and the
//!   in-flight request gauge;
//! * `{"op":"cache"}` — list resident result cells (`"clear":true`
//!   empties both caches; `"swf":"/path/trace.swf"` pins a parsed and
//!   cleaned trace into the workload cache ahead of the queries that
//!   will replay it);
//! * `{"op":"shutdown"}` — drain in-flight connections and exit.
//!
//! Every reply carries `"ok"`; failures are structured
//! `{"ok":false,"error":"…"}` lines — a malformed or torn request can
//! never take the daemon down.

use bsld_core::scenario::{PolicySpec, PowerModelSpec, ProfileName, ScenarioSet, WorkloadSpec};
use bsld_core::WqThreshold;
use bsld_metrics::Json;

/// Protocol revision, reported by the `status` op.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a scenario sweep (the text of a `.scn` file) with optional
    /// knob overrides.
    Run {
        /// The scenario file text (not a path: clients ship the bytes, so
        /// daemon and client need no shared filesystem view).
        scn: String,
        /// Single-knob tweaks applied to the parsed spec.
        overrides: Overrides,
    },
    /// Report daemon counters.
    Status,
    /// Report the profiling plane: counters plus per-op latency
    /// histograms and queue depth.
    Metrics,
    /// List (or, with `clear`, empty) the caches.
    Cache {
        /// Empty both caches instead of listing them.
        clear: bool,
    },
    /// Pin an SWF trace into the workload cache: parse and clean it now
    /// (streaming) so later `run` requests over the same file start warm.
    CachePin {
        /// Daemon-side path of the `.swf` file.
        swf: String,
    },
    /// Drain and exit.
    Shutdown,
}

/// What-if knob overrides: each maps onto the same semantics as its
/// sweep-axis or CLI-flag counterpart, including the sweep's name
/// suffixes (`-th2`, `-cap0.7`, …) so reply tables stay self-describing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Overrides {
    /// `sweep.bsld_th` counterpart: policy threshold.
    pub bsld_th: Option<f64>,
    /// `sweep.wq` counterpart: wait-queue threshold (`"no"` or a count).
    pub wq: Option<WqThreshold>,
    /// `sweep.cap` counterpart; `Some(None)` (from `"none"`) clears it.
    pub cap: Option<Option<f64>>,
    /// `sweep.model` counterpart: power-model selection.
    pub model: Option<PowerModelSpec>,
    /// `--jobs` counterpart (synthetic workloads only).
    pub jobs: Option<usize>,
    /// `sweep.seed` counterpart (synthetic workloads only).
    pub seed: Option<u64>,
    /// `sweep.profile` counterpart (synthetic workloads only).
    pub profile: Option<ProfileName>,
    /// `sweep.enlarge_pct` counterpart: enlarged-system study.
    pub enlarge_pct: Option<u32>,
    /// Per-request wall-clock budget, seconds; overrides the file's
    /// `cell_budget_s` and the daemon's default.
    pub budget_s: Option<f64>,
}

impl Request {
    /// Parses one request line. Every failure is a client-visible
    /// message, never a panic.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"op\" field")?;
        match op {
            "run" => {
                let scn = v
                    .get("scn")
                    .and_then(Json::as_str)
                    .ok_or("\"run\" needs \"scn\": the scenario file text")?
                    .to_string();
                let overrides = match v.get("overrides") {
                    None | Some(Json::Null) => Overrides::default(),
                    Some(o) => Overrides::from_json(o)?,
                };
                Ok(Request::Run { scn, overrides })
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "cache" => {
                let clear = v.get("clear").and_then(Json::as_bool).unwrap_or(false);
                match v.get("swf") {
                    None | Some(Json::Null) => Ok(Request::Cache { clear }),
                    Some(_) if clear => {
                        Err("\"cache\" takes either \"swf\" or \"clear\", not both".to_string())
                    }
                    Some(p) => {
                        let swf = p
                            .as_str()
                            .ok_or("\"cache\" field \"swf\" must be a path string")?
                            .to_string();
                        Ok(Request::CachePin { swf })
                    }
                }
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op {other:?} (expected run, status, metrics, cache or shutdown)"
            )),
        }
    }

    /// The op label of this request — the key the daemon's per-op latency
    /// histograms are indexed by (cache pins share the `cache` label).
    pub fn op_label(&self) -> &'static str {
        match self {
            Request::Run { .. } => "run",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Cache { .. } | Request::CachePin { .. } => "cache",
            Request::Shutdown => "shutdown",
        }
    }
}

impl Overrides {
    /// Parses the `"overrides"` object, rejecting unknown keys so a typo
    /// cannot silently run the un-overridden scenario.
    pub fn from_json(v: &Json) -> Result<Overrides, String> {
        let Json::Obj(pairs) = v else {
            return Err("\"overrides\" must be an object".to_string());
        };
        let mut ov = Overrides::default();
        for (key, val) in pairs {
            match key.as_str() {
                "bsld_th" => {
                    ov.bsld_th = Some(val.as_f64().ok_or("override bsld_th must be a number")?);
                }
                "wq" => {
                    let text = match val {
                        Json::Str(s) => s.clone(),
                        Json::Num(_) => {
                            let n = val
                                .as_u64()
                                .ok_or("override wq must be \"no\" or a whole number")?;
                            n.to_string()
                        }
                        _ => return Err("override wq must be \"no\" or a whole number".into()),
                    };
                    ov.wq = Some(WqThreshold::parse(&text)?);
                }
                "cap" => {
                    ov.cap = Some(match val {
                        Json::Str(s) if s == "none" => None,
                        Json::Num(x) => Some(*x),
                        _ => return Err("override cap must be a fraction or \"none\"".to_string()),
                    });
                }
                "model" => {
                    let s = val.as_str().ok_or("override model must be a string")?;
                    ov.model = Some(PowerModelSpec::parse(s)?);
                }
                "jobs" => {
                    let n = val.as_u64().ok_or("override jobs must be a whole number")?;
                    ov.jobs = Some(n as usize);
                }
                "seed" => {
                    ov.seed = Some(val.as_u64().ok_or("override seed must be a whole number")?);
                }
                "profile" => {
                    let s = val.as_str().ok_or("override profile must be a string")?;
                    ov.profile = Some(ProfileName::parse(s)?);
                }
                "enlarge_pct" => {
                    let n = val
                        .as_u64()
                        .ok_or("override enlarge_pct must be a whole number")?;
                    ov.enlarge_pct =
                        Some(u32::try_from(n).map_err(|_| "override enlarge_pct is out of range")?);
                }
                "budget_s" | "cell_budget_s" => {
                    let b = val.as_f64().ok_or("override budget_s must be a number")?;
                    if !b.is_finite() || b < 0.0 {
                        return Err("override budget_s must be finite and >= 0".to_string());
                    }
                    ov.budget_s = Some(b);
                }
                other => {
                    return Err(format!(
                        "unknown override {other:?} (expected bsld_th, wq, cap, model, jobs, \
                         seed, profile, enlarge_pct or budget_s)"
                    ))
                }
            }
        }
        Ok(ov)
    }

    /// Applies every knob (except the request-level `budget_s`) to a
    /// parsed scenario set, mirroring the corresponding sweep-axis
    /// semantics — including the cell-name suffixes, so the reply table
    /// shows what was actually run.
    pub fn apply(&self, set: &mut ScenarioSet) -> Result<(), String> {
        let sc = &mut set.base;
        if let Some(p) = self.profile {
            match &mut sc.workload {
                WorkloadSpec::Synthetic { profile, .. } => *profile = p,
                WorkloadSpec::Swf { .. } => {
                    return Err("override profile cannot apply to an SWF workload".into())
                }
            }
            sc.name.push('-');
            sc.name.push_str(p.key());
        }
        if let Some(n) = self.jobs {
            match &mut sc.workload {
                WorkloadSpec::Synthetic { jobs, .. } => *jobs = n,
                WorkloadSpec::Swf { .. } => {
                    return Err("override jobs cannot apply to an SWF workload".into())
                }
            }
        }
        if let Some(s) = self.seed {
            match &mut sc.workload {
                WorkloadSpec::Synthetic { seed, .. } => *seed = s,
                WorkloadSpec::Swf { .. } => {
                    return Err("override seed cannot apply to an SWF workload".into())
                }
            }
            sc.name.push_str(&format!("-s{s}"));
        }
        if let Some(th) = self.bsld_th {
            let wq = match sc.policy {
                PolicySpec::BsldThreshold { wq, .. } => wq,
                _ => WqThreshold::NoLimit,
            };
            sc.policy = PolicySpec::BsldThreshold { th, wq };
            sc.name.push_str(&format!("-th{th}"));
        }
        if let Some(wq) = self.wq {
            let th = match sc.policy {
                PolicySpec::BsldThreshold { th, .. } => th,
                _ => 2.0,
            };
            sc.policy = PolicySpec::BsldThreshold { th, wq };
            sc.name.push_str(&format!("-wq{}", wq.label()));
        }
        if let Some(cap) = self.cap {
            sc.power.cap_fraction = cap;
            match cap {
                Some(f) => sc.name.push_str(&format!("-cap{f}")),
                None => sc.name.push_str("-capnone"),
            }
        }
        if let Some(model) = &self.model {
            sc.power.model = Some(model.clone());
            sc.name.push_str(&format!("-m{}", model.label()));
        }
        if let Some(pct) = self.enlarge_pct {
            sc.cluster.enlarge_pct = pct;
            sc.name.push_str(&format!("-x{pct}"));
        }
        Ok(())
    }
}

/// The uniform failure reply.
pub fn error_reply(msg: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(msg))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            Request::parse("{\"op\":\"status\"}").unwrap(),
            Request::Status
        );
        assert_eq!(
            Request::parse("{\"op\":\"cache\"}").unwrap(),
            Request::Cache { clear: false }
        );
        assert_eq!(
            Request::parse("{\"op\":\"cache\",\"clear\":true}").unwrap(),
            Request::Cache { clear: true }
        );
        assert_eq!(
            Request::parse("{\"op\":\"cache\",\"swf\":\"/tmp/t.swf\"}").unwrap(),
            Request::CachePin {
                swf: "/tmp/t.swf".to_string()
            }
        );
        assert_eq!(
            Request::parse("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        let run = Request::parse(
            "{\"op\":\"run\",\"scn\":\"scenario = x\",\"overrides\":{\"bsld_th\":1.5,\"wq\":\"no\"}}",
        )
        .unwrap();
        match run {
            Request::Run { scn, overrides } => {
                assert_eq!(scn, "scenario = x");
                assert_eq!(overrides.bsld_th, Some(1.5));
                assert_eq!(overrides.wq, Some(WqThreshold::NoLimit));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for bad in [
            "",
            "{",
            "[]",
            "{\"op\":42}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"run\"}",
            "{\"op\":\"run\",\"scn\":\"x\",\"overrides\":{\"bogus\":1}}",
            "{\"op\":\"run\",\"scn\":\"x\",\"overrides\":{\"budget_s\":-1}}",
            "{\"op\":\"run\",\"scn\":\"x\",\"overrides\":{\"cap\":\"half\"}}",
            "{\"op\":\"run\",\"scn\":\"x\",\"overrides\":{\"wq\":1.5}}",
            "{\"op\":\"cache\",\"swf\":42}",
            "{\"op\":\"cache\",\"swf\":\"/tmp/t.swf\",\"clear\":true}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn overrides_apply_with_sweep_name_suffixes() {
        let text = "scenario = base\nworkload = synthetic\nprofile = ctc\njobs = 50\nseed = 7\n";
        let mut set = ScenarioSet::parse(text).unwrap();
        let ov = Overrides::from_json(
            &Json::parse("{\"bsld_th\":1.5,\"cap\":0.7,\"seed\":9,\"enlarge_pct\":20}").unwrap(),
        )
        .unwrap();
        ov.apply(&mut set).unwrap();
        assert_eq!(set.base.name, "base-s9-th1.5-cap0.7-x20");
        assert_eq!(set.base.power.cap_fraction, Some(0.7));
        assert_eq!(set.base.cluster.enlarge_pct, 20);
        match set.base.policy {
            PolicySpec::BsldThreshold { th, wq } => {
                assert_eq!(th, 1.5);
                assert_eq!(wq, WqThreshold::NoLimit);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synthetic_only_overrides_reject_swf_workloads() {
        let text = "scenario = replay\nworkload = swf\nswf_path = /tmp/x.swf\n";
        let mut set = ScenarioSet::parse(text).unwrap();
        for ov_json in ["{\"jobs\":10}", "{\"seed\":1}", "{\"profile\":\"ctc\"}"] {
            let ov = Overrides::from_json(&Json::parse(ov_json).unwrap()).unwrap();
            let err = ov.apply(&mut set).unwrap_err();
            assert!(err.contains("SWF"), "{ov_json}: {err}");
        }
    }

    #[test]
    fn cap_none_clears_the_cap() {
        let text = "scenario = capped\nworkload = synthetic\nprofile = ctc\njobs = 10\nseed = 1\ncap = 0.8\n";
        let mut set = ScenarioSet::parse(text).unwrap();
        assert_eq!(set.base.power.cap_fraction, Some(0.8));
        let ov = Overrides::from_json(&Json::parse("{\"cap\":\"none\"}").unwrap()).unwrap();
        ov.apply(&mut set).unwrap();
        assert_eq!(set.base.power.cap_fraction, None);
        assert!(set.base.name.ends_with("-capnone"));
    }
}
