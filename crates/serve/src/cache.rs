//! A bounded, deterministic LRU cache.
//!
//! Recency is tracked with a **logical** clock (one tick per access), not
//! wall time, so eviction order is a pure function of the access sequence
//! — the same query stream against two daemons evicts identically. The
//! store is a `BTreeMap`, so iteration (the `cache` op's listing) is in
//! key order, never hash order.

use std::collections::BTreeMap;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct Lru<K: Ord + Clone, V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, (u64, V)>,
}

impl<K: Ord + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            capacity: capacity.max(1),
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|slot| {
            slot.0 = tick;
            &slot.1
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache would overflow. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        self.entries.insert(key, (self.tick, value));
        if self.entries.len() <= self.capacity {
            return None;
        }
        // Evict the stalest entry. Ties cannot happen (ticks are unique),
        // so eviction is deterministic.
        let stalest = self
            .entries
            .iter()
            .min_by_key(|(_, (tick, _))| *tick)
            .map(|(k, _)| k.clone())?;
        self.entries.remove(&stalest);
        Some(stalest)
    }

    /// Removes every entry, returning how many were held.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Iterates entries in **key order** (not recency), for deterministic
    /// listings.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, (_, v))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_the_least_recently_used_entry() {
        let mut c: Lru<u32, &str> = Lru::new(2);
        assert_eq!(c.insert(1, "a"), None);
        assert_eq!(c.insert(2, "b"), None);
        // Touch 1 so 2 becomes the stalest…
        assert_eq!(c.get(&1), Some(&"a"));
        // …and inserting 3 evicts 2, not 1.
        assert_eq!(c.insert(3, "c"), Some(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn reinserting_refreshes_instead_of_evicting() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None, "refresh, no overflow");
        assert_eq!(c.insert(3, 30), Some(2), "2 was stalest after 1 refreshed");
        assert_eq!(c.get(&1), Some(&11), "refresh kept the newer value");
    }

    #[test]
    fn capacity_zero_behaves_as_one() {
        let mut c: Lru<u32, u32> = Lru::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered_and_clear_reports_count() {
        let mut c: Lru<u32, &str> = Lru::new(8);
        for k in [5u32, 1, 3] {
            c.insert(k, "x");
        }
        let keys: Vec<u32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(c.clear(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_order_is_a_pure_function_of_the_access_sequence() {
        // Two caches fed the same access stream must evict identically.
        let run = || {
            let mut c: Lru<u32, u32> = Lru::new(3);
            let mut evicted = Vec::new();
            for i in 0..32u32 {
                let _ = c.get(&(i % 5));
                if let Some(k) = c.insert(i % 7, i) {
                    evicted.push(k);
                }
            }
            evicted
        };
        assert_eq!(run(), run());
    }
}
