//! The daemon's warm state: resident workloads, cached cell results, and
//! the query-execution path that consults both.
//!
//! Everything here is clock-free — wall time enters only through
//! [`bsld_par::run_budgeted`] (whose clock drives the abort watchdog, not
//! any result value) and the daemon's uptime counter (in `daemon.rs`).
//! Replies are therefore a pure function of the query stream: the same
//! `run` request always yields bytes identical to a one-shot
//! `bsld-repro run` of the same scenario file.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use bsld_core::scenario::{OutputSpec, Scenario, ScenarioError, ScenarioSet, WorkloadSpec};
use bsld_core::{sweep_report, CellId, CellOutcome};
use bsld_metrics::Json;
use bsld_par::AbortFlag;
use bsld_sched::SimError;
use bsld_workload::Workload;

use crate::cache::Lru;
use crate::proto::Overrides;

/// Sizing and defaults for a [`ServerState`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateConfig {
    /// Worker threads per `run` request (the sweep's `par_map` width).
    pub threads: usize,
    /// Result-cache capacity, in cells.
    pub result_capacity: usize,
    /// Workload-cache capacity, in distinct workload specs.
    pub workload_capacity: usize,
    /// Wall-clock budget applied to `run` requests that carry neither a
    /// `budget_s` override nor a `cell_budget_s` in the scenario file.
    pub default_budget_s: Option<f64>,
}

impl Default for StateConfig {
    fn default() -> StateConfig {
        StateConfig {
            threads: bsld_par::default_threads(),
            result_capacity: 512,
            workload_capacity: 8,
            default_budget_s: None,
        }
    }
}

/// Counters reported by the `status` op. All monotonic, all relaxed —
/// they are diagnostics, never inputs to scheduling decisions.
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests parsed off sockets (any op, including malformed ones).
    pub requests: AtomicU64,
    /// `run` requests accepted for execution.
    pub runs: AtomicU64,
    /// Scenario cells actually simulated (cache misses).
    pub cells_run: AtomicU64,
    /// Cells answered from the result cache.
    pub result_hits: AtomicU64,
    /// Cells that had to be computed.
    pub result_misses: AtomicU64,
    /// Workload builds answered from the workload cache.
    pub workload_hits: AtomicU64,
    /// Workloads parsed / generated from scratch.
    pub workload_misses: AtomicU64,
    /// Structured error replies sent (parse failures, bad overrides,
    /// budget aborts, …).
    pub errors: AtomicU64,
    /// Result-cache entries displaced by capacity pressure.
    pub result_evictions: bsld_obs::Counter,
    /// Workload-cache entries displaced by capacity pressure.
    pub workload_evictions: bsld_obs::Counter,
}

impl Stats {
    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// The daemon's wall-clock profiling plane: per-op latency histograms
/// (whole microseconds, power-of-two buckets) and the in-flight request
/// gauge. Provenance only — reported by the `metrics` op, never part of
/// any reply payload a client computes with.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// `run` request latency.
    pub run_us: bsld_obs::Histogram,
    /// `status` request latency.
    pub status_us: bsld_obs::Histogram,
    /// `cache` (list / clear / pin) request latency.
    pub cache_us: bsld_obs::Histogram,
    /// `metrics` request latency.
    pub metrics_us: bsld_obs::Histogram,
    /// Requests currently being dispatched; the peak is the deepest
    /// concurrent queue observed.
    pub in_flight: bsld_obs::Gauge,
}

impl ServeMetrics {
    /// The latency histogram tracked for an op label, if any.
    pub fn histogram(&self, op: &str) -> Option<&bsld_obs::Histogram> {
        match op {
            "run" => Some(&self.run_us),
            "status" => Some(&self.status_us),
            "cache" => Some(&self.cache_us),
            "metrics" => Some(&self.metrics_us),
            _ => None,
        }
    }
}

/// The reply payload of a successful `run` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReply {
    /// Cells in the expanded sweep.
    pub cells: usize,
    /// How many were answered from the result cache.
    pub cached: usize,
    /// The aligned text table — byte-identical to what `bsld-repro run`
    /// prints for the same scenario file.
    pub table: String,
    /// `scenario_results.csv` contents — byte-identical to the file the
    /// one-shot CLI writes.
    pub csv: String,
    /// Names of failed cells, expansion order.
    pub failures: Vec<String>,
    /// The CLI's failure summary (present iff any cell failed).
    pub failure_summary: Option<String>,
}

impl RunReply {
    /// The reply as a wire-format JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("cells", Json::Num(self.cells as f64)),
            ("cached", Json::Num(self.cached as f64)),
            ("table", Json::str(&*self.table)),
            ("csv", Json::str(&*self.csv)),
            (
                "failures",
                Json::Arr(self.failures.iter().map(Json::str).collect()),
            ),
        ];
        if let Some(s) = &self.failure_summary {
            pairs.push(("failure_summary", Json::str(&**s)));
        }
        Json::obj(pairs)
    }
}

/// The resident state shared by every connection handler.
///
/// Two warm layers, both bounded deterministic LRUs:
///
/// * **workloads** — parsed/cleaned SWF traces and generated synthetic
///   workloads, keyed by a content hash of the [`WorkloadSpec`]; a sweep
///   over one trace parses it once, and the next query over the same
///   trace parses it zero times;
/// * **results** — finished cell outcomes keyed by [`CellId`] (which
///   already excludes the cell name and output spec), so a repeated
///   what-if is answered without simulating at all. Failures are cached
///   too (same spec → same failure); budget aborts are *not* — a more
///   patient client must be able to retry.
#[derive(Debug)]
pub struct ServerState {
    cfg: StateConfig,
    results: Mutex<Lru<CellId, Result<CellOutcome, String>>>,
    workloads: Mutex<Lru<u64, Arc<Workload>>>,
    /// Query counters, reported by the `status` op.
    pub stats: Stats,
    /// Per-op latency histograms and queue depth, reported by the
    /// `metrics` op.
    pub metrics: ServeMetrics,
}

impl ServerState {
    /// Fresh (cold) state.
    pub fn new(cfg: StateConfig) -> ServerState {
        ServerState {
            results: Mutex::new(Lru::new(cfg.result_capacity)),
            workloads: Mutex::new(Lru::new(cfg.workload_capacity)),
            cfg,
            stats: Stats::default(),
            metrics: ServeMetrics::default(),
        }
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &StateConfig {
        &self.cfg
    }

    // A panicking simulation is contained by the worker pool's
    // catch_unwind but may leave a cache mutex poisoned; the caches hold
    // plain finished values, so recovering the inner data is always safe.
    fn lock_results(&self) -> MutexGuard<'_, Lru<CellId, Result<CellOutcome, String>>> {
        self.results.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_workloads(&self) -> MutexGuard<'_, Lru<u64, Arc<Workload>>> {
        self.workloads.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Runs one `run` request against the warm caches. The error string
    /// becomes the client's `{"ok":false,"error":…}` reply.
    pub fn run_query(&self, scn: &str, ov: &Overrides) -> Result<RunReply, String> {
        Stats::bump(&self.stats.runs, 1);
        let mut set = ScenarioSet::parse(scn).map_err(|e| e.to_string())?;
        ov.apply(&mut set)?;
        if set.replications > 1 {
            return Err(format!(
                "replications = {} is a campaign feature; the daemon serves \
                 single-replication sweeps (use `bsld-repro campaign` for CIs)",
                set.replications
            ));
        }
        // The daemon never writes result files; blanking the output spec
        // also keeps it out of the (already output-blind) CellId.
        set.base.output = OutputSpec::default();
        let budget = ov
            .budget_s
            .or(set.cell_budget_s)
            .or(self.cfg.default_budget_s);

        let cells = set.expand().map_err(|e| e.to_string())?;
        let ids: Vec<CellId> = cells.iter().map(CellId::of).collect();
        let mut outcomes: Vec<Option<Result<CellOutcome, String>>> = {
            let mut cache = self.lock_results();
            ids.iter().map(|id| cache.get(id).cloned()).collect()
        };
        let cached = outcomes.iter().filter(|o| o.is_some()).count();
        let misses: Vec<usize> = (0..cells.len())
            .filter(|&i| outcomes[i].is_none())
            .collect();
        Stats::bump(&self.stats.result_hits, cached as u64);
        Stats::bump(&self.stats.result_misses, misses.len() as u64);

        if !misses.is_empty() {
            let computed = match budget {
                Some(b) if b > 0.0 => {
                    let (res, _exhausted) = bsld_par::run_budgeted(b, |flag| {
                        self.run_cells(&cells, &misses, Some(flag))
                    });
                    res
                }
                Some(_) => {
                    // A zero budget aborts before the first event; keep the
                    // same reply shape without spinning up the watchdog.
                    let flag = AbortFlag::new();
                    flag.raise();
                    self.run_cells(&cells, &misses, Some(&flag))
                }
                None => self.run_cells(&cells, &misses, None),
            };
            let mut aborted = false;
            {
                let mut cache = self.lock_results();
                for (&i, res) in misses.iter().zip(computed) {
                    match res {
                        Err(ScenarioError::Sim(SimError::Aborted)) => aborted = true,
                        res => {
                            let out = res.map_err(|e| e.to_string());
                            if cache.insert(ids[i], out.clone()).is_some() {
                                self.stats.result_evictions.inc();
                            }
                            outcomes[i] = Some(out);
                        }
                    }
                }
            }
            if aborted {
                let b = budget.unwrap_or(0.0);
                return Err(format!(
                    "request exceeded its wall-clock budget of {b} s and was aborted \
                     (cells that finished in time stay cached; retry with a larger \
                     budget_s override to finish the rest)"
                ));
            }
        }

        let rows: Vec<(String, Result<CellOutcome, String>)> = cells
            .iter()
            .zip(outcomes)
            .map(|(sc, out)| {
                (
                    sc.name.clone(),
                    // Every slot is Some here: hits filled it, and the miss
                    // loop either filled it or returned the abort error.
                    out.unwrap_or_else(|| Err("internal: cell left unresolved".into())),
                )
            })
            .collect();
        let report = sweep_report(&rows);
        let failure_summary = report.failure_summary();
        Ok(RunReply {
            cells: rows.len(),
            cached,
            table: report.table,
            csv: report.csv,
            failures: report.failures,
            failure_summary,
        })
    }

    /// Simulates the cache-missing cells (indices into `cells`), building
    /// each distinct workload at most once via the warm workload cache.
    /// Returned in `misses` order.
    fn run_cells(
        &self,
        cells: &[Scenario],
        misses: &[usize],
        abort: Option<&AbortFlag>,
    ) -> Vec<Result<CellOutcome, ScenarioError>> {
        // Build distinct workloads sequentially first: a sweep of N cells
        // over one SWF trace must parse it once, not min(N, threads) times.
        let mut built: BTreeMap<u64, Result<Arc<Workload>, ScenarioError>> = BTreeMap::new();
        for &i in misses {
            let key = workload_key(&cells[i].workload);
            built
                .entry(key)
                .or_insert_with(|| self.workload_for(&cells[i].workload, abort));
        }
        let todo: Vec<&Scenario> = misses.iter().map(|&i| &cells[i]).collect();
        bsld_par::par_map(todo, self.cfg.threads, |sc| {
            let w = match &built[&workload_key(&sc.workload)] {
                Ok(w) => Arc::clone(w),
                Err(e) => return Err(e.clone()),
            };
            Stats::bump(&self.stats.cells_run, 1);
            let mut sim = sc.simulator(&w)?;
            sim.engine.abort = abort.map(AbortFlag::handle);
            sc.run_prepared(&sim, &w.jobs).map(|r| CellOutcome::of(&r))
        })
    }

    /// Fetches (or builds and caches) the workload of one spec.
    fn workload_for(
        &self,
        spec: &WorkloadSpec,
        abort: Option<&AbortFlag>,
    ) -> Result<Arc<Workload>, ScenarioError> {
        let key = workload_key(spec);
        if let Some(w) = self.lock_workloads().get(&key) {
            Stats::bump(&self.stats.workload_hits, 1);
            return Ok(Arc::clone(w));
        }
        Stats::bump(&self.stats.workload_misses, 1);
        // Built outside the lock: an SWF parse can take seconds and must
        // not stall a concurrent query that only needs cached state. Two
        // clients racing on the same cold trace may both build it; the
        // results are identical and the second insert is a refresh.
        let w = Arc::new(spec.build_with_abort(abort.map(AbortFlag::as_atomic))?);
        if self.lock_workloads().insert(key, Arc::clone(&w)).is_some() {
            self.stats.workload_evictions.inc();
        }
        Ok(w)
    }

    /// Resident result cells (key order) with their workload-cache size,
    /// for the `cache` op.
    pub fn cache_listing(&self) -> Json {
        let results = self.lock_results();
        let ids: Vec<Json> = results
            .iter()
            .map(|(id, out)| {
                Json::obj(vec![
                    ("cell", Json::str(id.to_string())),
                    ("ok", Json::Bool(out.is_ok())),
                ])
            })
            .collect();
        let workloads = self.lock_workloads();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("results", Json::Num(results.len() as f64)),
            ("result_capacity", Json::Num(results.capacity() as f64)),
            ("workloads", Json::Num(workloads.len() as f64)),
            ("workload_capacity", Json::Num(workloads.capacity() as f64)),
            ("cells", Json::Arr(ids)),
        ])
    }

    /// Pins an SWF trace into the workload cache: parses and cleans it
    /// through the streaming path right now, keyed by path *and* content
    /// hash, so subsequent `run` requests over the same file start warm.
    /// The error string becomes the client's `{"ok":false,…}` reply.
    pub fn pin_swf(&self, path: &str) -> Result<Json, String> {
        let spec = WorkloadSpec::Swf {
            path: std::path::PathBuf::from(path),
            clean: true,
        };
        let key = workload_key(&spec);
        let content_hash = file_fnv(std::path::Path::new(path));
        Stats::bump(&self.stats.workload_misses, 1);
        let w = Arc::new(spec.build_with_abort(None).map_err(|e| e.to_string())?);
        let evicted = self.lock_workloads().insert(key, Arc::clone(&w)).is_some();
        if evicted {
            self.stats.workload_evictions.inc();
        }
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("pinned", Json::str(path)),
            ("jobs", Json::Num(w.jobs.len() as f64)),
            ("cpus", Json::Num(w.cpus as f64)),
            (
                "content_hash",
                Json::str(match content_hash {
                    Some(h) => format!("{h:016x}"),
                    None => "unreadable".to_string(),
                }),
            ),
            ("evicted", Json::Bool(evicted)),
        ]))
    }

    /// Empties both caches, returning how many entries were dropped.
    pub fn clear_caches(&self) -> (usize, usize) {
        let r = self.lock_results().clear();
        let w = self.lock_workloads().clear();
        (r, w)
    }

    /// The `status` counters as JSON pairs (the daemon adds uptime and
    /// pool facts on top).
    pub fn stats_pairs(&self) -> Vec<(&'static str, Json)> {
        let c = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        vec![
            ("requests", c(&self.stats.requests)),
            ("runs", c(&self.stats.runs)),
            ("cells_run", c(&self.stats.cells_run)),
            ("result_hits", c(&self.stats.result_hits)),
            ("result_misses", c(&self.stats.result_misses)),
            ("workload_hits", c(&self.stats.workload_hits)),
            ("workload_misses", c(&self.stats.workload_misses)),
            (
                "result_evictions",
                Json::Num(self.stats.result_evictions.get() as f64),
            ),
            (
                "workload_evictions",
                Json::Num(self.stats.workload_evictions.get() as f64),
            ),
            ("errors", c(&self.stats.errors)),
        ]
    }

    /// The `metrics` reply: the `status` counters plus the profiling
    /// plane — per-op latency histogram summaries (microseconds) and the
    /// in-flight request gauge.
    pub fn metrics_json(&self) -> Json {
        let h = |hist: &bsld_obs::Histogram| {
            let s = hist.summary();
            Json::obj(vec![
                ("count", Json::Num(s.count as f64)),
                ("sum_us", Json::Num(s.sum as f64)),
                ("max_us", Json::Num(s.max as f64)),
                ("p50_us", Json::Num(s.p50 as f64)),
                ("p90_us", Json::Num(s.p90 as f64)),
                ("p99_us", Json::Num(s.p99 as f64)),
            ])
        };
        let mut pairs = vec![("ok", Json::Bool(true))];
        pairs.extend(self.stats_pairs());
        pairs.push(("in_flight", Json::Num(self.metrics.in_flight.get() as f64)));
        pairs.push((
            "in_flight_peak",
            Json::Num(self.metrics.in_flight.peak() as f64),
        ));
        pairs.push((
            "latency",
            Json::obj(vec![
                ("run", h(&self.metrics.run_us)),
                ("status", h(&self.metrics.status_us)),
                ("cache", h(&self.metrics.cache_us)),
                ("metrics", h(&self.metrics.metrics_us)),
            ]),
        ));
        Json::obj(pairs)
    }
}

/// Content hash of a workload spec — the workload-cache key. `Debug` of
/// [`WorkloadSpec`] covers every field that affects the built workload;
/// for SWF specs the *file contents* are folded in too, so rewriting a
/// trace in place invalidates its cache entry instead of silently serving
/// the old jobs.
fn workload_key(spec: &WorkloadSpec) -> u64 {
    match spec {
        WorkloadSpec::Swf { path, .. } => match file_fnv(path) {
            Some(h) => fnv1a_64(format!("{spec:?}#{h:016x}").as_bytes()),
            // Unreadable now → key on the spec alone; the build itself
            // will surface the I/O error to the client.
            None => fnv1a_64(format!("{spec:?}").as_bytes()),
        },
        _ => fnv1a_64(format!("{spec:?}").as_bytes()),
    }
}

/// FNV-1a of a file's bytes, streamed in 64 KiB chunks (million-line
/// traces must not be slurped just to key a cache).
fn file_fnv(path: &std::path::Path) -> Option<u64> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).ok()?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf).ok()?;
        if n == 0 {
            return Some(h);
        }
        for &b in &buf[..n] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a, the same stable hash the campaign layer uses for cell IDs.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCN: &str =
        "scenario = demo\nworkload = synthetic\nprofile = ctc\njobs = 40\nseed = 11\n";

    fn state() -> ServerState {
        ServerState::new(StateConfig {
            threads: 2,
            ..StateConfig::default()
        })
    }

    #[test]
    fn repeated_queries_hit_the_result_cache_and_stay_identical() {
        let st = state();
        let cold = st.run_query(SCN, &Overrides::default()).unwrap();
        assert_eq!(cold.cached, 0);
        assert_eq!(cold.cells, 1);
        let warm = st.run_query(SCN, &Overrides::default()).unwrap();
        assert_eq!(warm.cached, 1);
        assert_eq!(warm.table, cold.table);
        assert_eq!(warm.csv, cold.csv);
        assert_eq!(st.stats.cells_run.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn overrides_change_the_cell_but_share_the_workload() {
        let st = state();
        st.run_query(SCN, &Overrides::default()).unwrap();
        let ov = Overrides {
            bsld_th: Some(1.5),
            ..Overrides::default()
        };
        let tweaked = st.run_query(SCN, &ov).unwrap();
        assert_eq!(tweaked.cached, 0, "different policy, different cell");
        assert!(tweaked.table.contains("demo-th1.5"), "{}", tweaked.table);
        assert_eq!(
            st.stats.workload_misses.load(Ordering::Relaxed),
            1,
            "same workload spec: generated once, reused warm"
        );
        assert_eq!(st.stats.workload_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_budget_aborts_with_a_structured_error_and_caches_nothing() {
        let st = state();
        let ov = Overrides {
            budget_s: Some(0.0),
            ..Overrides::default()
        };
        let err = st.run_query(SCN, &ov).unwrap_err();
        assert!(err.contains("budget"), "{err}");
        let (r, _) = st.clear_caches();
        assert_eq!(r, 0, "aborted cells must not be cached");
        // A patient retry succeeds from scratch.
        assert!(st.run_query(SCN, &Overrides::default()).is_ok());
    }

    #[test]
    fn replications_are_refused() {
        let scn = format!("{SCN}replications = 3\n");
        let err = state().run_query(&scn, &Overrides::default()).unwrap_err();
        assert!(err.contains("replications"), "{err}");
    }

    fn write_trace(dir: &std::path::Path, name: &str, jobs: u64, seed: u64) -> std::path::PathBuf {
        let path = dir.join(name);
        let mut buf = Vec::new();
        bsld_swf::generate_swf(&mut buf, jobs, seed, 64).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    #[test]
    fn pin_swf_warms_the_workload_cache() {
        let dir = std::env::temp_dir().join(format!("bsld-pin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = write_trace(&dir, "pin.swf", 30, 5);
        let st = state();
        let reply = st.pin_swf(trace.to_str().unwrap()).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("jobs").and_then(Json::as_u64), Some(30));
        assert_eq!(reply.get("evicted").and_then(Json::as_bool), Some(false));
        assert!(reply.get("content_hash").and_then(Json::as_str).is_some());
        // A run over the pinned trace hits the warm entry: zero new misses.
        let scn = format!(
            "scenario = replay\nworkload = swf\nswf_path = {}\n",
            trace.display()
        );
        st.run_query(&scn, &Overrides::default()).unwrap();
        assert_eq!(st.stats.workload_hits.load(Ordering::Relaxed), 1);
        assert_eq!(
            st.stats.workload_misses.load(Ordering::Relaxed),
            1,
            "only the pin itself counts as a miss"
        );
        // Rewriting the file in place changes the content hash, so the
        // stale pinned entry can never be served for the new bytes.
        let before = workload_key(&WorkloadSpec::Swf {
            path: trace.clone(),
            clean: true,
        });
        write_trace(&dir, "pin.swf", 31, 6);
        let after = workload_key(&WorkloadSpec::Swf {
            path: trace.clone(),
            clean: true,
        });
        assert_ne!(before, after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinning_past_capacity_evicts_the_oldest_trace() {
        let dir = std::env::temp_dir().join(format!("bsld-pin-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let st = ServerState::new(StateConfig {
            threads: 1,
            workload_capacity: 2,
            ..StateConfig::default()
        });
        for (i, name) in ["a.swf", "b.swf"].iter().enumerate() {
            let p = write_trace(&dir, name, 10, i as u64);
            let reply = st.pin_swf(p.to_str().unwrap()).unwrap();
            assert_eq!(reply.get("evicted").and_then(Json::as_bool), Some(false));
        }
        let p = write_trace(&dir, "c.swf", 10, 9);
        let reply = st.pin_swf(p.to_str().unwrap()).unwrap();
        assert_eq!(
            reply.get("evicted").and_then(Json::as_bool),
            Some(true),
            "third pin into a 2-slot cache must evict"
        );
        let listing = st.cache_listing();
        assert_eq!(listing.get("workloads").and_then(Json::as_u64), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinning_a_missing_file_is_a_structured_error() {
        let err = state().pin_swf("/nonexistent/void.swf").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn cache_listing_and_clear_report_counts() {
        let st = state();
        st.run_query(SCN, &Overrides::default()).unwrap();
        let listing = st.cache_listing();
        assert_eq!(listing.get("results").and_then(Json::as_u64), Some(1));
        assert_eq!(listing.get("workloads").and_then(Json::as_u64), Some(1));
        let (r, w) = st.clear_caches();
        assert_eq!((r, w), (1, 1));
        assert_eq!(
            st.cache_listing().get("results").and_then(Json::as_u64),
            Some(0)
        );
    }
}
