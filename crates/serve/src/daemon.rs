//! The daemon: a Unix-domain socket accept loop over the warm
//! [`ServerState`], with a fixed worker pool of connection handlers and a
//! graceful drain on `shutdown`.
//!
//! This is the only module in the crate that touches the wall clock —
//! once directly at bind (uptime in `status` replies) and per request
//! through [`bsld_obs::Stopwatch`] for the `metrics` op's latency
//! histograms. Every reply *payload* a client acts on (tables, CSV) is
//! clock-free.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bsld_metrics::Json;

use crate::proto::{error_reply, Request, PROTOCOL_VERSION};
use crate::state::{ServerState, StateConfig, Stats};

/// How a daemon is stood up.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Concurrent connection handlers (each serves one client at a time;
    /// further clients queue on the accept backlog).
    pub workers: usize,
    /// Sizing of the warm state behind the socket.
    pub state: StateConfig,
}

impl ServeConfig {
    /// Defaults (2 handler workers, default [`StateConfig`]) on `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            workers: 2,
            state: StateConfig::default(),
        }
    }
}

/// Why the daemon could not start or keep running.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Another live daemon already answers on the socket.
    AlreadyServing(PathBuf),
    /// Socket I/O failed (bind, stale-file removal, …).
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::AlreadyServing(p) => write!(
                f,
                "a daemon is already serving on {}: stop it first (bsld-repro \
                 query shutdown --socket {0})",
                p.display()
            ),
            ServeError::Io(msg) => write!(f, "socket error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A bound (but not yet running) daemon.
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    cfg: ServeConfig,
    state: Arc<ServerState>,
    started: Instant,
}

impl Server {
    /// Binds the socket, replacing a stale socket file (one no live daemon
    /// answers on) and refusing to shadow a live one.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.socket.exists() {
            if UnixStream::connect(&cfg.socket).is_ok() {
                return Err(ServeError::AlreadyServing(cfg.socket.clone()));
            }
            // Nobody home: a previous daemon died without unlinking.
            std::fs::remove_file(&cfg.socket).map_err(|e| {
                ServeError::Io(format!(
                    "cannot remove stale socket {}: {e}",
                    cfg.socket.display()
                ))
            })?;
        }
        let listener = UnixListener::bind(&cfg.socket)
            .map_err(|e| ServeError::Io(format!("cannot bind {}: {e}", cfg.socket.display())))?;
        let state = Arc::new(ServerState::new(cfg.state.clone()));
        Ok(Server {
            listener,
            cfg,
            state,
            // audit:allow(D2): uptime is status-op provenance, never a
            // reply payload a client computes with.
            started: Instant::now(),
        })
    }

    /// The warm state behind this daemon (shared; useful for tests and
    /// benches that want to pre-warm or inspect caches).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// The socket path this daemon answers on.
    pub fn socket(&self) -> &std::path::Path {
        &self.cfg.socket
    }

    /// Serves until a client sends `{"op":"shutdown"}`: accepted
    /// connections drain (every in-flight request gets its reply), the
    /// socket file is unlinked, and the call returns.
    pub fn run(self) -> Result<(), ServeError> {
        let pool = bsld_par::Pool::new(self.cfg.workers);
        let shutdown = Arc::new(AtomicBool::new(false));
        for conn in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept failures (e.g. EINTR): keep serving.
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let flag = Arc::clone(&shutdown);
            let socket = self.cfg.socket.clone();
            let started = self.started;
            let workers = self.cfg.workers;
            pool.submit(move || {
                if serve_connection(stream, &state, started, workers) {
                    flag.store(true, Ordering::SeqCst);
                    // Self-connect so the blocking accept() observes the
                    // flag — the portable, `unsafe`-free wake-up.
                    let _ = UnixStream::connect(&socket);
                }
            });
        }
        pool.close();
        pool.join();
        std::fs::remove_file(&self.cfg.socket)
            .map_err(|e| ServeError::Io(format!("cannot unlink socket: {e}")))?;
        Ok(())
    }
}

/// Serves one client connection to completion (many requests per
/// connection are fine). Returns whether the client requested shutdown.
fn serve_connection(
    stream: UnixStream,
    state: &ServerState,
    started: Instant,
    workers: usize,
) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut writer = stream;
    let mut shutdown = false;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else {
            break; // torn read / client vanished: just drop the connection
        };
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        Stats::bump(&state.stats.requests, 1);
        let reply = match Request::parse(&line) {
            Err(msg) => {
                Stats::bump(&state.stats.errors, 1);
                error_reply(&msg)
            }
            Ok(req) => {
                let op = req.op_label();
                state.metrics.in_flight.inc();
                let sw = bsld_obs::Stopwatch::start();
                let reply = dispatch(req, state, started, workers, &mut shutdown);
                if let Some(h) = state.metrics.histogram(op) {
                    h.record(sw.elapsed_us());
                }
                state.metrics.in_flight.dec();
                reply
            }
        };
        let mut text = reply.render();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break; // client stopped reading; nothing left to serve it
        }
        if shutdown {
            break;
        }
    }
    shutdown
}

/// Executes one parsed request against the warm state.
fn dispatch(
    req: Request,
    state: &ServerState,
    started: Instant,
    workers: usize,
    shutdown: &mut bool,
) -> Json {
    match req {
        Request::Run { scn, overrides } => match state.run_query(&scn, &overrides) {
            Ok(reply) => reply.to_json(),
            Err(msg) => {
                Stats::bump(&state.stats.errors, 1);
                error_reply(&msg)
            }
        },
        Request::Status => {
            let cfg = state.config();
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
                ("uptime_s", Json::Num(started.elapsed().as_secs_f64())),
                ("workers", Json::Num(workers as f64)),
                ("threads", Json::Num(cfg.threads as f64)),
            ];
            pairs.extend(state.stats_pairs());
            Json::obj(pairs)
        }
        Request::Metrics => state.metrics_json(),
        Request::Cache { clear: false } => state.cache_listing(),
        Request::CachePin { swf } => match state.pin_swf(&swf) {
            Ok(reply) => reply,
            Err(msg) => {
                Stats::bump(&state.stats.errors, 1);
                error_reply(&msg)
            }
        },
        Request::Cache { clear: true } => {
            let (results, workloads) = state.clear_caches();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cleared_results", Json::Num(results as f64)),
                ("cleared_workloads", Json::Num(workloads as f64)),
            ])
        }
        Request::Shutdown => {
            *shutdown = true;
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("shutting_down", Json::Bool(true)),
            ])
        }
    }
}
