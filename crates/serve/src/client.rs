//! A thin synchronous client for the daemon's wire protocol: one
//! connection, one request line out, one reply line back.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use bsld_metrics::Json;

use crate::proto::Overrides;

/// A connected client. One instance may issue many requests; the
/// connection stays open until dropped.
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a daemon's socket.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket).map_err(|e| {
            format!(
                "cannot connect to {} (is a daemon serving there?): {e}",
                socket.display()
            )
        })?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket stream: {e}"))?,
        );
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request object and reads its reply line.
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        let mut line = req.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("cannot read reply: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection without replying".to_string());
        }
        Json::parse(reply.trim_end_matches('\n'))
            .map_err(|e| format!("daemon sent an unparseable reply: {e}"))
    }

    /// `{"op":"run"}` with the scenario file *text* (read the file
    /// client-side; daemon and client need no shared filesystem).
    pub fn run(&mut self, scn_text: &str, overrides: &Overrides) -> Result<Json, String> {
        let mut pairs = vec![("op", Json::str("run")), ("scn", Json::str(scn_text))];
        let ov = overrides_json(overrides);
        if let Json::Obj(o) = &ov {
            if !o.is_empty() {
                pairs.push(("overrides", ov));
            }
        }
        self.request(&Json::obj(pairs))
    }

    /// `{"op":"status"}`.
    pub fn status(&mut self) -> Result<Json, String> {
        self.request(&Json::obj(vec![("op", Json::str("status"))]))
    }

    /// `{"op":"metrics"}` — the profiling plane: counters plus per-op
    /// latency histograms and queue depth.
    pub fn metrics(&mut self) -> Result<Json, String> {
        self.request(&Json::obj(vec![("op", Json::str("metrics"))]))
    }

    /// `{"op":"cache"}` — a listing, or a wipe with `clear`.
    pub fn cache(&mut self, clear: bool) -> Result<Json, String> {
        self.request(&Json::obj(vec![
            ("op", Json::str("cache")),
            ("clear", Json::Bool(clear)),
        ]))
    }

    /// `{"op":"cache","swf":…}` — pins a trace into the daemon's workload
    /// cache (the path is resolved daemon-side).
    pub fn cache_pin(&mut self, swf: &str) -> Result<Json, String> {
        self.request(&Json::obj(vec![
            ("op", Json::str("cache")),
            ("swf", Json::str(swf)),
        ]))
    }

    /// `{"op":"shutdown"}` — asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.request(&Json::obj(vec![("op", Json::str("shutdown"))]))
    }
}

/// Renders overrides back to their wire form (inverse of
/// [`Overrides::from_json`]).
pub fn overrides_json(ov: &Overrides) -> Json {
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if let Some(th) = ov.bsld_th {
        pairs.push(("bsld_th", Json::Num(th)));
    }
    if let Some(wq) = ov.wq {
        pairs.push(("wq", Json::str(wq.label().to_ascii_lowercase())));
    }
    if let Some(cap) = ov.cap {
        pairs.push((
            "cap",
            match cap {
                Some(f) => Json::Num(f),
                None => Json::str("none"),
            },
        ));
    }
    if let Some(model) = &ov.model {
        pairs.push(("model", Json::str(model.label())));
    }
    if let Some(jobs) = ov.jobs {
        pairs.push(("jobs", Json::Num(jobs as f64)));
    }
    if let Some(seed) = ov.seed {
        pairs.push(("seed", Json::Num(seed as f64)));
    }
    if let Some(p) = ov.profile {
        pairs.push(("profile", Json::str(p.key())));
    }
    if let Some(pct) = ov.enlarge_pct {
        pairs.push(("enlarge_pct", Json::Num(f64::from(pct))));
    }
    if let Some(b) = ov.budget_s {
        pairs.push(("budget_s", Json::Num(b)));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_round_trip_through_the_wire_form() {
        let ov = Overrides {
            bsld_th: Some(1.5),
            wq: Some(bsld_core::WqThreshold::NoLimit),
            cap: Some(None),
            jobs: Some(64),
            seed: Some(9),
            enlarge_pct: Some(20),
            budget_s: Some(3.5),
            ..Overrides::default()
        };
        let wire = overrides_json(&ov);
        let back = Overrides::from_json(&wire).unwrap();
        assert_eq!(back, ov);
    }
}
