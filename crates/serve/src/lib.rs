//! Scheduling as a service: the `bsld-repro serve` daemon.
//!
//! A sweep-heavy workflow repeats two expensive steps on every invocation
//! of the one-shot CLI: parsing/cleaning the workload (multi-second for a
//! real SWF trace) and re-simulating cells an earlier what-if already
//! answered. This crate keeps both *resident*: a long-running daemon holds
//! parsed workloads and finished cell outcomes in bounded, deterministic
//! LRU caches and answers scenario queries over a Unix-domain socket —
//! line-delimited JSON in, line-delimited JSON out (see [`proto`] for the
//! wire format).
//!
//! Replies are **byte-identical** to the one-shot CLI: the daemon renders
//! through the same [`bsld_core::sweep_report`] path as `bsld-repro run`,
//! and results are keyed by the campaign layer's content-hash
//! [`bsld_core::CellId`], so caching can never change an answer, only its
//! latency. Budget-capped requests ([`proto::Overrides::budget_s`], the
//! file's `cell_budget_s`, or the daemon default) are aborted by the same
//! watchdog the campaign layer uses and turn into structured error
//! replies — a slow query, a torn line or malformed JSON can never take
//! the daemon down.
//!
//! Quick tour:
//!
//! * [`Server`] / [`ServeConfig`] — bind a socket, serve until a client
//!   sends `{"op":"shutdown"}`;
//! * [`Client`] — the blocking one-call-per-line client the `bsld-repro
//!   query` subcommand wraps;
//! * [`ServerState`] — the warm caches + query execution, directly usable
//!   in-process (no socket) for tests and benches;
//! * [`cache::Lru`] — the logical-clock LRU both caches are built on.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod cache;
pub mod client;
pub mod daemon;
pub mod proto;
pub mod state;

pub use client::Client;
pub use daemon::{ServeConfig, ServeError, Server};
pub use proto::{Overrides, Request, PROTOCOL_VERSION};
pub use state::{RunReply, ServerState, StateConfig};
