//! Minimal CSV output (RFC 4180 quoting).

use std::io::{self, Write};

/// Escapes one CSV field: quotes it if it contains a comma, quote, or
/// newline, doubling embedded quotes.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Writes a header row and data rows as CSV.
pub fn write_csv<W: Write>(w: &mut W, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&csv_escape(h));
    }
    writeln!(w, "{line}")?;
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "CSV row width mismatch");
        line.clear();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&csv_escape(cell));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Renders CSV to a `String` (convenience for tests and small reports).
pub fn csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut buf = Vec::new();
    write_csv(&mut buf, headers, rows).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(csv_escape("abc"), "abc");
        assert_eq!(csv_escape("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn full_document() {
        let rows = vec![
            vec!["CTC".to_string(), "0.92".to_string()],
            vec!["SDSC,large".to_string(), "1.00".to_string()],
        ];
        let s = csv_string(&["workload", "energy"], &rows);
        assert_eq!(s, "workload,energy\nCTC,0.92\n\"SDSC,large\",1.00\n");
    }

    #[test]
    fn empty_rows() {
        let s = csv_string(&["a"], &[]);
        assert_eq!(s, "a\n");
    }
}
