//! Minimal CSV output (RFC 4180 quoting).
//!
//! Every CSV byte the workspace emits flows through [`write_csv`] (and
//! therefore [`csv_escape`]): the experiment artifact writers
//! (`bsld-core`'s `write_artifact`), the power/utilization/queue step
//! series (`crate::series`), the CLI's schedule exports and the scenario
//! result tables all build `Vec<String>` rows and hand them here — no
//! render path joins raw strings with commas itself. [`parse_csv_line`]
//! is the matching reader, provided so tests (and downstream consumers)
//! can prove fields round-trip even when they contain commas, quotes or
//! newlines — cluster names from real SWF headers do.

use std::io::{self, Write};

/// Escapes one CSV field: quotes it if it contains a comma, quote, or
/// newline, doubling embedded quotes.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Writes a header row and data rows as CSV.
pub fn write_csv<W: Write>(w: &mut W, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&csv_escape(h));
    }
    writeln!(w, "{line}")?;
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "CSV row width mismatch");
        line.clear();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&csv_escape(cell));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Renders CSV to a `String` (convenience for tests and small reports).
pub fn csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut buf = Vec::new();
    // audit:allow(R1): io::Write into an in-memory Vec<u8> cannot fail
    write_csv(&mut buf, headers, rows).expect("writing to a Vec cannot fail");
    // audit:allow(R1): write_csv emits only valid UTF-8
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

/// Parses one CSV record (RFC 4180): the exact inverse of a line produced
/// by [`write_csv`]. Quoted fields may contain commas, doubled quotes and
/// embedded newlines (pass the full record, not a split line).
pub fn parse_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(csv_escape("abc"), "abc");
        assert_eq!(csv_escape("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn full_document() {
        let rows = vec![
            vec!["CTC".to_string(), "0.92".to_string()],
            vec!["SDSC,large".to_string(), "1.00".to_string()],
        ];
        let s = csv_string(&["workload", "energy"], &rows);
        assert_eq!(s, "workload,energy\nCTC,0.92\n\"SDSC,large\",1.00\n");
    }

    #[test]
    fn empty_rows() {
        let s = csv_string(&["a"], &[]);
        assert_eq!(s, "a\n");
    }

    #[test]
    fn parse_csv_line_inverts_escaping() {
        for field in ["plain", "a,b", "say \"hi\"", "tricky \"x\",y", ""] {
            let row = vec![field.to_string(), "1.5".to_string()];
            let s = csv_string(&["name", "v"], std::slice::from_ref(&row));
            let data_line = s.lines().nth(1).unwrap();
            assert_eq!(parse_csv_line(data_line), row, "field {field:?}");
        }
    }

    #[test]
    fn comma_cluster_name_round_trips_through_csv() {
        // SWF headers can carry machine names like "SDSC SP2, batch
        // partition" — such a name must survive every table/series writer.
        let name = "SDSC SP2, batch partition";
        let rows = vec![vec![name.to_string(), "4.66".to_string()]];
        let doc = csv_string(&["workload", "avg_bsld"], &rows);
        let mut lines = doc.lines();
        assert_eq!(
            parse_csv_line(lines.next().unwrap()),
            vec!["workload", "avg_bsld"]
        );
        let parsed = parse_csv_line(lines.next().unwrap());
        assert_eq!(parsed[0], name);
        assert_eq!(parsed[1], "4.66");
    }
}
