//! Aligned plain-text tables for terminal reports.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table: header row, alignment per column, data rows.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers; all columns right-aligned
    /// except the first.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the alignment of column `idx`.
    pub fn align(mut self, idx: usize, align: Align) -> Self {
        self.aligns[idx] = align;
        self
    }

    /// Appends a data row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < ncols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer     22");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = TextTable::new(vec!["a", "b"]).align(1, Align::Left);
        t.row(vec!["x", "yy"]);
        t.row(vec!["x", "y"]);
        let s = t.render();
        assert!(s.lines().nth(3).unwrap().starts_with("x  y"));
    }
}
