//! Run metrics and report writers.
//!
//! * [`RunMetrics`] — the per-run summary every experiment consumes:
//!   average/max BSLD (Eq. 6), wait-time statistics, reduced-job counts,
//!   per-gear histograms, energy in both idle scenarios, utilisation;
//! * [`series`] — per-job wait-time series (Figure 6) and smoothing;
//! * [`ci`] — mean ± 95 % CI presentation for replicated campaigns;
//! * [`TextTable`] — aligned plain-text tables for terminal output;
//! * [`csvout`] / [`jsonout`] — hand-rolled CSV and JSON writers (kept
//!   dependency-free on purpose; see DESIGN.md §8).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod ci;
pub mod csvout;
pub mod detail;
pub mod jsonout;
pub mod series;
pub mod summary;
pub mod table;

pub use ci::MeanCi;
pub use csvout::{csv_escape, csv_string, parse_csv_line, write_csv};
pub use detail::{Percentiles, RunDetails, SizeClass};
pub use jsonout::{Json, JsonError};
pub use summary::RunMetrics;
pub use table::TextTable;
