//! Per-run summary metrics.

use bsld_model::{GearId, JobOutcome, BSLD_SHORT_JOB_THRESHOLD_SECS};
use bsld_power::{EnergyAccount, EnergyReport, PowerModel};
use bsld_simkernel::stats::OnlineStats;

/// Everything the paper reports about one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Number of completed jobs.
    pub jobs: usize,
    /// Average BSLD over all jobs (Eq. 6, threshold 600 s) — Figures 5 & 9.
    pub avg_bsld: f64,
    /// Largest single-job BSLD.
    pub max_bsld: f64,
    /// Average wait time in seconds — Table 3.
    pub avg_wait_secs: f64,
    /// Largest single-job wait, seconds.
    pub max_wait_secs: u64,
    /// Jobs that ran below the top gear at any point — Figure 4.
    pub reduced_jobs: usize,
    /// Jobs per initially-assigned gear (index = gear id).
    pub gear_histogram: Vec<usize>,
    /// Completion time of the last job, seconds from simulation start.
    pub makespan_secs: u64,
    /// Energy in both idle scenarios — Figures 3, 7, 8.
    pub energy: EnergyReport,
    /// Busy processor-time over capacity for the makespan.
    pub utilization: f64,
}

impl RunMetrics {
    /// Summarises a run.
    ///
    /// * `outcomes` — the simulator's completed jobs;
    /// * `pm` — the power model used for energy accounting;
    /// * `total_cpus` — the machine size the run used (for idle energy);
    /// * `gear_count` — gears in the machine's gear set (histogram width).
    pub fn compute(
        outcomes: &[JobOutcome],
        pm: &dyn PowerModel,
        total_cpus: u32,
        gear_count: usize,
    ) -> RunMetrics {
        let th = BSLD_SHORT_JOB_THRESHOLD_SECS;
        let top = GearId(gear_count.saturating_sub(1) as u8);
        let mut bsld = OnlineStats::new();
        let mut wait = OnlineStats::new();
        let mut max_wait = 0u64;
        let mut reduced = 0usize;
        let mut gear_histogram = vec![0usize; gear_count.max(1)];
        let mut account = EnergyAccount::new();
        let mut makespan = 0u64;
        for o in outcomes {
            bsld.push(o.bsld(th));
            let w = o.wait();
            wait.push(w as f64);
            max_wait = max_wait.max(w);
            if o.was_reduced(top) {
                reduced += 1;
            }
            let g = o.gear.index().min(gear_histogram.len() - 1);
            gear_histogram[g] += 1;
            account.add_outcome(pm, o);
            makespan = makespan.max(o.finish.as_secs());
        }
        let energy = account.finish(pm, total_cpus, makespan);
        RunMetrics {
            jobs: outcomes.len(),
            avg_bsld: bsld.mean(),
            max_bsld: bsld.max().unwrap_or(0.0),
            avg_wait_secs: wait.mean(),
            max_wait_secs: max_wait,
            reduced_jobs: reduced,
            gear_histogram,
            makespan_secs: makespan,
            energy,
            utilization: energy.utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_model::{JobId, Phase};
    use bsld_simkernel::Time;

    fn outcome(id: u32, cpus: u32, arrival: u64, start: u64, runtime: u64, gear: u8) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            cpus,
            arrival: Time(arrival),
            start: Time(start),
            finish: Time(start + runtime),
            gear: GearId(gear),
            phases: vec![Phase {
                gear: GearId(gear),
                seconds: runtime,
            }],
            nominal_runtime: runtime,
            requested: runtime,
        }
    }

    #[test]
    fn summary_of_two_jobs() {
        let pm = bsld_power::PaperDvfs::paper(GearSet::paper());
        let outcomes = vec![
            outcome(0, 4, 0, 0, 1200, 5),    // BSLD 1, no wait
            outcome(1, 2, 0, 1200, 1200, 2), // BSLD 2, wait 1200, reduced
        ];
        let m = RunMetrics::compute(&outcomes, &pm, 4, 6);
        assert_eq!(m.jobs, 2);
        assert!((m.avg_bsld - 1.5).abs() < 1e-12);
        assert_eq!(m.max_bsld, 2.0);
        assert!((m.avg_wait_secs - 600.0).abs() < 1e-12);
        assert_eq!(m.max_wait_secs, 1200);
        assert_eq!(m.reduced_jobs, 1);
        assert_eq!(m.gear_histogram, vec![0, 0, 1, 0, 0, 1]);
        assert_eq!(m.makespan_secs, 2400);
        assert!(m.energy.computational > 0.0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
    }

    #[test]
    fn empty_run() {
        let pm = bsld_power::PaperDvfs::paper(GearSet::paper());
        let m = RunMetrics::compute(&[], &pm, 4, 6);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.avg_bsld, 0.0);
        assert_eq!(m.reduced_jobs, 0);
        assert_eq!(m.makespan_secs, 0);
    }

    #[test]
    fn boosted_job_counts_as_reduced() {
        let pm = bsld_power::PaperDvfs::paper(GearSet::paper());
        let o = JobOutcome {
            id: JobId(0),
            cpus: 1,
            arrival: Time(0),
            start: Time(0),
            finish: Time(100),
            gear: GearId(0),
            phases: vec![
                Phase {
                    gear: GearId(0),
                    seconds: 50,
                },
                Phase {
                    gear: GearId(5),
                    seconds: 50,
                },
            ],
            nominal_runtime: 80,
            requested: 80,
        };
        let m = RunMetrics::compute(&[o], &pm, 1, 6);
        assert_eq!(m.reduced_jobs, 1);
        assert_eq!(m.gear_histogram[0], 1, "histogram uses the initial gear");
    }
}
