//! Minimal JSON value and writer.
//!
//! A deliberately small JSON emitter for machine-readable experiment
//! artifacts. Kept dependency-free: `serde` alone would not serialise
//! anything without a format crate, and the needs here are tiny
//! (see DESIGN.md §8).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialises to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Json::obj(vec![
            ("workload", Json::str("CTC")),
            (
                "grid",
                Json::Arr(vec![Json::Num(1.5), Json::Num(2.0), Json::Num(3.0)]),
            ),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            v.render(),
            "{\"workload\":\"CTC\",\"grid\":[1.5,2,3],\"nested\":{\"ok\":true}}"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Json::from(2u64).render(), "2");
        assert_eq!(Json::from(2usize).render(), "2");
        assert_eq!(Json::from(0.25f64).render(), "0.25");
        assert_eq!(Json::from("x").render(), "\"x\"");
    }
}
