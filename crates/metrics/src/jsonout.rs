//! Minimal JSON value and writer.
//!
//! A deliberately small JSON emitter for machine-readable experiment
//! artifacts. Kept dependency-free: `serde` alone would not serialise
//! anything without a format crate, and the needs here are tiny
//! (see DESIGN.md §8).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialises to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    // Float comparisons here are bit-level classification (-0.0 detection,
    // integral-value check), not approximate numerics — see the comment in
    // the Num arm.
    #[allow(clippy::float_cmp)]
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a fractional part via
                    // i64 — but only inside the range where every integral
                    // f64 is exact (|x| ≤ 2^53) and the cast cannot
                    // truncate or saturate. Larger magnitudes take the
                    // float path: Rust's `{}` for f64 is the shortest
                    // representation that parses back to the identical
                    // bits (never exponent notation), so CellId-sized
                    // provenance numbers survive `campaign.json` intact.
                    const EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53
                                                                    // audit:allow(N1): deliberate bit-level -0.0 detection for exact round-trip printing
                    let negative_zero = *x == 0.0 && x.is_sign_negative();
                    if *x == x.trunc() && x.abs() <= EXACT_INT && !negative_zero {
                        // audit:allow(N2): guarded: |x| <= 2^53 and integral, exact in i64
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        // `{}` prints -0.0 as "-0", preserving the sign bit.
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // audit:allow(N2): char -> u32 is a lossless widening
            c if (c as u32) < 0x20 => {
                // audit:allow(N2): char -> u32 is a lossless widening
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Json::obj(vec![
            ("workload", Json::str("CTC")),
            (
                "grid",
                Json::Arr(vec![Json::Num(1.5), Json::Num(2.0), Json::Num(3.0)]),
            ),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            v.render(),
            "{\"workload\":\"CTC\",\"grid\":[1.5,2,3],\"nested\":{\"ok\":true}}"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Json::from(2u64).render(), "2");
        assert_eq!(Json::from(2usize).render(), "2");
        assert_eq!(Json::from(0.25f64).render(), "0.25");
        assert_eq!(Json::from("x").render(), "\"x\"");
    }

    #[test]
    fn large_magnitudes_render_exactly() {
        // At and below 2^53 every integral f64 is exact; the i64 fast
        // path must print the true value...
        assert_eq!(Json::Num(9007199254740992.0).render(), "9007199254740992");
        assert_eq!(Json::Num(-9007199254740992.0).render(), "-9007199254740992");
        assert_eq!(Json::Num(1e15).render(), "1000000000000000");
        // ...and beyond it the float path renders the shortest decimal
        // that parses back to the identical f64 — never a truncated
        // `as i64` cast (which would saturate CellId-sized magnitudes to
        // i64::MAX = 9223372036854775807).
        let cell_sized = 18446744073709549568.0f64; // largest f64 < u64::MAX
        let text = Json::Num(cell_sized).render();
        assert_eq!(text, "18446744073709550000");
        assert_eq!(text.parse::<f64>().unwrap().to_bits(), cell_sized.to_bits());
        assert!(
            !Json::Num(1e300).render().contains('e'),
            "plain decimal, valid JSON"
        );
    }

    #[test]
    fn rendered_numbers_round_trip_to_identical_bits() {
        let samples = [
            0.0,
            -0.0,
            0.1,
            1.5,
            1e15,
            9007199254740992.0,    // 2^53
            9007199254740994.0,    // 2^53 + 2 (first even step)
            1.8446744073709552e19, // ~u64::MAX
            u64::MAX as f64,
            i64::MIN as f64,
            f64::MAX,
            f64::MIN_POSITIVE,
            2.2250738585072014e-308,
            std::f64::consts::PI,
        ];
        for &x in &samples {
            let text = Json::Num(x).render();
            let back: f64 = text.parse().expect("rendered JSON number parses");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {text}");
        }
    }
}
