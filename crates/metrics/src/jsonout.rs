//! Minimal JSON value, writer and reader.
//!
//! A deliberately small JSON emitter (and, since the `bsld-repro serve`
//! daemon speaks line-delimited JSON, a matching parser) for
//! machine-readable experiment artifacts and wire messages. Kept
//! dependency-free: `serde` alone would not serialise anything without a
//! format crate, and the needs here are tiny (see DESIGN.md §8).

use std::fmt::Write as _;

/// 2^53 — the largest magnitude below which every integral f64 is exact.
const EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (first match); `None` for other
    /// variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: `Num` values
    /// that are integral and inside the exact-f64 range `[0, 2^53]`.
    // Integral-value classification, not approximate numerics.
    #[allow(clippy::float_cmp)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.is_finite() && *x == x.trunc() && *x >= 0.0 && *x <= EXACT_INT => {
                // audit:allow(N2): guarded: integral and 0 <= x <= 2^53, exact in u64
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text into a value.
    ///
    /// Accepts exactly one top-level value (surrounding whitespace is
    /// fine, trailing garbage is not). Objects keep key order as
    /// written; duplicate keys are kept too — [`Json::get`] returns the
    /// first. Numbers must fit a finite `f64`. Nesting is capped so a
    /// hostile `[[[[…` wire message cannot overflow the stack.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Serialises to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    // Float comparisons here are bit-level classification (-0.0 detection,
    // integral-value check), not approximate numerics — see the comment in
    // the Num arm.
    #[allow(clippy::float_cmp)]
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a fractional part via
                    // i64 — but only inside the range where every integral
                    // f64 is exact (|x| ≤ 2^53) and the cast cannot
                    // truncate or saturate. Larger magnitudes take the
                    // float path: Rust's `{}` for f64 is the shortest
                    // representation that parses back to the identical
                    // bits (never exponent notation), so CellId-sized
                    // provenance numbers survive `campaign.json` intact.
                    // audit:allow(N1): deliberate bit-level -0.0 detection for exact round-trip printing
                    let negative_zero = *x == 0.0 && x.is_sign_negative();
                    if *x == x.trunc() && x.abs() <= EXACT_INT && !negative_zero {
                        // audit:allow(N2): guarded: |x| <= 2^53 and integral, exact in i64
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        // `{}` prints -0.0 as "-0", preserving the sign bit.
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // audit:allow(N2): char -> u32 is a lossless widening
            c if (c as u32) < 0x20 => {
                // audit:allow(N2): char -> u32 is a lossless widening
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset into the input plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input text.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest permitted array/object nesting when parsing.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `{`
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume the opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any slice between ASCII
                // delimiters is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        self.err("string slice is not UTF-8 (unreachable for &str input)")
                    })?,
                );
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.err("high surrogate not followed by \\u escape"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("escape is not a Unicode scalar"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The byte set above contains only ASCII, so the slice is UTF-8,
        // and `f64::from_str` enforces the numeric grammar (`-`, `1e+`,
        // `1.2.3` all fail). Only the textual forms `inf`/`NaN` parse to
        // non-finite values and none survive the byte filter, so the
        // finite check guards range overflow like `1e400`.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("number slice is not UTF-8 (unreachable for ASCII)"))?;
        let x: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        if !x.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number `{text}` overflows f64"),
            });
        }
        Ok(Json::Num(x))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Json::obj(vec![
            ("workload", Json::str("CTC")),
            (
                "grid",
                Json::Arr(vec![Json::Num(1.5), Json::Num(2.0), Json::Num(3.0)]),
            ),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            v.render(),
            "{\"workload\":\"CTC\",\"grid\":[1.5,2,3],\"nested\":{\"ok\":true}}"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Json::from(2u64).render(), "2");
        assert_eq!(Json::from(2usize).render(), "2");
        assert_eq!(Json::from(0.25f64).render(), "0.25");
        assert_eq!(Json::from("x").render(), "\"x\"");
    }

    #[test]
    fn large_magnitudes_render_exactly() {
        // At and below 2^53 every integral f64 is exact; the i64 fast
        // path must print the true value...
        assert_eq!(Json::Num(9007199254740992.0).render(), "9007199254740992");
        assert_eq!(Json::Num(-9007199254740992.0).render(), "-9007199254740992");
        assert_eq!(Json::Num(1e15).render(), "1000000000000000");
        // ...and beyond it the float path renders the shortest decimal
        // that parses back to the identical f64 — never a truncated
        // `as i64` cast (which would saturate CellId-sized magnitudes to
        // i64::MAX = 9223372036854775807).
        let cell_sized = 18446744073709549568.0f64; // largest f64 < u64::MAX
        let text = Json::Num(cell_sized).render();
        assert_eq!(text, "18446744073709550000");
        assert_eq!(text.parse::<f64>().unwrap().to_bits(), cell_sized.to_bits());
        assert!(
            !Json::Num(1e300).render().contains('e'),
            "plain decimal, valid JSON"
        );
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "nul",
            "tru",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{a:1}",
            "{\"a\" 1}",
            "\"open",
            "\"\\q\"",
            "1e400",
            "--1",
            "1.2.3",
            "[1]]",
            "{} {}",
            "\u{1}",
            "[\"\u{1}\"]",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"\\ud800\\u0041\"",
            "+1",
            "01x",
            "inf",
            "NaN",
        ] {
            let got = Json::parse(bad);
            assert!(got.is_err(), "{bad:?} parsed as {got:?}");
        }
        // The depth cap turns pathological nesting into an error, not a
        // stack overflow.
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn parse_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Json::str("a\"b\\c/d\n\t\r\u{8}\u{c}")
        );
        assert_eq!(Json::parse(r#""\u0041\u00e9""#).unwrap(), Json::str("Aé"));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::str("\u{1F600}")
        );
    }

    #[test]
    fn parse_render_round_trip() {
        let v = Json::obj(vec![
            ("op", Json::str("run")),
            ("cells", Json::from(3usize)),
            ("grid", Json::Arr(vec![Json::Num(1.5), Json::Null])),
            (
                "overrides",
                Json::obj(vec![("bsld_th", Json::Num(2.0)), ("wq", Json::str("no"))]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // And the other direction: parse → render is textually stable.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn parse_keeps_duplicate_keys_and_get_returns_the_first() {
        let v = Json::parse("{\"a\":1,\"a\":2,\"b\":3}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Num(1.0)));
        assert_eq!(v.get("b"), Some(&Json::Num(3.0)));
        assert_eq!(v.get("c"), None);
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![
            ("s", Json::str("x")),
            ("n", Json::Num(2.5)),
            ("i", Json::Num(7.0)),
            ("b", Json::Bool(false)),
            ("a", Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("i").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_u64), None, "not integral");
        assert_eq!(Json::Num(-1.0).as_u64(), None, "negative");
        assert_eq!(Json::Num(1e300).as_u64(), None, "beyond 2^53");
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(Json::Null.get("s"), None);
    }

    #[test]
    fn rendered_numbers_round_trip_to_identical_bits() {
        let samples = [
            0.0,
            -0.0,
            0.1,
            1.5,
            1e15,
            9007199254740992.0,    // 2^53
            9007199254740994.0,    // 2^53 + 2 (first even step)
            1.8446744073709552e19, // ~u64::MAX
            u64::MAX as f64,
            i64::MIN as f64,
            f64::MAX,
            f64::MIN_POSITIVE,
            2.2250738585072014e-308,
            std::f64::consts::PI,
        ];
        for &x in &samples {
            let text = Json::Num(x).render();
            let back: f64 = text.parse().expect("rendered JSON number parses");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {text}");
        }
    }
}
