//! Per-job time series (Figure 6).

use bsld_model::JobOutcome;

/// Wait time per job in arrival order: `(arrival_secs, wait_secs)`.
///
/// Figure 6 of the paper plots exactly this series (zoomed) for SDSC-Blue
/// with and without frequency scaling.
pub fn wait_series(outcomes: &[JobOutcome]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = outcomes
        .iter()
        .map(|o| (o.arrival.as_secs(), o.wait()))
        .collect();
    v.sort_unstable();
    v
}

/// Machine-usage step series: `(time, busy_cpus)` at every instant the
/// occupancy changes, derived from completed outcomes. The series starts
/// at the first event and ends at 0 busy cpus.
pub fn utilization_series(outcomes: &[JobOutcome]) -> Vec<(u64, u32)> {
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        deltas.push((o.start.as_secs(), o.cpus as i64));
        deltas.push((o.finish.as_secs(), -(o.cpus as i64)));
    }
    deltas.sort_unstable();
    let mut out: Vec<(u64, u32)> = Vec::new();
    let mut level = 0i64;
    for (t, d) in deltas {
        level += d;
        debug_assert!(level >= 0);
        match out.last_mut() {
            Some(last) if last.0 == t => last.1 = level as u32,
            _ => out.push((t, level as u32)),
        }
    }
    out
}

/// Wait-queue depth step series: `(time, queued_jobs)` at every arrival and
/// start, derived from completed outcomes (a job is queued from its arrival
/// until its start).
pub fn queue_depth_series(outcomes: &[JobOutcome]) -> Vec<(u64, u32)> {
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        deltas.push((o.arrival.as_secs(), 1));
        deltas.push((o.start.as_secs(), -1));
    }
    deltas.sort_unstable();
    // Net out all deltas within one instant before applying, so a job that
    // arrives and starts in the same event batch never shows up as
    // transient negative depth.
    let mut out: Vec<(u64, u32)> = Vec::new();
    let mut level = 0i64;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        let mut net = 0i64;
        while i < deltas.len() && deltas[i].0 == t {
            net += deltas[i].1;
            i += 1;
        }
        level += net;
        debug_assert!(level >= 0, "queue depth negative at t={t}");
        out.push((t, level as u32));
    }
    out
}

/// Writes a cluster power step series — `(time_s, power)` pairs as
/// produced by `bsld-powercap`'s ledger — as CSV. Each row holds from its
/// instant until the next row's.
pub fn write_power_series<W: std::io::Write>(
    w: &mut W,
    series: &[(u64, f64)],
) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&(t, p)| vec![t.to_string(), format!("{p:.6}")])
        .collect();
    crate::csvout::write_csv(w, &["time_s", "power"], &rows)
}

/// Resamples a step series onto a regular grid of `step_s` seconds
/// (time-weighted mean per bucket) — the practical form for plotting long
/// runs whose event-resolution series has millions of points. Time before
/// the series' first instant counts as zero power.
pub fn resample_power_series(series: &[(u64, f64)], end_s: u64, step_s: u64) -> Vec<(u64, f64)> {
    assert!(step_s > 0, "resample step must be positive");
    if series.is_empty() || end_s == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity((end_s / step_s + 1) as usize);
    let mut j = 0usize;
    let mut bucket_start = 0u64;
    while bucket_start < end_s {
        let bucket_end = (bucket_start + step_s).min(end_s);
        let mut acc = 0.0f64;
        let mut t = bucket_start;
        while t < bucket_end {
            let (value, seg_end) = if t < series[0].0 {
                (0.0, series[0].0)
            } else {
                while j + 1 < series.len() && series[j + 1].0 <= t {
                    j += 1;
                }
                let seg_end = if j + 1 < series.len() {
                    series[j + 1].0
                } else {
                    u64::MAX
                };
                (series[j].1, seg_end)
            };
            let upto = seg_end.min(bucket_end);
            acc += value * (upto - t) as f64;
            t = upto;
        }
        out.push((bucket_start, acc / (bucket_end - bucket_start) as f64));
        bucket_start = bucket_end;
    }
    out
}

/// Centred moving average with the given window (odd windows recommended).
/// Returns one smoothed value per input value.
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    if values.is_empty() || window <= 1 {
        return values.to_vec();
    }
    let half = window / 2;
    let mut out = Vec::with_capacity(values.len());
    for i in 0..values.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(values.len());
        let sum: f64 = values[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_model::{GearId, JobId, Phase};
    use bsld_simkernel::Time;

    fn outcome(arrival: u64, start: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(arrival as u32),
            cpus: 1,
            arrival: Time(arrival),
            start: Time(start),
            finish: Time(start + 10),
            gear: GearId(0),
            phases: vec![Phase {
                gear: GearId(0),
                seconds: 10,
            }],
            nominal_runtime: 10,
            requested: 10,
        }
    }

    #[test]
    fn series_sorted_by_arrival() {
        let outcomes = vec![outcome(30, 35), outcome(10, 10), outcome(20, 50)];
        let s = wait_series(&outcomes);
        assert_eq!(s, vec![(10, 0), (20, 30), (30, 5)]);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = vec![0.0, 10.0, 0.0, 10.0, 0.0];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm.len(), xs.len());
        assert!((sm[2] - 20.0 / 3.0).abs() < 1e-12);
        // Edges use truncated windows.
        assert!((sm[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn window_one_is_identity() {
        let xs = vec![1.0, 2.0, 3.0];
        assert_eq!(moving_average(&xs, 1), xs);
        assert_eq!(moving_average(&[], 5), Vec::<f64>::new());
    }

    #[test]
    fn resample_counts_pre_series_time_as_zero() {
        let s = vec![(100u64, 5.0f64)];
        let r = resample_power_series(&s, 200, 100);
        assert_eq!(r.len(), 2);
        assert!(
            r[0].1.abs() < 1e-12,
            "bucket before the series starts must be zero"
        );
        assert!((r[1].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn resample_takes_time_weighted_means() {
        let s = vec![(0u64, 2.0f64), (50, 4.0)];
        let r = resample_power_series(&s, 100, 100);
        assert_eq!(r.len(), 1);
        assert!((r[0].1 - 3.0).abs() < 1e-12);
        // Finer grid reproduces the steps exactly.
        let fine = resample_power_series(&s, 100, 50);
        assert!((fine[0].1 - 2.0).abs() < 1e-12);
        assert!((fine[1].1 - 4.0).abs() < 1e-12);
    }

    fn outcome_span(id: u32, cpus: u32, arrival: u64, start: u64, finish: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            cpus,
            arrival: Time(arrival),
            start: Time(start),
            finish: Time(finish),
            gear: GearId(5),
            phases: vec![Phase {
                gear: GearId(5),
                seconds: finish - start,
            }],
            nominal_runtime: finish - start,
            requested: finish - start,
        }
    }

    #[test]
    fn utilization_series_steps() {
        let outcomes = vec![
            outcome_span(0, 4, 0, 0, 100),
            outcome_span(1, 2, 0, 50, 150),
        ];
        let s = utilization_series(&outcomes);
        assert_eq!(s, vec![(0, 4), (50, 6), (100, 2), (150, 0)]);
    }

    #[test]
    fn utilization_series_ends_at_zero() {
        let outcomes: Vec<JobOutcome> = (0..20)
            .map(|i| outcome_span(i, 1 + i % 3, 0, (i as u64) * 5, (i as u64) * 5 + 40))
            .collect();
        let s = utilization_series(&outcomes);
        assert_eq!(s.last().unwrap().1, 0);
    }

    #[test]
    fn queue_depth_series_steps() {
        // Job 0 starts immediately; jobs 1 and 2 queue until 100 and 200.
        let outcomes = vec![
            outcome_span(0, 4, 0, 0, 100),
            outcome_span(1, 4, 10, 100, 200),
            outcome_span(2, 4, 20, 200, 300),
        ];
        let s = queue_depth_series(&outcomes);
        assert_eq!(s, vec![(0, 0), (10, 1), (20, 2), (100, 1), (200, 0)]);
    }

    #[test]
    fn queue_depth_never_negative_on_same_instant_churn() {
        // Arrival and start at the same instant: the start's -1 sorts
        // first only if some other job arrived earlier; a lone same-instant
        // (arrive, start) pair nets to zero.
        let outcomes = vec![outcome_span(0, 1, 5, 5, 10), outcome_span(1, 1, 5, 5, 10)];
        let s = queue_depth_series(&outcomes);
        assert_eq!(s, vec![(5, 0)]);
    }
}
