//! Detailed per-run metrics: distribution tails and per-class breakdowns.
//!
//! [`RunMetrics`](crate::RunMetrics) carries the aggregate numbers the
//! paper reports; this module computes what a production operator would
//! additionally want:
//!
//! * wait-time and BSLD percentiles (p50/p90/p99) — averages hide the tail
//!   the users actually complain about;
//! * per-size-class breakdowns (serial / small / medium / large), since
//!   frequency scaling and enlarged machines affect narrow and wide jobs
//!   differently;
//! * active energy split by gear, making the policy's gear usage visible.

use bsld_model::{JobOutcome, BSLD_SHORT_JOB_THRESHOLD_SECS};
use bsld_power::PowerModel;
use bsld_simkernel::stats::quantile_sorted;

/// A percentile summary of one distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    fn of(mut values: Vec<f64>) -> Percentiles {
        values.sort_by(|a, b| a.total_cmp(b));
        Percentiles {
            p50: quantile_sorted(&values, 0.50).unwrap_or(0.0),
            p90: quantile_sorted(&values, 0.90).unwrap_or(0.0),
            p99: quantile_sorted(&values, 0.99).unwrap_or(0.0),
            max: values.last().copied().unwrap_or(0.0),
        }
    }
}

/// Job size classes used by the breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Exactly one processor.
    Serial,
    /// 2–32 processors.
    Small,
    /// 33–512 processors.
    Medium,
    /// More than 512 processors.
    Large,
}

impl SizeClass {
    /// Classifies a processor count.
    pub fn of(cpus: u32) -> SizeClass {
        match cpus {
            1 => SizeClass::Serial,
            2..=32 => SizeClass::Small,
            33..=512 => SizeClass::Medium,
            _ => SizeClass::Large,
        }
    }

    /// All classes in display order.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Serial,
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
    ];

    /// Human label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::Serial => "serial",
            SizeClass::Small => "small(2-32)",
            SizeClass::Medium => "medium(33-512)",
            SizeClass::Large => "large(>512)",
        }
    }
}

/// Aggregates of one size class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMetrics {
    /// Jobs in the class.
    pub jobs: usize,
    /// Average BSLD.
    pub avg_bsld: f64,
    /// Average wait, seconds.
    pub avg_wait: f64,
    /// Jobs run at a reduced gear.
    pub reduced: usize,
}

/// The detailed report.
#[derive(Debug, Clone)]
pub struct RunDetails {
    /// Wait-time percentiles, seconds.
    pub wait: Percentiles,
    /// BSLD percentiles.
    pub bsld: Percentiles,
    /// Per-size-class metrics, in [`SizeClass::ALL`] order (empty classes
    /// have `jobs == 0`).
    pub by_class: Vec<(SizeClass, ClassMetrics)>,
    /// Active energy per gear index (normalised units), summing to the
    /// run's computational energy.
    pub energy_by_gear: Vec<f64>,
}

impl RunDetails {
    /// Computes the detailed report from raw outcomes.
    pub fn compute(outcomes: &[JobOutcome], pm: &dyn PowerModel) -> RunDetails {
        let th = BSLD_SHORT_JOB_THRESHOLD_SECS;
        let gear_count = pm.gears().len();
        let top = pm.gears().top();

        let waits: Vec<f64> = outcomes.iter().map(|o| o.wait() as f64).collect();
        let bslds: Vec<f64> = outcomes.iter().map(|o| o.bsld(th)).collect();

        let mut by_class = Vec::with_capacity(4);
        for class in SizeClass::ALL {
            let members: Vec<&JobOutcome> = outcomes
                .iter()
                .filter(|o| SizeClass::of(o.cpus) == class)
                .collect();
            let jobs = members.len();
            let (mut bsld_sum, mut wait_sum, mut reduced) = (0.0, 0.0, 0usize);
            for o in &members {
                bsld_sum += o.bsld(th);
                wait_sum += o.wait() as f64;
                if o.was_reduced(top) {
                    reduced += 1;
                }
            }
            by_class.push((
                class,
                ClassMetrics {
                    jobs,
                    avg_bsld: if jobs > 0 {
                        bsld_sum / jobs as f64
                    } else {
                        0.0
                    },
                    avg_wait: if jobs > 0 {
                        wait_sum / jobs as f64
                    } else {
                        0.0
                    },
                    reduced,
                },
            ));
        }

        let mut energy_by_gear = vec![0.0; gear_count];
        for o in outcomes {
            for p in &o.phases {
                let idx = p.gear.index().min(gear_count - 1);
                energy_by_gear[idx] += o.cpus as f64 * p.seconds as f64 * pm.p_active(p.gear);
            }
        }

        RunDetails {
            wait: Percentiles::of(waits),
            bsld: Percentiles::of(bslds),
            by_class,
            energy_by_gear,
        }
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wait  (s): p50 {:>10.0}  p90 {:>10.0}  p99 {:>10.0}  max {:>10.0}",
            self.wait.p50, self.wait.p90, self.wait.p99, self.wait.max
        );
        let _ = writeln!(
            out,
            "BSLD     : p50 {:>10.2}  p90 {:>10.2}  p99 {:>10.2}  max {:>10.2}",
            self.bsld.p50, self.bsld.p90, self.bsld.p99, self.bsld.max
        );
        let mut t =
            crate::TextTable::new(vec!["class", "jobs", "avg BSLD", "avg wait(s)", "reduced"]);
        for (class, m) in &self.by_class {
            if m.jobs == 0 {
                continue;
            }
            t.row(vec![
                class.label().to_string(),
                m.jobs.to_string(),
                format!("{:.2}", m.avg_bsld),
                format!("{:.0}", m.avg_wait),
                m.reduced.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let total: f64 = self.energy_by_gear.iter().sum();
        if total > 0.0 {
            let _ = write!(out, "active energy by gear:");
            for (i, e) in self.energy_by_gear.iter().enumerate() {
                let _ = write!(out, "  g{i} {:.1}%", e / total * 100.0);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_model::{GearId, JobId, Phase};
    use bsld_simkernel::Time;

    fn outcome(id: u32, cpus: u32, wait: u64, runtime: u64, gear: u8) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            cpus,
            arrival: Time(0),
            start: Time(wait),
            finish: Time(wait + runtime),
            gear: GearId(gear),
            phases: vec![Phase {
                gear: GearId(gear),
                seconds: runtime,
            }],
            nominal_runtime: runtime,
            requested: runtime,
        }
    }

    fn pm() -> bsld_power::PaperDvfs {
        bsld_power::PaperDvfs::paper(GearSet::paper())
    }

    #[test]
    fn size_classes() {
        assert_eq!(SizeClass::of(1), SizeClass::Serial);
        assert_eq!(SizeClass::of(2), SizeClass::Small);
        assert_eq!(SizeClass::of(32), SizeClass::Small);
        assert_eq!(SizeClass::of(33), SizeClass::Medium);
        assert_eq!(SizeClass::of(512), SizeClass::Medium);
        assert_eq!(SizeClass::of(513), SizeClass::Large);
    }

    #[test]
    fn percentiles_and_classes() {
        let outcomes: Vec<JobOutcome> = (0..100)
            .map(|i| outcome(i, if i % 2 == 0 { 1 } else { 64 }, i as u64 * 10, 1000, 5))
            .collect();
        let d = RunDetails::compute(&outcomes, &pm());
        assert!((d.wait.p50 - 495.0).abs() < 10.0, "p50 = {}", d.wait.p50);
        assert_eq!(d.wait.max, 990.0);
        let serial = d
            .by_class
            .iter()
            .find(|(c, _)| *c == SizeClass::Serial)
            .unwrap()
            .1;
        let medium = d
            .by_class
            .iter()
            .find(|(c, _)| *c == SizeClass::Medium)
            .unwrap()
            .1;
        assert_eq!(serial.jobs, 50);
        assert_eq!(medium.jobs, 50);
        assert_eq!(serial.reduced, 0);
    }

    #[test]
    fn energy_by_gear_sums_to_total() {
        let pm = pm();
        let outcomes = vec![outcome(0, 4, 0, 100, 0), outcome(1, 2, 0, 200, 5)];
        let d = RunDetails::compute(&outcomes, &pm);
        let total: f64 = d.energy_by_gear.iter().sum();
        let expected = 4.0 * 100.0 * pm.p_active(GearId(0)) + 2.0 * 200.0 * pm.p_active(GearId(5));
        assert!((total - expected).abs() < 1e-9);
        assert!(d.energy_by_gear[1] == 0.0 && d.energy_by_gear[3] == 0.0);
    }

    #[test]
    fn empty_run_renders() {
        let d = RunDetails::compute(&[], &pm());
        assert_eq!(d.wait.max, 0.0);
        let text = d.render();
        assert!(text.contains("p50"));
    }

    #[test]
    fn render_includes_gear_shares() {
        let outcomes = vec![outcome(0, 4, 0, 100, 0), outcome(1, 2, 0, 200, 5)];
        let d = RunDetails::compute(&outcomes, &pm());
        let text = d.render();
        assert!(text.contains("g0"), "{text}");
        assert!(text.contains("g5"), "{text}");
    }
}
