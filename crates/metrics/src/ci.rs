//! Mean ± confidence-interval presentation.
//!
//! Replicated campaigns summarise every sweep cell as a mean with a 95 %
//! confidence half-width (computed upstream, e.g. by
//! `bsld_simkernel::stats::OnlineStats::ci95_half`). [`MeanCi`] carries the
//! pair plus the replication count and renders it two ways: a compact
//! `mean ± half` table cell, and a lossless two-column CSV form whose `{}`
//! float formatting (shortest round-trip) parses back to the exact same
//! bits — the property the campaign resume machinery relies on.

use std::fmt;

/// A sample mean with its 95 % confidence half-width over `n` replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean across the replications.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (`mean ± half`); 0 when
    /// fewer than two replications.
    pub half: f64,
    /// Number of replications aggregated.
    pub n: u64,
}

impl MeanCi {
    /// Bundles a mean, half-width and replication count.
    pub fn new(mean: f64, half: f64, n: u64) -> MeanCi {
        MeanCi { mean, half, n }
    }

    /// A single-observation "interval": the value itself, no width.
    pub fn point(value: f64) -> MeanCi {
        MeanCi {
            mean: value,
            half: 0.0,
            n: 1,
        }
    }

    /// Renders a table cell: `mean ± half` with `digits` fractional
    /// digits, or just the mean when only one replication exists (a ± 0
    /// suffix would suggest a measured zero spread rather than none).
    pub fn table_cell(&self, digits: usize) -> String {
        if self.n < 2 {
            format!("{:.digits$}", self.mean)
        } else {
            format!("{:.digits$} ± {:.digits$}", self.mean, self.half)
        }
    }

    /// As [`MeanCi::table_cell`] but in scientific notation (energy
    /// columns).
    pub fn table_cell_sci(&self, digits: usize) -> String {
        if self.n < 2 {
            format!("{:.digits$e}", self.mean)
        } else {
            format!("{:.digits$e} ± {:.digits$e}", self.mean, self.half)
        }
    }

    /// The lossless CSV pair `(mean, ci95)`: `{}` formatting emits the
    /// shortest string that parses back to the identical `f64`.
    pub fn csv_fields(&self) -> (String, String) {
        (self.mean.to_string(), self.half.to_string())
    }
}

impl fmt::Display for MeanCi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = f.precision().unwrap_or(3);
        f.write_str(&self.table_cell(digits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_cell_formats_interval() {
        let ci = MeanCi::new(4.6637, 0.1291, 5);
        assert_eq!(ci.table_cell(2), "4.66 ± 0.13");
        assert_eq!(format!("{ci:.2}"), "4.66 ± 0.13");
        assert_eq!(ci.table_cell_sci(2), "4.66e0 ± 1.29e-1");
    }

    #[test]
    fn single_replication_omits_interval() {
        let ci = MeanCi::point(7.25);
        assert_eq!(ci.table_cell(2), "7.25");
        assert_eq!(ci.table_cell_sci(1), "7.2e0");
    }

    #[test]
    fn csv_fields_round_trip_bit_exact() {
        let mean = 1.0 / 3.0;
        let half = 0.1 + 0.2; // famously not 0.3
        let ci = MeanCi::new(mean, half, 3);
        let (m, h) = ci.csv_fields();
        assert_eq!(m.parse::<f64>().unwrap().to_bits(), mean.to_bits());
        assert_eq!(h.parse::<f64>().unwrap().to_bits(), half.to_bits());
    }
}
