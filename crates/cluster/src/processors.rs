//! Processor pool with First Fit selection.
//!
//! The paper uses *First Fit* as its resource selection policy: a job is
//! mapped onto the lowest-indexed free processors. The pool tracks per-
//! processor occupancy in a bitset (one bit per processor, set = free) and
//! hands out allocations as sorted, disjoint index ranges ([`ProcSet`]),
//! which stay compact because First Fit naturally produces long runs.

/// A set of processor indices, stored as sorted, disjoint, non-adjacent
/// `[start, start+len)` ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcSet {
    ranges: Vec<(u32, u32)>, // (start, len), sorted by start
}

impl ProcSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ProcSet { ranges: Vec::new() }
    }

    /// Creates a set holding the single range `[start, start+len)`.
    pub fn from_range(start: u32, len: u32) -> Self {
        if len == 0 {
            return ProcSet::new();
        }
        ProcSet {
            ranges: vec![(start, len)],
        }
    }

    /// Number of processors in the set.
    pub fn count(&self) -> u32 {
        self.ranges.iter().map(|&(_, l)| l).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Appends a processor index; indices must be pushed in increasing
    /// order (the pool's First Fit scan guarantees this).
    fn push(&mut self, idx: u32) {
        if let Some(last) = self.ranges.last_mut() {
            debug_assert!(
                idx >= last.0 + last.1,
                "ProcSet::push requires increasing indices"
            );
            if idx == last.0 + last.1 {
                last.1 += 1;
                return;
            }
        }
        self.ranges.push((idx, 1));
    }

    /// Iterates the contained indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges.iter().flat_map(|&(s, l)| s..s + l)
    }

    /// The ranges `(start, len)` making up the set.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Whether the set contains `idx`.
    pub fn contains(&self, idx: u32) -> bool {
        self.ranges
            .binary_search_by(|&(s, l)| {
                if idx < s {
                    std::cmp::Ordering::Greater
                } else if idx >= s + l {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the two sets share any processor.
    pub fn intersects(&self, other: &ProcSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, l1) = self.ranges[i];
            let (s2, l2) = other.ranges[j];
            if s1 + l1 <= s2 {
                i += 1;
            } else if s2 + l2 <= s1 {
                j += 1;
            } else {
                return true;
            }
        }
        false
    }

    /// The smallest index in the set, if any.
    pub fn first(&self) -> Option<u32> {
        self.ranges.first().map(|&(s, _)| s)
    }
}

/// How processors are picked for a job once it is cleared to start.
///
/// The *resource selection policy* of the paper's simulator (Section 3.1):
/// job scheduling decides **when** a job runs, resource selection decides
/// **which processors** it gets. The paper uses First Fit; the others are
/// provided for the selection-policy ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Lowest-indexed free processors (the paper's policy). Never fails
    /// when enough processors are free.
    #[default]
    FirstFit,
    /// The first (lowest-indexed) *contiguous run* of free processors.
    /// Fails under fragmentation even when enough processors are free —
    /// models machines that require contiguous partitions.
    ContiguousFirstFit,
    /// Highest-indexed free processors. Never fails when enough are free;
    /// a contrast policy that concentrates fragmentation at the low end.
    LastFit,
}

/// The machine's processors, with bitset occupancy and First Fit selection.
#[derive(Debug, Clone)]
pub struct ProcessorPool {
    words: Vec<u64>, // bit set ⇒ processor free
    total: u32,
    free: u32,
}

impl ProcessorPool {
    /// Creates a pool of `total` processors, all free.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a cluster needs at least one processor");
        let nwords = (total as usize).div_ceil(64);
        let mut words = vec![u64::MAX; nwords];
        // Clear the bits beyond `total` in the last word.
        let tail = total as usize % 64;
        if tail != 0 {
            words[nwords - 1] = (1u64 << tail) - 1;
        }
        ProcessorPool {
            words,
            total,
            free: total,
        }
    }

    /// Total processor count.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently free processor count.
    #[inline]
    pub fn free_count(&self) -> u32 {
        self.free
    }

    /// Currently busy processor count.
    #[inline]
    pub fn busy_count(&self) -> u32 {
        self.total - self.free
    }

    /// Whether processor `idx` is free.
    pub fn is_free(&self, idx: u32) -> bool {
        debug_assert!(idx < self.total);
        self.words[idx as usize / 64] & (1 << (idx % 64)) != 0
    }

    /// Allocates the `n` lowest-indexed free processors (First Fit),
    /// or returns `None` (changing nothing) if fewer than `n` are free.
    pub fn allocate_first_fit(&mut self, n: u32) -> Option<ProcSet> {
        if n > self.free {
            return None;
        }
        if n == 0 {
            return Some(ProcSet::new());
        }
        let mut set = ProcSet::new();
        let mut remaining = n;
        for (w, word) in self.words.iter_mut().enumerate() {
            while *word != 0 && remaining > 0 {
                let bit = word.trailing_zeros();
                let idx = (w * 64) as u32 + bit;
                *word &= !(1u64 << bit);
                set.push(idx);
                remaining -= 1;
            }
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "free count said {} were available", n);
        self.free -= n;
        Some(set)
    }

    /// Allocates `n` processors under the given selection policy, or
    /// returns `None` (changing nothing) if the policy cannot serve the
    /// request. Only [`SelectionPolicy::ContiguousFirstFit`] can fail while
    /// `n <= free_count()`.
    pub fn allocate(&mut self, n: u32, policy: SelectionPolicy) -> Option<ProcSet> {
        match policy {
            SelectionPolicy::FirstFit => self.allocate_first_fit(n),
            SelectionPolicy::ContiguousFirstFit => self.allocate_contiguous(n),
            SelectionPolicy::LastFit => self.allocate_last_fit(n),
        }
    }

    /// Allocates the lowest-indexed run of `n` *consecutive* free
    /// processors, or `None` if no such run exists.
    pub fn allocate_contiguous(&mut self, n: u32) -> Option<ProcSet> {
        if n > self.free {
            return None;
        }
        if n == 0 {
            return Some(ProcSet::new());
        }
        // Scan maximal runs of set bits across word boundaries.
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for idx in 0..self.total {
            if self.words[idx as usize / 64] & (1 << (idx % 64)) != 0 {
                if run_len == 0 {
                    run_start = idx;
                }
                run_len += 1;
                if run_len == n {
                    for i in run_start..run_start + n {
                        self.words[i as usize / 64] &= !(1u64 << (i % 64));
                    }
                    self.free -= n;
                    return Some(ProcSet::from_range(run_start, n));
                }
            } else {
                run_len = 0;
            }
        }
        None
    }

    /// Allocates the `n` highest-indexed free processors.
    pub fn allocate_last_fit(&mut self, n: u32) -> Option<ProcSet> {
        if n > self.free {
            return None;
        }
        if n == 0 {
            return Some(ProcSet::new());
        }
        let mut picked: Vec<u32> = Vec::with_capacity(n as usize);
        let mut remaining = n;
        'outer: for w in (0..self.words.len()).rev() {
            while self.words[w] != 0 {
                let bit = 63 - self.words[w].leading_zeros();
                let idx = (w * 64) as u32 + bit;
                self.words[w] &= !(1u64 << bit);
                picked.push(idx);
                remaining -= 1;
                if remaining == 0 {
                    break 'outer;
                }
            }
        }
        debug_assert_eq!(remaining, 0);
        self.free -= n;
        picked.reverse(); // ProcSet::push requires increasing indices
        let mut set = ProcSet::new();
        for idx in picked {
            set.push(idx);
        }
        Some(set)
    }

    /// Whether `policy` could serve a request for `n` processors *right
    /// now*, without changing the pool.
    pub fn can_allocate(&self, n: u32, policy: SelectionPolicy) -> bool {
        if n > self.free {
            return false;
        }
        match policy {
            SelectionPolicy::FirstFit | SelectionPolicy::LastFit => true,
            SelectionPolicy::ContiguousFirstFit => {
                if n == 0 {
                    return true;
                }
                let mut run = 0u32;
                for idx in 0..self.total {
                    if self.words[idx as usize / 64] & (1 << (idx % 64)) != 0 {
                        run += 1;
                        if run == n {
                            return true;
                        }
                    } else {
                        run = 0;
                    }
                }
                false
            }
        }
    }

    /// Releases a previously allocated set back to the pool.
    ///
    /// # Panics
    /// Panics (in debug builds) if any processor in `set` was already free —
    /// that would mean double-release, a scheduler bug.
    pub fn release(&mut self, set: &ProcSet) {
        for &(start, len) in set.ranges() {
            for idx in start..start + len {
                let (w, b) = (idx as usize / 64, idx % 64);
                debug_assert_eq!(
                    self.words[w] & (1 << b),
                    0,
                    "double release of processor {idx}"
                );
                self.words[w] |= 1 << b;
            }
        }
        self.free += set.count();
        debug_assert!(self.free <= self.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procset_ranges_compact() {
        let mut s = ProcSet::new();
        for i in [0u32, 1, 2, 5, 6, 9] {
            s.push(i);
        }
        assert_eq!(s.ranges(), &[(0, 3), (5, 2), (9, 1)]);
        assert_eq!(s.count(), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 5, 6, 9]);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn procset_contains() {
        let s = ProcSet {
            ranges: vec![(2, 3), (10, 1)],
        };
        for i in [2, 3, 4, 10] {
            assert!(s.contains(i), "{i}");
        }
        for i in [0, 1, 5, 9, 11] {
            assert!(!s.contains(i), "{i}");
        }
    }

    #[test]
    fn procset_intersects() {
        let a = ProcSet {
            ranges: vec![(0, 4)],
        };
        let b = ProcSet {
            ranges: vec![(4, 4)],
        };
        let c = ProcSet {
            ranges: vec![(3, 1)],
        };
        assert!(!a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!b.intersects(&c));
        assert!(!a.intersects(&ProcSet::new()));
    }

    #[test]
    fn pool_first_fit_takes_lowest() {
        let mut p = ProcessorPool::new(10);
        let a = p.allocate_first_fit(4).unwrap();
        assert_eq!(a.ranges(), &[(0, 4)]);
        assert_eq!(p.free_count(), 6);
        let b = p.allocate_first_fit(3).unwrap();
        assert_eq!(b.ranges(), &[(4, 3)]);
        // Free the first block; next allocation reuses the hole first.
        p.release(&a);
        let c = p.allocate_first_fit(6).unwrap();
        assert_eq!(c.ranges(), &[(0, 4), (7, 2)]);
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn pool_rejects_oversize_without_change() {
        let mut p = ProcessorPool::new(8);
        let _a = p.allocate_first_fit(5).unwrap();
        assert!(p.allocate_first_fit(4).is_none());
        assert_eq!(p.free_count(), 3);
    }

    #[test]
    fn pool_exact_word_boundaries() {
        let mut p = ProcessorPool::new(64);
        let a = p.allocate_first_fit(64).unwrap();
        assert_eq!(a.count(), 64);
        assert_eq!(p.free_count(), 0);
        p.release(&a);
        assert_eq!(p.free_count(), 64);

        let mut p = ProcessorPool::new(65);
        let a = p.allocate_first_fit(65).unwrap();
        assert_eq!(a.ranges(), &[(0, 65)]);
        p.release(&a);
        assert_eq!(p.free_count(), 65);
    }

    #[test]
    fn pool_large_cluster() {
        // The paper's largest system: LLNL Atlas, 9216 processors.
        let mut p = ProcessorPool::new(9216);
        assert_eq!(p.free_count(), 9216);
        let a = p.allocate_first_fit(9216).unwrap();
        assert_eq!(a.count(), 9216);
        assert!(p.allocate_first_fit(1).is_none());
        p.release(&a);
        assert_eq!(p.free_count(), 9216);
    }

    #[test]
    fn allocate_zero_is_empty() {
        let mut p = ProcessorPool::new(4);
        let a = p.allocate_first_fit(0).unwrap();
        assert!(a.is_empty());
        assert_eq!(p.free_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn pool_rejects_zero_total() {
        let _ = ProcessorPool::new(0);
    }

    #[test]
    fn contiguous_allocation_needs_a_run() {
        let mut p = ProcessorPool::new(16);
        let a = p.allocate_first_fit(4).unwrap(); // [0,4)
        let _b = p.allocate_first_fit(4).unwrap(); // [4,8)
        p.release(&a); // free: [0,4) and [8,16)
        assert!(p.can_allocate(8, SelectionPolicy::ContiguousFirstFit));
        let c = p.allocate_contiguous(8).unwrap();
        assert_eq!(
            c.ranges(),
            &[(8, 8)],
            "first contiguous run of 8 starts at 8"
        );
        // 12 free processors total but no contiguous run of 5 left.
        p.release(&c);
        let _d = p.allocate_first_fit(2).unwrap(); // occupies [0,2) — wait, [0,4) free, takes 0,1
                                                   // free now: [2,4) and [8,16): runs of 2 and 8.
        assert!(p.can_allocate(8, SelectionPolicy::ContiguousFirstFit));
        assert!(!p.can_allocate(9, SelectionPolicy::ContiguousFirstFit));
        assert!(p.allocate_contiguous(9).is_none());
        assert!(
            p.can_allocate(9, SelectionPolicy::FirstFit),
            "non-contiguous still fits"
        );
    }

    #[test]
    fn contiguous_run_across_word_boundary() {
        let mut p = ProcessorPool::new(130);
        let a = p.allocate_first_fit(60).unwrap(); // [0,60)
        let run = p.allocate_contiguous(70).unwrap(); // must span words 0..3
        assert_eq!(run.ranges(), &[(60, 70)]);
        p.release(&a);
        p.release(&run);
        assert_eq!(p.free_count(), 130);
    }

    #[test]
    fn last_fit_takes_highest() {
        let mut p = ProcessorPool::new(70);
        let a = p.allocate_last_fit(3).unwrap();
        assert_eq!(a.ranges(), &[(67, 3)]);
        let b = p.allocate_last_fit(66).unwrap();
        assert_eq!(b.ranges(), &[(1, 66)]);
        assert_eq!(p.free_count(), 1);
        assert!(p.is_free(0));
        p.release(&a);
        p.release(&b);
        assert_eq!(p.free_count(), 70);
    }

    #[test]
    fn allocate_dispatches_policy() {
        let mut p = ProcessorPool::new(8);
        let ff = p.allocate(2, SelectionPolicy::FirstFit).unwrap();
        assert_eq!(ff.ranges(), &[(0, 2)]);
        let lf = p.allocate(2, SelectionPolicy::LastFit).unwrap();
        assert_eq!(lf.ranges(), &[(6, 2)]);
        let cf = p.allocate(4, SelectionPolicy::ContiguousFirstFit).unwrap();
        assert_eq!(cf.ranges(), &[(2, 4)]);
        assert_eq!(p.free_count(), 0);
    }

    #[test]
    fn zero_requests_always_succeed() {
        let mut p = ProcessorPool::new(4);
        for policy in [
            SelectionPolicy::FirstFit,
            SelectionPolicy::ContiguousFirstFit,
            SelectionPolicy::LastFit,
        ] {
            assert!(p.allocate(0, policy).unwrap().is_empty());
            assert!(p.can_allocate(0, policy));
        }
    }

    #[test]
    fn interleaved_alloc_release_is_consistent() {
        let mut p = ProcessorPool::new(100);
        let mut held: Vec<ProcSet> = Vec::new();
        // Deterministic pseudo-random walk.
        let mut state = 0x12345u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(3) && !held.is_empty() {
                let idx = (state / 3) as usize % held.len();
                let s = held.swap_remove(idx);
                p.release(&s);
            } else {
                let n = (state % 17) as u32;
                if let Some(s) = p.allocate_first_fit(n) {
                    // No overlap with anything currently held.
                    for h in &held {
                        assert!(!h.intersects(&s));
                    }
                    held.push(s);
                }
            }
            let held_total: u32 = held.iter().map(|s| s.count()).sum();
            assert_eq!(p.free_count() + held_total, 100);
        }
    }
}
