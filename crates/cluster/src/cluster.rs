//! Named machines and the system-enlargement study.

use crate::gears::GearSet;
use crate::processors::ProcessorPool;

/// A DVFS-enabled cluster: a name, a processor count and a gear set.
///
/// `Cluster` is a *description*; the scheduler instantiates a
/// [`ProcessorPool`] from it per simulation run.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Human-readable machine name (e.g. `"CTC"`).
    pub name: String,
    /// Number of processors.
    pub cpus: u32,
    /// The DVFS gear set shared by all processors.
    pub gears: GearSet,
}

impl Cluster {
    /// Creates a cluster description.
    pub fn new(name: impl Into<String>, cpus: u32, gears: GearSet) -> Self {
        assert!(cpus > 0, "a cluster needs at least one processor");
        Cluster {
            name: name.into(),
            cpus,
            gears,
        }
    }

    /// The same machine enlarged by `percent` % more processors (rounded to
    /// the nearest processor), as in the paper's Section 5.2 study
    /// (`percent` ∈ {0, 10, 20, 50, 75, 100, 125}).
    pub fn enlarged(&self, percent: u32) -> Cluster {
        let cpus = ((self.cpus as u64 * (100 + percent as u64) + 50) / 100) as u32;
        Cluster {
            name: format!("{}+{}%", self.name, percent),
            cpus,
            gears: self.gears.clone(),
        }
    }

    /// Instantiates an all-free processor pool of this cluster's size.
    pub fn pool(&self) -> ProcessorPool {
        ProcessorPool::new(self.cpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enlargement_rounds_to_nearest() {
        let c = Cluster::new("CTC", 430, GearSet::paper());
        assert_eq!(c.enlarged(0).cpus, 430);
        assert_eq!(c.enlarged(10).cpus, 473);
        assert_eq!(c.enlarged(20).cpus, 516);
        assert_eq!(c.enlarged(50).cpus, 645);
        assert_eq!(c.enlarged(125).cpus, 968); // 967.5 rounds up
        assert_eq!(c.enlarged(10).name, "CTC+10%");
    }

    #[test]
    fn pool_has_cluster_size() {
        let c = Cluster::new("SDSC", 128, GearSet::paper());
        assert_eq!(c.pool().total(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_empty_cluster() {
        let _ = Cluster::new("x", 0, GearSet::paper());
    }
}
