//! DVFS gear sets.
//!
//! A *gear* is a frequency/voltage pair the processors can run at. The paper
//! uses the six-gear set of Table 2 (0.8 GHz @ 1.0 V … 2.3 GHz @ 1.5 V).
//! Gears are ordered by frequency; [`GearId`] indices follow that order with
//! 0 = lowest.

use bsld_model::GearId;

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gear {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// Errors rejected by [`GearSet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GearSetError {
    /// The gear list was empty.
    Empty,
    /// Frequencies were not strictly increasing.
    FrequencyNotIncreasing,
    /// Voltages were not non-decreasing.
    VoltageDecreasing,
    /// A frequency or voltage was not strictly positive / finite.
    NonPositive,
}

impl std::fmt::Display for GearSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GearSetError::Empty => write!(f, "gear set must not be empty"),
            GearSetError::FrequencyNotIncreasing => {
                write!(f, "gear frequencies must be strictly increasing")
            }
            GearSetError::VoltageDecreasing => write!(f, "gear voltages must be non-decreasing"),
            GearSetError::NonPositive => {
                write!(
                    f,
                    "gear frequencies and voltages must be positive and finite"
                )
            }
        }
    }
}

impl std::error::Error for GearSetError {}

/// An ordered set of DVFS gears (lowest frequency first).
#[derive(Debug, Clone, PartialEq)]
pub struct GearSet {
    gears: Vec<Gear>,
}

impl GearSet {
    /// Validates and wraps a list of gears ordered lowest-frequency first.
    pub fn new(gears: Vec<Gear>) -> Result<Self, GearSetError> {
        if gears.is_empty() {
            return Err(GearSetError::Empty);
        }
        for g in &gears {
            if !(g.freq_ghz.is_finite()
                && g.freq_ghz > 0.0
                && g.voltage.is_finite()
                && g.voltage > 0.0)
            {
                return Err(GearSetError::NonPositive);
            }
        }
        for w in gears.windows(2) {
            if w[1].freq_ghz <= w[0].freq_ghz {
                return Err(GearSetError::FrequencyNotIncreasing);
            }
            if w[1].voltage < w[0].voltage {
                return Err(GearSetError::VoltageDecreasing);
            }
        }
        Ok(GearSet { gears })
    }

    /// The paper's gear set (Table 2): frequencies 0.8–2.3 GHz in 0.3 GHz
    /// steps, voltages 1.0–1.5 V in 0.1 V steps.
    pub fn paper() -> Self {
        GearSet::new(vec![
            Gear {
                freq_ghz: 0.8,
                voltage: 1.0,
            },
            Gear {
                freq_ghz: 1.1,
                voltage: 1.1,
            },
            Gear {
                freq_ghz: 1.4,
                voltage: 1.2,
            },
            Gear {
                freq_ghz: 1.7,
                voltage: 1.3,
            },
            Gear {
                freq_ghz: 2.0,
                voltage: 1.4,
            },
            Gear {
                freq_ghz: 2.3,
                voltage: 1.5,
            },
        ])
        // audit:allow(R1): paper gear table is a fixed constant; validity is checked by unit tests
        .expect("paper gear set is valid")
    }

    /// A single-gear set (top frequency only) — the no-DVFS baseline
    /// machine.
    pub fn single(freq_ghz: f64, voltage: f64) -> Self {
        // audit:allow(R1): a one-gear set is trivially valid (non-empty, sorted)
        GearSet::new(vec![Gear { freq_ghz, voltage }]).expect("single gear is valid")
    }

    /// Number of gears.
    #[inline]
    pub fn len(&self) -> usize {
        self.gears.len()
    }

    /// Always false: `GearSet::new` rejects empty sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The lowest-frequency gear's id (always `GearId(0)`).
    #[inline]
    pub fn lowest(&self) -> GearId {
        GearId(0)
    }

    /// The top-frequency gear's id.
    #[inline]
    pub fn top(&self) -> GearId {
        GearId((self.gears.len() - 1) as u8)
    }

    /// The gear for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this set.
    #[inline]
    pub fn get(&self, id: GearId) -> Gear {
        self.gears[id.index()]
    }

    /// Iterates `(GearId, Gear)` from the lowest frequency upward — the
    /// order the paper's assignment algorithm tries gears in.
    pub fn ascending(&self) -> impl Iterator<Item = (GearId, Gear)> + '_ {
        self.gears
            .iter()
            .enumerate()
            .map(|(i, g)| (GearId(i as u8), *g))
    }

    /// `f_top / f_gear` — the frequency ratio the β time model dilates by.
    #[inline]
    pub fn freq_ratio(&self, id: GearId) -> f64 {
        self.get(self.top()).freq_ghz / self.get(id).freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_table2() {
        let gs = GearSet::paper();
        assert_eq!(gs.len(), 6);
        let freqs: Vec<f64> = gs.ascending().map(|(_, g)| g.freq_ghz).collect();
        assert_eq!(freqs, vec![0.8, 1.1, 1.4, 1.7, 2.0, 2.3]);
        let volts: Vec<f64> = gs.ascending().map(|(_, g)| g.voltage).collect();
        assert_eq!(volts, vec![1.0, 1.1, 1.2, 1.3, 1.4, 1.5]);
        assert_eq!(gs.lowest(), GearId(0));
        assert_eq!(gs.top(), GearId(5));
    }

    #[test]
    fn freq_ratio_top_is_one() {
        let gs = GearSet::paper();
        assert!((gs.freq_ratio(gs.top()) - 1.0).abs() < 1e-12);
        assert!((gs.freq_ratio(GearId(0)) - 2.3 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GearSet::new(vec![]), Err(GearSetError::Empty));
    }

    #[test]
    fn rejects_non_increasing_frequency() {
        let r = GearSet::new(vec![
            Gear {
                freq_ghz: 1.0,
                voltage: 1.0,
            },
            Gear {
                freq_ghz: 1.0,
                voltage: 1.1,
            },
        ]);
        assert_eq!(r, Err(GearSetError::FrequencyNotIncreasing));
    }

    #[test]
    fn rejects_decreasing_voltage() {
        let r = GearSet::new(vec![
            Gear {
                freq_ghz: 1.0,
                voltage: 1.2,
            },
            Gear {
                freq_ghz: 2.0,
                voltage: 1.1,
            },
        ]);
        assert_eq!(r, Err(GearSetError::VoltageDecreasing));
    }

    #[test]
    fn rejects_non_positive() {
        let r = GearSet::new(vec![Gear {
            freq_ghz: 0.0,
            voltage: 1.0,
        }]);
        assert_eq!(r, Err(GearSetError::NonPositive));
        let r = GearSet::new(vec![Gear {
            freq_ghz: 1.0,
            voltage: f64::NAN,
        }]);
        assert_eq!(r, Err(GearSetError::NonPositive));
    }

    #[test]
    fn single_gear_baseline() {
        let gs = GearSet::single(2.3, 1.5);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs.top(), gs.lowest());
        assert_eq!(gs.error_display_len(), ());
    }

    impl GearSet {
        /// Exercises the Display impls (compile-time check helper for tests).
        fn error_display_len(&self) {
            let _ = format!(
                "{} {} {} {}",
                GearSetError::Empty,
                GearSetError::FrequencyNotIncreasing,
                GearSetError::VoltageDecreasing,
                GearSetError::NonPositive
            );
        }
    }
}
