//! DVFS-enabled cluster model.
//!
//! This crate models the hardware the scheduler manages:
//!
//! * [`Gear`] / [`GearSet`] — the DVFS frequency/voltage pairs (Table 2 of
//!   Etinski et al. 2010);
//! * [`ProcessorPool`] — the machine's processors with **First Fit**
//!   (lowest-index-first) selection, the resource selection policy used in
//!   the paper's simulations;
//! * [`Profile`] — a count-based *future availability profile* derived from
//!   the requested completion times of running jobs, on which the EASY
//!   scheduler searches allocations and places its head-of-queue
//!   reservation;
//! * [`Cluster`] — a named machine (gear set + processor count) with the
//!   system-enlargement constructor used by the paper's Section 5.2 study.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod cluster;
pub mod gears;
pub mod processors;
pub mod profile;

pub use cluster::Cluster;
pub use gears::{Gear, GearSet, GearSetError};
pub use processors::{ProcSet, ProcessorPool, SelectionPolicy};
pub use profile::{Profile, ProfileBuilder, ProfileError};
