//! Future availability profile.
//!
//! The EASY scheduler reasons about the future with a *profile*: a
//! piecewise-constant function `t ↦ available processors` built from the
//! **requested** completion times of running jobs. The head-of-queue
//! reservation is committed into the profile, and backfill candidates are
//! checked against what remains — that single data structure encodes both
//! the "shadow time" and the "extra processors" of classic EASY
//! formulations, and stays correct under arbitrary commitments.
//!
//! All operations are integer/exact, so scheduling decisions are
//! deterministic.
//!
//! # Query complexity
//!
//! The segment list is the ground truth, but queries no longer scan it:
//! every mutation eagerly rebuilds a pair of flat segment trees
//! (`SegIndex`: range-min and range-max of per-segment availability), so
//! [`Profile::min_available`], [`Profile::earliest_fit`] and the
//! [`Profile::commit`] underflow validation run in O(log n) instead of
//! O(n). Mutations were already O(n) (they splice the segment `Vec` and
//! coalesce), so the rebuild does not change their asymptotics. The
//! pre-index linear implementations are kept as
//! [`Profile::min_available_linear`] / [`Profile::earliest_fit_linear`] —
//! the semantic oracles the indexed paths are property-tested against.

use bsld_simkernel::Time;

/// Errors from profile mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// A commitment would drive availability negative at the given time.
    Underflow {
        /// First instant at which the commitment exceeds availability.
        at: Time,
    },
    /// A commitment started before the profile origin.
    BeforeOrigin,
    /// A commitment had `end <= start`.
    EmptyWindow,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Underflow { at } => {
                write!(f, "commitment exceeds availability at {at:?}")
            }
            ProfileError::BeforeOrigin => write!(f, "commitment starts before profile origin"),
            ProfileError::EmptyWindow => write!(f, "commitment window is empty"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Builds a [`Profile`] from the set of running jobs.
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    origin: Time,
    total: u32,
    free_now: u32,
    releases: Vec<(Time, u32)>,
}

impl ProfileBuilder {
    /// Starts a profile at `origin` for a machine of `total` processors of
    /// which `free_now` are currently idle.
    pub fn new(origin: Time, total: u32, free_now: u32) -> Self {
        assert!(free_now <= total, "free count exceeds machine size");
        ProfileBuilder {
            origin,
            total,
            free_now,
            releases: Vec::new(),
        }
    }

    /// Re-initialises the builder for a fresh profile, keeping the release
    /// buffer's allocation. This is the hot-path entry point: a scheduler
    /// that rebuilds a profile on every event reuses one builder instead of
    /// allocating a new release vector per pass.
    pub fn reset(&mut self, origin: Time, total: u32, free_now: u32) {
        assert!(free_now <= total, "free count exceeds machine size");
        self.origin = origin;
        self.total = total;
        self.free_now = free_now;
        self.releases.clear();
    }

    /// Registers that `cpus` processors become free at time `at` (a running
    /// job's expected completion). Times at or before the origin are folded
    /// into the current free count.
    pub fn release(&mut self, at: Time, cpus: u32) {
        if cpus == 0 {
            return;
        }
        if at <= self.origin {
            self.free_now += cpus;
            assert!(self.free_now <= self.total, "releases exceed machine size");
        } else {
            self.releases.push((at, cpus));
        }
    }

    /// Finalises the profile.
    pub fn build(mut self) -> Profile {
        let mut out = Profile {
            total: self.total,
            segs: Vec::with_capacity(self.releases.len() + 1),
            index: SegIndex::default(),
        };
        self.build_into(&mut out);
        out
    }

    /// Finalises the profile into an existing [`Profile`], reusing its
    /// segment allocation. The builder stays usable (call
    /// [`ProfileBuilder::reset`] before the next pass).
    pub fn build_into(&mut self, out: &mut Profile) {
        self.releases.sort_unstable_by_key(|&(t, _)| t);
        out.total = self.total;
        out.segs.clear();
        out.segs.push((self.origin, self.free_now));
        let mut avail = self.free_now;
        for &(t, cpus) in &self.releases {
            avail += cpus;
            assert!(avail <= self.total, "releases exceed machine size");
            match out.segs.last_mut() {
                Some(last) if last.0 == t => last.1 = avail,
                _ => out.segs.push((t, avail)),
            }
        }
        out.index.rebuild(&out.segs);
    }
}

/// Flat min/max segment trees over the per-segment availability values,
/// padded to a power of two. Rebuilt eagerly after every mutation: the
/// index is a pure function of the segment list, so two profiles with
/// equal segments always carry equal indexes (derived `PartialEq` on
/// [`Profile`] stays sound).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SegIndex {
    /// Number of real leaves (`segs.len()` at build time).
    leaves: usize,
    /// Padded leaf count: `leaves.next_power_of_two()`.
    size: usize,
    /// Range-minimum tree, `2 * size` nodes, `u32::MAX` padding.
    min: Vec<u32>,
    /// Range-maximum tree, `2 * size` nodes, `0` padding.
    max: Vec<u32>,
}

impl SegIndex {
    /// Rebuilds both trees from the segment list. O(n); reuses the node
    /// allocations when the padded size is unchanged.
    fn rebuild(&mut self, segs: &[(Time, u32)]) {
        self.leaves = segs.len();
        self.size = segs.len().next_power_of_two().max(1);
        self.min.clear();
        self.min.resize(2 * self.size, u32::MAX);
        self.max.clear();
        self.max.resize(2 * self.size, 0);
        for (i, &(_, avail)) in segs.iter().enumerate() {
            self.min[self.size + i] = avail;
            self.max[self.size + i] = avail;
        }
        for node in (1..self.size).rev() {
            self.min[node] = self.min[2 * node].min(self.min[2 * node + 1]);
            self.max[node] = self.max[2 * node].max(self.max[2 * node + 1]);
        }
    }

    /// Minimum availability over leaf indexes `[l, r)`. `u32::MAX` for an
    /// empty range.
    fn range_min(&self, mut l: usize, mut r: usize) -> u32 {
        let mut m = u32::MAX;
        l += self.size;
        r = r.min(self.leaves) + self.size;
        while l < r {
            if l & 1 == 1 {
                m = m.min(self.min[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                m = m.min(self.min[r]);
            }
            l /= 2;
            r /= 2;
        }
        m
    }

    /// First leaf index `>= from` whose availability is `< cpus`.
    fn first_below(&self, from: usize, cpus: u32) -> Option<usize> {
        if from >= self.leaves {
            return None;
        }
        self.descend_min(1, 0, self.size, from, cpus)
    }

    fn descend_min(
        &self,
        node: usize,
        nl: usize,
        nr: usize,
        from: usize,
        cpus: u32,
    ) -> Option<usize> {
        if nr <= from || self.min[node] >= cpus {
            return None;
        }
        if nr - nl == 1 {
            // Padding leaves hold u32::MAX and can never satisfy `< cpus`.
            return (nl < self.leaves).then_some(nl);
        }
        let mid = (nl + nr) / 2;
        self.descend_min(2 * node, nl, mid, from, cpus)
            .or_else(|| self.descend_min(2 * node + 1, mid, nr, from, cpus))
    }

    /// First leaf index `>= from` whose availability is `>= cpus`
    /// (`cpus >= 1`: padding leaves hold 0 and are never matched).
    fn first_at_least(&self, from: usize, cpus: u32) -> Option<usize> {
        if from >= self.leaves {
            return None;
        }
        self.descend_max(1, 0, self.size, from, cpus)
    }

    fn descend_max(
        &self,
        node: usize,
        nl: usize,
        nr: usize,
        from: usize,
        cpus: u32,
    ) -> Option<usize> {
        if nr <= from || self.max[node] < cpus {
            return None;
        }
        if nr - nl == 1 {
            return (nl < self.leaves).then_some(nl);
        }
        let mid = (nl + nr) / 2;
        self.descend_max(2 * node, nl, mid, from, cpus)
            .or_else(|| self.descend_max(2 * node + 1, mid, nr, from, cpus))
    }
}

/// Piecewise-constant future availability (see module docs).
///
/// Invariants: segment start times strictly increase, the first segment
/// starts at the profile origin, each availability is `≤ total`, and the
/// last segment extends to infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    total: u32,
    segs: Vec<(Time, u32)>,
    index: SegIndex,
}

impl Profile {
    /// A trivial profile: `free` processors from `origin` forever.
    pub fn flat(origin: Time, total: u32, free: u32) -> Self {
        ProfileBuilder::new(origin, total, free).build()
    }

    /// The profile's origin (the "now" it was built at).
    #[inline]
    pub fn origin(&self) -> Time {
        self.segs[0].0
    }

    /// The machine size.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The underlying `(start, available)` segments (for tests/inspection).
    pub fn segments(&self) -> &[(Time, u32)] {
        &self.segs
    }

    /// Index of the segment covering `t` (clamped to the origin).
    fn seg_index(&self, t: Time) -> usize {
        match self.segs.binary_search_by_key(&t, |&(s, _)| s) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Available processors at time `t` (clamped to the origin).
    pub fn available_at(&self, t: Time) -> u32 {
        self.segs[self.seg_index(t)].1
    }

    /// Minimum availability over the window `[start, start+dur)`.
    /// A zero-length window reads the instant `start`.
    ///
    /// O(log n) via the range-min tree; bit-identical to
    /// [`Profile::min_available_linear`].
    pub fn min_available(&self, start: Time, dur: u64) -> u32 {
        let end = start.saturating_add(dur);
        let i = self.seg_index(start);
        // First segment starting at or after `end`; the window covers
        // segments [i, j), and at least segment i even when zero-length.
        let j = self.segs.partition_point(|&(s, _)| s < end).max(i + 1);
        self.index.range_min(i, j)
    }

    /// Linear-scan reference implementation of [`Profile::min_available`]
    /// — the semantic oracle the indexed path is property-tested against.
    pub fn min_available_linear(&self, start: Time, dur: u64) -> u32 {
        let end = start.saturating_add(dur);
        let mut i = self.seg_index(start);
        let mut min = self.segs[i].1;
        i += 1;
        while i < self.segs.len() && self.segs[i].0 < end {
            min = min.min(self.segs[i].1);
            i += 1;
        }
        min
    }

    /// Whether `cpus` processors are continuously available over
    /// `[start, start+dur)`.
    #[inline]
    pub fn can_fit(&self, start: Time, cpus: u32, dur: u64) -> bool {
        cpus <= self.total && self.min_available(start, dur) >= cpus
    }

    /// Earliest `t ≥ not_before` such that `cpus` processors are available
    /// throughout `[t, t+dur)`, or `None` if no such time exists (only when
    /// `cpus > total` or a commitment blocks the horizon forever).
    ///
    /// O(log n) per blocked run via the min/max tree descents;
    /// bit-identical to [`Profile::earliest_fit_linear`], which walks every
    /// segment of every candidate window.
    pub fn earliest_fit(&self, cpus: u32, dur: u64, not_before: Time) -> Option<Time> {
        if cpus > self.total {
            return None;
        }
        let mut t = not_before.max(self.origin());
        loop {
            let window_end = t.saturating_add(dur);
            let i = self.seg_index(t);
            let Some(k) = self.index.first_below(i, cpus) else {
                // No segment at or after the window start ever dips below
                // `cpus`: the candidate fits through the horizon.
                return Some(t);
            };
            // The candidate fits iff the first dip neither covers `t`
            // (k == i; for dur == 0 the linear oracle still requires the
            // segment at `t` itself to satisfy `cpus`) nor starts inside
            // the window.
            if k > i && self.segs[k].0 >= window_end {
                return Some(t);
            }
            // Blocked: the next viable candidate is the start of the first
            // segment after the dip with enough processors — the same
            // instant the linear oracle reaches by hopping segment ends
            // through the blocked run.
            match self.index.first_at_least(k + 1, cpus) {
                None => return None, // blocked through the infinite tail
                Some(m) => t = self.segs[m].0,
            }
        }
    }

    /// Linear-scan reference implementation of [`Profile::earliest_fit`]
    /// — the semantic oracle the indexed path is property-tested against.
    pub fn earliest_fit_linear(&self, cpus: u32, dur: u64, not_before: Time) -> Option<Time> {
        if cpus > self.total {
            return None;
        }
        let mut t = not_before.max(self.origin());
        'candidate: loop {
            let window_end = t.saturating_add(dur);
            let mut j = self.seg_index(t);
            loop {
                let (_, avail) = self.segs[j];
                let seg_end = self.segs.get(j + 1).map_or(Time::MAX, |&(s, _)| s);
                if avail < cpus {
                    if seg_end == Time::MAX {
                        // Blocked forever (an infinite commitment).
                        return None;
                    }
                    t = seg_end;
                    continue 'candidate;
                }
                if seg_end >= window_end {
                    return Some(t);
                }
                j += 1;
            }
        }
    }

    /// Reserves `cpus` processors over `[start, end)`, reducing availability.
    ///
    /// The operation is atomic: on error the profile is unchanged.
    pub fn commit(&mut self, start: Time, end: Time, cpus: u32) -> Result<(), ProfileError> {
        if start < self.origin() {
            return Err(ProfileError::BeforeOrigin);
        }
        if end <= start {
            return Err(ProfileError::EmptyWindow);
        }
        if cpus == 0 {
            return Ok(());
        }
        // Validate first — O(log n): the first segment at or after the
        // window start that dips below `cpus` is exactly the first
        // underflow the old linear scan reported (segment starts increase,
        // so if that dip lies past `end`, every later dip does too).
        let mut i = self.seg_index(start);
        if let Some(k) = self.index.first_below(i, cpus) {
            if self.segs[k].0 < end {
                let at = self.segs[k].0.max(start);
                return Err(ProfileError::Underflow { at });
            }
        }
        // Split segment boundaries at `start` and `end`.
        if self.segs[i].0 < start {
            let avail = self.segs[i].1;
            self.segs.insert(i + 1, (start, avail));
            i += 1;
        }
        let mut j = i;
        while j < self.segs.len() && self.segs[j].0 < end {
            j += 1;
        }
        // `j` is the first segment at or after `end`; if the previous
        // segment extends past `end`, split it (unless `end` is beyond the
        // horizon, in which case Time::MAX keeps the tail implicit).
        if end < Time::MAX {
            let prev_avail = self.segs[j - 1].1;
            if j == self.segs.len() || self.segs[j].0 > end {
                self.segs.insert(j, (end, prev_avail));
            }
        }
        for seg in &mut self.segs[i..j] {
            seg.1 -= cpus;
        }
        self.coalesce();
        self.index.rebuild(&self.segs);
        Ok(())
    }

    /// Raises availability by `cpus` over `[start, end)` — the exact
    /// inverse of [`Profile::commit`]. An empty window is a no-op.
    ///
    /// This is the incremental-update primitive: when a running job
    /// finishes early, its pending release at the *requested* end can be
    /// pulled forward by releasing the remaining window in place instead of
    /// rebuilding the whole profile; likewise an obsolete reservation is
    /// removed by releasing its committed window.
    ///
    /// # Panics
    /// Panics if the release would drive availability above the machine
    /// size — that means the window was never committed, a caller bug.
    pub fn release_over(&mut self, start: Time, end: Time, cpus: u32) -> Result<(), ProfileError> {
        if start < self.origin() {
            return Err(ProfileError::BeforeOrigin);
        }
        if end <= start || cpus == 0 {
            return Ok(());
        }
        // Split segment boundaries at `start` and `end` (same scheme as
        // `commit`, without the underflow validation).
        let mut i = self.seg_index(start);
        if self.segs[i].0 < start {
            let avail = self.segs[i].1;
            self.segs.insert(i + 1, (start, avail));
            i += 1;
        }
        let mut j = i;
        while j < self.segs.len() && self.segs[j].0 < end {
            j += 1;
        }
        if end < Time::MAX {
            let prev_avail = self.segs[j - 1].1;
            if j == self.segs.len() || self.segs[j].0 > end {
                self.segs.insert(j, (end, prev_avail));
            }
        }
        for seg in &mut self.segs[i..j] {
            seg.1 += cpus;
            assert!(
                seg.1 <= self.total,
                "release_over exceeds machine size at {:?}",
                seg.0
            );
        }
        self.coalesce();
        self.index.rebuild(&self.segs);
        Ok(())
    }

    /// Advances the profile origin to `now`, discarding fully-elapsed
    /// segments. A long-lived, incrementally-updated profile must call
    /// this as simulation time moves forward or its segment list grows
    /// with history instead of with the number of running jobs. `now`
    /// earlier than the current origin is a no-op.
    pub fn advance_origin(&mut self, now: Time) {
        let i = self.seg_index(now);
        if i > 0 {
            self.segs.drain(..i);
            self.index.rebuild(&self.segs);
        }
        if self.segs[0].0 < now {
            self.segs[0].0 = now;
            // Availability values are untouched, so the index (which holds
            // only availabilities) is already correct for this branch.
        }
    }

    /// Merges adjacent segments with equal availability.
    fn coalesce(&mut self) {
        self.segs.dedup_by(|next, prev| prev.1 == next.1);
    }

    /// Debug invariant check used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.segs.is_empty() {
            return Err("profile has no segments".into());
        }
        for w in self.segs.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("segment starts not increasing: {:?}", w));
            }
        }
        for &(t, a) in &self.segs {
            if a > self.total {
                return Err(format!(
                    "availability {a} exceeds total {} at {t:?}",
                    self.total
                ));
            }
        }
        let mut expect = SegIndex::default();
        expect.rebuild(&self.segs);
        if self.index != expect {
            return Err("segment-tree index out of sync with segments".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile: 10-cpu machine, 2 free now (t=100), releases of 3 at t=200
    /// and 5 at t=300.
    fn sample() -> Profile {
        let mut b = ProfileBuilder::new(Time(100), 10, 2);
        b.release(Time(200), 3);
        b.release(Time(300), 5);
        b.build()
    }

    #[test]
    fn builder_accumulates_releases() {
        let p = sample();
        assert_eq!(
            p.segments(),
            &[(Time(100), 2), (Time(200), 5), (Time(300), 10)]
        );
        assert_eq!(p.origin(), Time(100));
        assert_eq!(p.total(), 10);
        p.check_invariants().unwrap();
    }

    #[test]
    fn builder_folds_past_releases() {
        let mut b = ProfileBuilder::new(Time(100), 10, 2);
        b.release(Time(50), 3); // already free by the origin
        let p = b.build();
        assert_eq!(p.available_at(Time(100)), 5);
    }

    #[test]
    fn builder_merges_same_instant() {
        let mut b = ProfileBuilder::new(Time(0), 10, 0);
        b.release(Time(10), 2);
        b.release(Time(10), 3);
        let p = b.build();
        assert_eq!(p.segments(), &[(Time(0), 0), (Time(10), 5)]);
    }

    #[test]
    fn available_at_clamps_and_steps() {
        let p = sample();
        assert_eq!(p.available_at(Time(0)), 2); // clamped to origin
        assert_eq!(p.available_at(Time(100)), 2);
        assert_eq!(p.available_at(Time(199)), 2);
        assert_eq!(p.available_at(Time(200)), 5);
        assert_eq!(p.available_at(Time(1_000_000)), 10);
    }

    #[test]
    fn min_available_over_window() {
        let p = sample();
        assert_eq!(p.min_available(Time(150), 100), 2); // spans the t=200 step
        assert_eq!(p.min_available(Time(200), 100), 5);
        assert_eq!(p.min_available(Time(200), 101), 5);
        assert_eq!(p.min_available(Time(250), 100), 5); // [250,350) min(5,10)=5
        assert_eq!(p.min_available(Time(300), u64::MAX), 10);
    }

    #[test]
    fn earliest_fit_basic() {
        let p = sample();
        // 2 cpus fit immediately.
        assert_eq!(p.earliest_fit(2, 1000, Time(100)), Some(Time(100)));
        // 4 cpus must wait for the t=200 release.
        assert_eq!(p.earliest_fit(4, 1000, Time(100)), Some(Time(200)));
        // 8 cpus wait for t=300.
        assert_eq!(p.earliest_fit(8, 1, Time(100)), Some(Time(300)));
        // not_before is honoured.
        assert_eq!(p.earliest_fit(2, 10, Time(250)), Some(Time(250)));
        // Oversized request never fits.
        assert_eq!(p.earliest_fit(11, 1, Time(100)), None);
    }

    #[test]
    fn earliest_fit_skips_dips() {
        // 10 cpus; a commitment creates a dip: 10 free except [200,300) → 1.
        let mut p = Profile::flat(Time(0), 10, 10);
        p.commit(Time(200), Time(300), 9).unwrap();
        // A long job that would overlap the dip must start after it.
        assert_eq!(p.earliest_fit(5, 250, Time(0)), Some(Time(300)));
        // A short job fits before the dip.
        assert_eq!(p.earliest_fit(5, 200, Time(0)), Some(Time(0)));
        // One cpu fits anywhere.
        assert_eq!(p.earliest_fit(1, 10_000, Time(0)), Some(Time(0)));
    }

    #[test]
    fn commit_reduces_and_restores_window() {
        let mut p = Profile::flat(Time(0), 8, 8);
        p.commit(Time(10), Time(20), 3).unwrap();
        assert_eq!(p.available_at(Time(9)), 8);
        assert_eq!(p.available_at(Time(10)), 5);
        assert_eq!(p.available_at(Time(19)), 5);
        assert_eq!(p.available_at(Time(20)), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn commit_stacks() {
        let mut p = Profile::flat(Time(0), 8, 8);
        p.commit(Time(10), Time(30), 3).unwrap();
        p.commit(Time(20), Time(40), 3).unwrap();
        assert_eq!(p.available_at(Time(15)), 5);
        assert_eq!(p.available_at(Time(25)), 2);
        assert_eq!(p.available_at(Time(35)), 5);
        assert_eq!(p.available_at(Time(40)), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn commit_underflow_is_atomic() {
        let mut p = Profile::flat(Time(0), 8, 8);
        p.commit(Time(10), Time(30), 6).unwrap();
        let before = p.clone();
        let err = p.commit(Time(0), Time(50), 4).unwrap_err();
        assert_eq!(err, ProfileError::Underflow { at: Time(10) });
        assert_eq!(p, before, "failed commit must not mutate the profile");
    }

    #[test]
    fn commit_rejects_bad_windows() {
        let mut p = Profile::flat(Time(100), 8, 8);
        assert_eq!(
            p.commit(Time(50), Time(60), 1),
            Err(ProfileError::BeforeOrigin)
        );
        assert_eq!(
            p.commit(Time(100), Time(100), 1),
            Err(ProfileError::EmptyWindow)
        );
        assert_eq!(p.commit(Time(100), Time(200), 0), Ok(()));
    }

    #[test]
    fn commit_to_infinity() {
        let mut p = Profile::flat(Time(0), 8, 8);
        p.commit(Time(10), Time::MAX, 8).unwrap();
        assert_eq!(p.available_at(Time(9)), 8);
        assert_eq!(p.available_at(Time(10)), 0);
        assert_eq!(p.earliest_fit(1, 1, Time(20)), None);
        p.check_invariants().unwrap();
    }

    #[test]
    fn commit_on_release_boundary() {
        let p0 = sample(); // steps at 200 and 300
        let mut p = p0.clone();
        p.commit(Time(200), Time(300), 5).unwrap();
        assert_eq!(p.available_at(Time(200)), 0);
        assert_eq!(p.available_at(Time(300)), 10);
        p.check_invariants().unwrap();
    }

    #[test]
    fn builder_reset_reuses_allocation() {
        let mut b = ProfileBuilder::new(Time(0), 10, 2);
        b.release(Time(50), 3);
        let first = b.build_into_fresh();
        assert_eq!(first.segments(), &[(Time(0), 2), (Time(50), 5)]);
        // Reset and rebuild a different profile into the same buffer.
        b.reset(Time(100), 8, 1);
        b.release(Time(200), 7);
        let mut out = first;
        b.build_into(&mut out);
        assert_eq!(out.segments(), &[(Time(100), 1), (Time(200), 8)]);
        assert_eq!(out.total(), 8);
        out.check_invariants().unwrap();
    }

    impl ProfileBuilder {
        /// Test helper: build into a fresh profile without consuming self.
        fn build_into_fresh(&mut self) -> Profile {
            let mut p = Profile::flat(Time(0), 1, 1);
            self.build_into(&mut p);
            p
        }
    }

    #[test]
    fn build_into_matches_build() {
        let mut b1 = ProfileBuilder::new(Time(100), 10, 1);
        let mut b2 = ProfileBuilder::new(Time(100), 10, 1);
        for (t, c) in [(300u64, 5u32), (200, 3), (50, 1)] {
            b1.release(Time(t), c);
            b2.release(Time(t), c);
        }
        let built = b1.build();
        let mut reused = Profile::flat(Time(0), 1, 1);
        b2.build_into(&mut reused);
        assert_eq!(built, reused);
    }

    #[test]
    fn release_over_inverts_commit() {
        let mut p = sample();
        let before = p.clone();
        p.commit(Time(150), Time(250), 2).unwrap();
        assert_ne!(p, before);
        p.release_over(Time(150), Time(250), 2).unwrap();
        assert_eq!(p, before, "release_over must exactly invert commit");
        p.check_invariants().unwrap();
    }

    #[test]
    fn release_over_pulls_a_release_forward() {
        // A job expected to free 3 cpus at t=200 finishes early at t=120:
        // releasing [120, 200) makes the availability what a full rebuild
        // from the remaining jobs would produce.
        let p0 = sample();
        let mut p = p0.clone();
        p.release_over(Time(120), Time(200), 3).unwrap();
        assert_eq!(p.available_at(Time(119)), 2);
        assert_eq!(p.available_at(Time(120)), 5);
        assert_eq!(p.available_at(Time(200)), 5);
        assert_eq!(p.available_at(Time(300)), 10);
        p.check_invariants().unwrap();
    }

    #[test]
    fn release_over_edge_windows() {
        let mut p = Profile::flat(Time(0), 8, 8);
        p.commit(Time(10), Time::MAX, 8).unwrap();
        // Empty window is a no-op.
        p.release_over(Time(20), Time(20), 3).unwrap();
        assert_eq!(p.available_at(Time(20)), 0);
        // Unbounded windows release to the horizon.
        p.release_over(Time(20), Time::MAX, 8).unwrap();
        assert_eq!(p.available_at(Time(15)), 0);
        assert_eq!(p.available_at(Time(20)), 8);
        p.check_invariants().unwrap();
        let mut shifted = Profile::flat(Time(10), 8, 8);
        assert_eq!(
            shifted.release_over(Time(0), Time(5), 1),
            Err(ProfileError::BeforeOrigin)
        );
    }

    #[test]
    #[should_panic(expected = "release_over exceeds machine size")]
    fn release_over_rejects_uncommitted_window() {
        let mut p = Profile::flat(Time(0), 8, 8);
        let _ = p.release_over(Time(10), Time(20), 1);
    }

    #[test]
    fn advance_origin_drops_elapsed_segments() {
        let mut p = sample(); // origin 100, steps at 200 and 300
        p.advance_origin(Time(250));
        assert_eq!(p.segments(), &[(Time(250), 5), (Time(300), 10)]);
        assert_eq!(p.origin(), Time(250));
        assert_eq!(p.available_at(Time(250)), 5);
        assert_eq!(p.available_at(Time(400)), 10);
        p.check_invariants().unwrap();
        // No-op when earlier than the origin or on a boundary.
        p.advance_origin(Time(100));
        assert_eq!(p.origin(), Time(250));
        p.advance_origin(Time(300));
        assert_eq!(p.segments(), &[(Time(300), 10)]);
        p.check_invariants().unwrap();
    }

    #[test]
    fn earliest_fit_after_commit_matches_can_fit() {
        let mut p = Profile::flat(Time(0), 16, 16);
        p.commit(Time(100), Time(200), 16).unwrap();
        let t = p.earliest_fit(4, 150, Time(0)).unwrap();
        assert_eq!(t, Time(200));
        assert!(p.can_fit(t, 4, 150));
        assert!(!p.can_fit(Time(0), 4, 150));
        assert!(p.can_fit(Time(0), 4, 100)); // exactly up to the dip
    }

    /// Exhaustively compares the indexed queries against the linear
    /// oracles over a staircase profile with dips, across a grid of probe
    /// points, sizes and durations (including dur = 0 and u64::MAX).
    #[test]
    fn indexed_queries_match_linear_oracles() {
        let mut p = Profile::flat(Time(0), 32, 32);
        for (s, e, c) in [
            (10u64, 50u64, 8u32),
            (20, 40, 8),
            (40, 90, 16),
            (60, 70, 15),
            (100, u64::MAX, 31),
        ] {
            let end = if e == u64::MAX { Time::MAX } else { Time(e) };
            p.commit(Time(s), end, c).unwrap();
        }
        p.check_invariants().unwrap();
        for t in 0..120u64 {
            for dur in [0u64, 1, 5, 30, 100, u64::MAX] {
                assert_eq!(
                    p.min_available(Time(t), dur),
                    p.min_available_linear(Time(t), dur),
                    "min_available at t={t} dur={dur}"
                );
                for cpus in [0u32, 1, 2, 8, 16, 17, 31, 32, 33] {
                    assert_eq!(
                        p.earliest_fit(cpus, dur, Time(t)),
                        p.earliest_fit_linear(cpus, dur, Time(t)),
                        "earliest_fit cpus={cpus} dur={dur} not_before={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_queries_match_linear_after_every_mutation_kind() {
        let mut p = sample();
        p.commit(Time(150), Time(250), 2).unwrap();
        p.release_over(Time(150), Time(250), 2).unwrap();
        p.advance_origin(Time(220));
        p.check_invariants().unwrap();
        for t in 200..350u64 {
            for cpus in 0..=11u32 {
                assert_eq!(
                    p.earliest_fit(cpus, 75, Time(t)),
                    p.earliest_fit_linear(cpus, 75, Time(t))
                );
            }
            assert_eq!(
                p.min_available(Time(t), 60),
                p.min_available_linear(Time(t), 60)
            );
        }
    }
}
