//! Property tests for the availability profile — the data structure every
//! scheduling decision goes through.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld_cluster::{Profile, ProfileBuilder};
use bsld_simkernel::Time;
use proptest::prelude::*;

const TOTAL: u32 = 64;

/// Builds a random profile: some free-now count plus future releases that
/// never exceed the machine size.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        0u32..=32,
        proptest::collection::vec((1u64..10_000, 1u32..8), 0..20),
    )
        .prop_map(|(free_now, releases)| {
            let mut b = ProfileBuilder::new(Time(0), TOTAL, free_now);
            let mut budget = TOTAL - free_now;
            for (t, cpus) in releases {
                let cpus = cpus.min(budget);
                if cpus == 0 {
                    break;
                }
                budget -= cpus;
                b.release(Time(t), cpus);
            }
            b.build()
        })
}

/// A sequence of commit attempts to apply on top.
fn arb_commits() -> impl Strategy<Value = Vec<(u64, u64, u32)>> {
    proptest::collection::vec((0u64..12_000, 1u64..8_000, 1u32..TOTAL), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants survive any sequence of (possibly failing) commits, and
    /// failed commits leave the profile untouched.
    #[test]
    fn commits_preserve_invariants(p in arb_profile(), commits in arb_commits()) {
        let mut p = p;
        for (start, dur, cpus) in commits {
            let before = p.clone();
            let end = Time(start.saturating_add(dur));
            match p.commit(Time(start), end, cpus) {
                Ok(()) => {
                    p.check_invariants().map_err(TestCaseError::fail)?;
                }
                Err(_) => {
                    prop_assert_eq!(&p, &before, "failed commit must not mutate");
                }
            }
        }
    }

    /// `earliest_fit` returns a window that actually fits, and no earlier
    /// boundary or the origin fits — i.e. it really is the earliest.
    #[test]
    fn earliest_fit_is_sound_and_minimal(
        p in arb_profile(),
        cpus in 1u32..=TOTAL,
        dur in 1u64..6_000,
        not_before in 0u64..8_000,
    ) {
        let nb = Time(not_before);
        if let Some(t) = p.earliest_fit(cpus, dur, nb) {
            prop_assert!(t >= nb);
            prop_assert!(p.can_fit(t, cpus, dur), "returned window must fit");
            // Minimality: candidate starts are `not_before` and segment
            // boundaries; anything strictly earlier must not fit.
            prop_assert!(t == nb || !p.can_fit(nb, cpus, dur));
            for &(seg_start, _) in p.segments() {
                if seg_start >= nb && seg_start < t {
                    prop_assert!(
                        !p.can_fit(seg_start, cpus, dur),
                        "earlier boundary {seg_start:?} fits but {t:?} was returned"
                    );
                }
            }
        } else {
            // The generated profiles are release-only (non-decreasing), so
            // a fit exists iff the final availability covers the request.
            let final_avail = p.segments().last().unwrap().1;
            prop_assert!(final_avail < cpus, "fit must exist when the tail has room");
        }
    }

    /// `min_available` over a window equals the pointwise minimum of
    /// `available_at` sampled at the window start and every boundary
    /// inside it.
    #[test]
    fn min_available_matches_pointwise(
        p in arb_profile(),
        start in 0u64..12_000,
        dur in 0u64..8_000,
    ) {
        let start = Time(start);
        let end = start.saturating_add(dur);
        let mut expected = p.available_at(start);
        for &(seg_start, _) in p.segments() {
            if seg_start > start && seg_start < end {
                expected = expected.min(p.available_at(seg_start));
            }
        }
        prop_assert_eq!(p.min_available(start, dur), expected);
    }

    /// The O(log n) indexed queries agree with the linear oracles on
    /// profiles shaped by random commitment sequences — the A/B oracle for
    /// the segment-tree rework, probing every segment boundary (± 1) plus
    /// random offsets, with degenerate durations included.
    #[test]
    fn indexed_queries_match_linear_oracle(
        p in arb_profile(),
        commits in arb_commits(),
        probes in proptest::collection::vec((0u64..16_000, 0u64..10_000, 0u32..=TOTAL + 1), 1..24),
    ) {
        let mut p = p;
        for (start, dur, cpus) in commits {
            let end = Time(start.saturating_add(dur));
            let _ = p.commit(Time(start), end, cpus);
        }
        p.check_invariants().map_err(TestCaseError::fail)?;
        let mut starts: Vec<u64> = p.segments().iter().map(|&(t, _)| t.as_secs()).collect();
        starts.extend(probes.iter().map(|&(t, _, _)| t));
        for &(seg_start, _) in p.segments() {
            starts.push(seg_start.as_secs().saturating_sub(1));
            starts.push(seg_start.as_secs().saturating_add(1));
        }
        for &t in &starts {
            for &(_, dur, cpus) in &probes {
                for d in [dur, 0, u64::MAX] {
                    prop_assert_eq!(
                        p.min_available(Time(t), d),
                        p.min_available_linear(Time(t), d),
                        "min_available t={} dur={}", t, d
                    );
                    prop_assert_eq!(
                        p.earliest_fit(cpus, d, Time(t)),
                        p.earliest_fit_linear(cpus, d, Time(t)),
                        "earliest_fit cpus={} dur={} not_before={}", cpus, d, t
                    );
                }
            }
        }
    }

    /// A committed window reduces availability by exactly `cpus` inside it
    /// and leaves it unchanged outside.
    #[test]
    fn commit_is_exact(
        p in arb_profile(),
        start in 0u64..10_000,
        dur in 1u64..4_000,
        cpus in 1u32..16,
    ) {
        let start = Time(start);
        let end = start + dur;
        let mut q = p.clone();
        if q.commit(start, end, cpus).is_ok() {
            // Probe inside, before, and after the window.
            let probes = [
                start,
                Time(start.as_secs() + dur / 2),
                Time(start.as_secs().saturating_sub(1)),
                end,
                Time(end.as_secs() + 10_000),
            ];
            for t in probes {
                let was = p.available_at(t);
                let now = q.available_at(t);
                if t >= start && t < end {
                    prop_assert_eq!(now, was - cpus, "inside window at {:?}", t);
                } else {
                    prop_assert_eq!(now, was, "outside window at {:?}", t);
                }
            }
        }
    }
}
