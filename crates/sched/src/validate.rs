//! Schedule validity checking.
//!
//! Replays a set of [`JobOutcome`]s against the machine size and asserts the
//! fundamental scheduling invariants. Used by integration and property
//! tests, and cheap enough to run on every simulated workload.

use bsld_model::JobOutcome;

/// Checks that `outcomes` describe a physically possible schedule on a
/// machine of `total_cpus` processors:
///
/// * every job starts at or after its arrival;
/// * every job's phases are consistent ([`JobOutcome::validate`]);
/// * at no instant do concurrently running jobs occupy more than
///   `total_cpus` processors.
pub fn validate_schedule(outcomes: &[JobOutcome], total_cpus: u32) -> Result<(), String> {
    for o in outcomes {
        o.validate()?;
        if o.cpus > total_cpus {
            return Err(format!(
                "{} uses {} cpus on a {}-cpu machine",
                o.id, o.cpus, total_cpus
            ));
        }
    }
    // Sweep usage changes: +cpus at start, -cpus at finish. A job finishing
    // at t releases before a job starting at t needs its processors (the
    // simulator processes completions before the scheduling pass).
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        deltas.push((o.start.as_secs(), o.cpus as i64));
        deltas.push((o.finish.as_secs(), -(o.cpus as i64)));
    }
    deltas.sort_by_key(|&(t, d)| (t, d)); // releases (-) sort before claims (+)
    let mut used = 0i64;
    for (t, d) in deltas {
        used += d;
        if used > total_cpus as i64 {
            return Err(format!("oversubscription at t={t}: {used} > {total_cpus}"));
        }
        if used < 0 {
            return Err(format!("negative usage at t={t} (finish before start?)"));
        }
    }
    if used != 0 {
        return Err(format!("usage does not return to zero (ends at {used})"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_model::{GearId, JobId, Phase};
    use bsld_simkernel::Time;

    fn outcome(id: u32, cpus: u32, start: u64, finish: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            cpus,
            arrival: Time(0),
            start: Time(start),
            finish: Time(finish),
            gear: GearId(0),
            phases: vec![Phase {
                gear: GearId(0),
                seconds: finish - start,
            }],
            nominal_runtime: finish - start,
            requested: finish - start,
        }
    }

    #[test]
    fn accepts_valid_schedule() {
        let outcomes = vec![
            outcome(0, 2, 0, 100),
            outcome(1, 2, 0, 50),
            outcome(2, 4, 100, 200),
        ];
        validate_schedule(&outcomes, 4).unwrap();
    }

    #[test]
    fn back_to_back_handover_is_legal() {
        // Job 1 starts exactly when job 0 finishes, using the same cpus.
        let outcomes = vec![outcome(0, 4, 0, 100), outcome(1, 4, 100, 200)];
        validate_schedule(&outcomes, 4).unwrap();
    }

    #[test]
    fn detects_oversubscription() {
        let outcomes = vec![outcome(0, 3, 0, 100), outcome(1, 2, 50, 150)];
        let err = validate_schedule(&outcomes, 4).unwrap_err();
        assert!(err.contains("oversubscription"), "{err}");
    }

    #[test]
    fn detects_start_before_arrival() {
        let mut o = outcome(0, 1, 5, 10);
        o.arrival = Time(7);
        assert!(validate_schedule(&[o], 4).is_err());
    }

    #[test]
    fn detects_oversize_job() {
        let err = validate_schedule(&[outcome(0, 8, 0, 10)], 4).unwrap_err();
        assert!(err.contains("8 cpus"), "{err}");
    }
}
