//! The frequency-assignment policy hook.
//!
//! The EASY engine delegates *which DVFS gear a job runs at* to a
//! [`FrequencyPolicy`]. The engine guarantees:
//!
//! * for a **head-of-queue** job the earliest start time is independent of
//!   the gear (the availability profile built from running jobs is
//!   non-decreasing), so the policy is handed the start time and only picks
//!   the gear;
//! * for a **backfill candidate** the gear determines the dilated runtime
//!   and therefore whether the job fits in front of the reservation, so the
//!   policy is handed a `fits(gear)` oracle and must return a gear that
//!   fits (or `None` to leave the job queued).

use bsld_model::{GearId, Job};
use bsld_power::BetaModel;
use bsld_simkernel::Time;

/// Everything a policy may consult when assigning a gear.
#[derive(Clone, Copy)]
pub struct DecisionCtx<'a> {
    /// Current simulation time.
    pub now: Time,
    /// The job being scheduled.
    pub job: &'a Job,
    /// Jobs currently waiting on execution, **excluding** `job` itself.
    /// This is the `WQsize` the paper's `WQthreshold` compares against.
    pub wq_others: usize,
    /// The β dilation model (owns the gear set).
    pub time_model: &'a BetaModel,
}

impl<'a> DecisionCtx<'a> {
    /// The dilation coefficient for this job at `gear`.
    #[inline]
    pub fn coef(&self, gear: GearId) -> f64 {
        self.time_model.coef(self.job.beta, gear)
    }

    /// The job's requested time dilated to `gear`.
    #[inline]
    pub fn dilated_requested(&self, gear: GearId) -> u64 {
        self.time_model
            .dilate(self.job.requested, self.job.beta, gear)
    }
}

/// Assigns a DVFS gear to each job at scheduling time.
pub trait FrequencyPolicy {
    /// Gear for a head-of-queue job that will start (or be reserved) at
    /// `start`. Must always return a gear: the head job is scheduled
    /// unconditionally.
    fn head_gear(&self, ctx: &DecisionCtx<'_>, start: Time) -> GearId;

    /// Gear for a backfill candidate that would start at `ctx.now`.
    ///
    /// `fits` reports whether the job, dilated to a gear, can start now
    /// without delaying the head reservation. Return `None` to leave the
    /// job queued (the paper's algorithm declines to backfill jobs whose
    /// predicted BSLD violates the threshold at every fitting gear).
    fn backfill_gear(
        &self,
        ctx: &DecisionCtx<'_>,
        fits: &mut dyn FnMut(GearId) -> bool,
    ) -> Option<GearId>;

    /// Gear *and* reservation start for a job under **conservative
    /// backfilling**, where the start time is duration- (and therefore
    /// gear-) dependent: `find_start(gear)` returns the earliest instant
    /// the job fits the committed profile when dilated to `gear`.
    ///
    /// Contract: the returned start **must** be the value `find_start`
    /// produced for the returned gear — the engine commits that exact
    /// window.
    ///
    /// The default derives the gear from [`FrequencyPolicy::head_gear`] at
    /// the top gear's start time, then re-queries the start for the chosen
    /// gear; policies whose gear choice depends on the (gear-dependent)
    /// wait should override it.
    fn reserve_gear(
        &self,
        ctx: &DecisionCtx<'_>,
        find_start: &mut dyn FnMut(GearId) -> Time,
    ) -> (GearId, Time) {
        let top = ctx.time_model.gears().top();
        let start_top = find_start(top);
        let gear = self.head_gear(ctx, start_top);
        if gear == top {
            (top, start_top)
        } else {
            (gear, find_start(gear))
        }
    }

    /// Whether the engine may *elide* provably no-op scheduling passes and
    /// reuse a cached head reservation under this policy (the incremental
    /// hot path). Defaults to `false` — opting in is a promise about the
    /// policy's decision structure:
    ///
    /// 1. [`FrequencyPolicy::head_gear`] depends only on the job and the
    ///    proposed start time — not on `ctx.now` or `ctx.wq_others` — so a
    ///    cached reservation stays correct while the availability profile
    ///    is unchanged;
    /// 2. [`FrequencyPolicy::backfill_gear`] is *monotone*: once it returns
    ///    `None` for a job, it keeps returning `None` when the job's wait
    ///    grows, the wait queue deepens, or the `fits` oracle weakens
    ///    pointwise (fewer gears fit). Under that property a candidate that
    ///    failed to backfill cannot start until a completion changes the
    ///    profile, so arrival events that add non-starting jobs need no
    ///    full pass.
    ///
    /// Policies that use `wq_others` as a *gate that can re-enable lower
    /// gears* (e.g. a `WQ_threshold` limit flipping the head gear to top)
    /// must return `false`.
    fn pass_elision_safe(&self) -> bool {
        false
    }
}

/// Pins every job to a single gear.
///
/// `FixedGearPolicy` at the top gear *is* plain EASY backfilling — the
/// paper's no-DVFS baseline. At a lower gear it is the "naive DVFS"
/// strawman used in ablations.
#[derive(Debug, Clone, Copy)]
pub struct FixedGearPolicy {
    /// The gear every job runs at.
    pub gear: GearId,
}

impl FixedGearPolicy {
    /// Pin all jobs to `gear`.
    pub fn new(gear: GearId) -> Self {
        FixedGearPolicy { gear }
    }
}

impl FrequencyPolicy for FixedGearPolicy {
    fn head_gear(&self, _ctx: &DecisionCtx<'_>, _start: Time) -> GearId {
        self.gear
    }

    fn backfill_gear(
        &self,
        _ctx: &DecisionCtx<'_>,
        fits: &mut dyn FnMut(GearId) -> bool,
    ) -> Option<GearId> {
        fits(self.gear).then_some(self.gear)
    }

    fn reserve_gear(
        &self,
        _ctx: &DecisionCtx<'_>,
        find_start: &mut dyn FnMut(GearId) -> Time,
    ) -> (GearId, Time) {
        (self.gear, find_start(self.gear))
    }

    fn pass_elision_safe(&self) -> bool {
        // The gear is constant and backfilling only asks `fits(gear)`:
        // trivially start-time-pure and monotone.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;

    #[test]
    fn ctx_helpers() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 1000, 2000);
        let ctx = DecisionCtx {
            now: Time(0),
            job: &job,
            wq_others: 0,
            time_model: &tm,
        };
        assert!((ctx.coef(tm.gears().top()) - 1.0).abs() < 1e-12);
        assert_eq!(ctx.dilated_requested(tm.gears().top()), 2000);
        assert!(ctx.dilated_requested(GearId(0)) > 3000);
    }

    #[test]
    fn fixed_gear_backfills_only_when_fitting() {
        let tm = BetaModel::new(GearSet::paper());
        let job = Job::new(0, Time(0), 4, 1000, 2000);
        let ctx = DecisionCtx {
            now: Time(0),
            job: &job,
            wq_others: 3,
            time_model: &tm,
        };
        let p = FixedGearPolicy::new(tm.gears().top());
        assert_eq!(p.head_gear(&ctx, Time(50)), tm.gears().top());
        assert_eq!(p.backfill_gear(&ctx, &mut |_| true), Some(tm.gears().top()));
        assert_eq!(p.backfill_gear(&ctx, &mut |_| false), None);
        // The oracle is only asked about the pinned gear.
        let mut asked = Vec::new();
        let _ = p.backfill_gear(&ctx, &mut |g| {
            asked.push(g);
            false
        });
        assert_eq!(asked, vec![tm.gears().top()]);
    }
}
